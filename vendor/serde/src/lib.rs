//! Offline no-op stand-in for `serde`.
//!
//! The workspace decorates its data types with
//! `#[derive(Serialize, Deserialize)]` for downstream interoperability,
//! but no code path actually serializes through serde (the K-DB journal
//! uses its own canonical encoding). With no registry access in the
//! build container, this crate supplies the trait names and inert
//! derive macros so those annotations keep compiling; the derives
//! expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; the inert derive does not implement it.
pub trait Serialize {}

/// Marker trait; the inert derive does not implement it.
pub trait Deserialize<'de>: Sized {}

/// Owned-deserialization marker, mirroring serde's blanket relation.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
