//! Offline mini-criterion.
//!
//! The build container cannot reach a crates registry, so the real
//! `criterion` is unavailable. This crate keeps the workspace's bench
//! targets compiling and runnable with the same source: benchmark
//! groups, `bench_function`/`bench_with_input`, `BenchmarkId`,
//! `sample_size`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple — each benchmark runs
//! `sample_size` timed iterations after one warm-up and reports the
//! mean and min wall-clock time per iteration. There is no statistical
//! analysis, outlier rejection, or HTML report.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter into `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        Self {
            label: format!("{name}/{param}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: usize,
    mean: Duration,
    min: Duration,
}

impl Bencher {
    /// Runs `f` once to warm up, then `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
        }
        self.mean = total / self.samples as u32;
        self.min = min;
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
            min: Duration::ZERO,
        };
        body(&mut bencher);
        println!(
            "{}/{:<32} mean {:>12.3?}   min {:>12.3?}   ({} samples)",
            self.name, id, bencher.mean, bencher.min, bencher.samples
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| body(b, input))
    }

    /// Ends the group (accepted for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, body);
        self
    }
}

/// Bundles benchmark functions into one callable group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times_a_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert_eq!(runs, 4, "one warm-up + three samples");
    }

    #[test]
    fn bench_with_input_passes_the_input_through() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("id", 7), &7u64, |b, &n| {
            b.iter(|| seen = n);
        });
        assert_eq!(seen, 7);
    }
}
