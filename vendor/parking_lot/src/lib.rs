//! Offline stand-in for `parking_lot`, backed by `std::sync` primitives.
//!
//! Exposes parking_lot's non-poisoning API shape (`lock()`, `read()`,
//! `write()` returning guards directly). Poison from a panicked holder
//! is swallowed via `PoisonError::into_inner`, matching parking_lot's
//! behavior of simply releasing the lock on panic.

use std::sync::PoisonError;

/// Mutual-exclusion lock; `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Readers–writer lock; `read()`/`write()` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Tries to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locks_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);

        let rw = RwLock::new(vec![1, 2]);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn poisoned_lock_is_recovered() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }
}
