//! String strategies from regex-like patterns.
//!
//! A `&'static str` is itself a strategy, mirroring upstream proptest's
//! regex string strategies. Only the pattern forms used in this
//! workspace are supported:
//!
//! - character classes with literals and ranges: `[a-z_]`, `[ -~:;]`
//! - the printable-character escape `\PC`
//! - bounded repetition `{n}` and `{m,n}` after an atom
//! - bare literal characters
//!
//! Unsupported regex syntax panics at generation time so a typo fails
//! loudly instead of silently generating the wrong language.

use crate::strategy::{Strategy, TestRng};

#[derive(Debug, Clone)]
enum Atom {
    /// A set of candidate characters (expanded from a class or literal).
    Class(Vec<char>),
    /// `\PC`: any printable character (sampled from a broad pool).
    Printable,
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                i = close + 1;
                Atom::Class(set)
            }
            '\\' => {
                assert!(
                    chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                    "unsupported escape in pattern {pattern:?}"
                );
                i += 3;
                Atom::Printable
            }
            c => {
                assert!(
                    !matches!(c, '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' | '^' | '$'),
                    "unsupported regex syntax {c:?} in pattern {pattern:?}"
                );
                i += 1;
                Atom::Class(vec![c])
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let bounds = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition lower bound"),
                    hi.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            };
            i = close + 1;
            bounds
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in pattern {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn printable(rng: &mut TestRng) -> char {
    // Mostly ASCII printable, with occasional Latin-1/Greek to exercise
    // multi-byte UTF-8 paths.
    match rng.below(8) {
        0 => char::from_u32(0x00A1 + rng.below(0x00FF - 0x00A1) as u32).unwrap_or('¡'),
        1 => char::from_u32(0x0391 + rng.below(25) as u32).unwrap_or('Α'),
        _ => (b' ' + rng.below(95) as u8) as char,
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(self) {
            let n = if piece.min == piece.max {
                piece.min
            } else {
                piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize
            };
            for _ in 0..n {
                match &piece.atom {
                    Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                    Atom::Printable => out.push(printable(rng)),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercase_class_with_repetition() {
        let mut rng = TestRng::from_name("str-lower");
        for _ in 0..200 {
            let s = "[a-z]{1,6}".new_value(&mut rng);
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn class_mixing_range_and_literals() {
        let mut rng = TestRng::from_name("str-mixed");
        for _ in 0..200 {
            let s = "[ -~:;]{0,12}".new_value(&mut rng);
            assert!(s.chars().count() <= 12, "{s:?}");
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn underscore_class() {
        let mut rng = TestRng::from_name("str-under");
        for _ in 0..200 {
            let s = "[a-z_]{1,8}".new_value(&mut rng);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '_'), "{s:?}");
        }
    }

    #[test]
    fn printable_escape_repeats() {
        let mut rng = TestRng::from_name("str-pc");
        for _ in 0..200 {
            let s = "\\PC{0,6}".new_value(&mut rng);
            assert!(s.chars().count() <= 6, "{s:?}");
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex syntax")]
    fn unsupported_syntax_panics() {
        let mut rng = TestRng::from_name("str-bad");
        let _ = "(a|b)+".new_value(&mut rng);
    }
}
