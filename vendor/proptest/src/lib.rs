//! Offline mini-proptest.
//!
//! The build container cannot reach a crates registry, so the real
//! `proptest` is unavailable. This crate reimplements the subset of its
//! API that this workspace's property tests use — the [`proptest!`]
//! macro, `prop_assert*`/`prop_assume`, strategy combinators
//! (`prop_map`, `prop_flat_map`, `prop_filter_map`, `prop_recursive`,
//! `prop_oneof!`), range/tuple/string-pattern strategies, and the
//! `prop::collection` generators — with deterministic per-test seeding.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case index only), `prop_assume` skips the case instead of resampling,
//! and regex string strategies support only character classes, `\PC`,
//! and `{m,n}` repetition (the forms used in this repository).

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod config;
pub mod num;
pub mod strategy;
pub mod string;

pub mod prelude;

pub use arbitrary::any;
pub use config::ProptestConfig;
pub use strategy::{BoxedStrategy, Just, Strategy, TestRng, Union};

use std::fmt;

/// A failed (or rejected) property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies: `proptest! { #[test] fn name(x in strategy) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(#[$meta:meta] fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[$meta]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $pat = $crate::Strategy::new_value(&$strat, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{}: {}",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError(
                        format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                                stringify!($left), stringify!($right), l, r),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError(
                        format!("assertion failed: {} == {}: {}\n  left: {:?}\n right: {:?}",
                                stringify!($left), stringify!($right), format!($($fmt)+), l, r),
                    ));
                }
            }
        }
    };
}

/// Skips the current case when the precondition does not hold.
///
/// Upstream proptest resamples rejected cases; this mini-runner simply
/// counts the case as passed, which preserves soundness (no false
/// failures) at some cost in effective case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Weighted union of strategies with a common value type:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 2 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}
