//! Runner configuration for the [`proptest!`](crate::proptest) macro.

/// Controls how many cases each property test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}
