//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

use crate::strategy::{Strategy, TestRng};

/// A target size or size range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        if self.min >= self.max {
            return self.min;
        }
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Vectors of values from `element`, sized by `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Ordered sets of values from `element`.
///
/// When `element` cannot supply enough distinct values, the set may come
/// out smaller than the sampled target (upstream proptest retries with
/// the same practical caveat); the minimum of the range is honored on a
/// best-effort basis.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        for _ in 0..(target * 10 + 20) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.new_value(rng));
        }
        set
    }
}

/// Ordered maps with keys from `key` and values from `value`.
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut map = BTreeMap::new();
        for _ in 0..(target * 10 + 20) {
            if map.len() >= target {
                break;
            }
            map.insert(self.key.new_value(rng), self.value.new_value(rng));
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_stay_in_range() {
        let mut rng = TestRng::from_name("vec");
        let s = vec(0u32..5, 2..7);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn exact_size_vec() {
        let mut rng = TestRng::from_name("vec-exact");
        let s = vec(0u32..5, 4usize);
        assert_eq!(s.new_value(&mut rng).len(), 4);
    }

    #[test]
    fn set_and_map_respect_bounds() {
        let mut rng = TestRng::from_name("setmap");
        let s = btree_set(0u32..100, 0..8);
        let m = btree_map(0u32..100, 0i64..4, 0..8);
        for _ in 0..100 {
            assert!(s.new_value(&mut rng).len() < 8);
            assert!(m.new_value(&mut rng).len() < 8);
        }
    }
}
