//! Boolean strategies (`prop::bool::ANY`).

use crate::strategy::{Strategy, TestRng};

/// Fair coin-flip strategy over `bool`.
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Either boolean with equal probability.
pub const ANY: BoolAny = BoolAny;
