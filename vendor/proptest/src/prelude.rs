//! The conventional `use proptest::prelude::*;` import surface.

/// Upstream re-exports the crate as `prop` so tests can write
/// `prop::collection::vec(...)`, `prop::bool::ANY`, etc.
pub use crate as prop;

pub use crate::arbitrary::any;
pub use crate::config::ProptestConfig;
pub use crate::strategy::{BoxedStrategy, Just, Strategy, TestRng, Union};
pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
