//! Numeric strategies.
//!
//! Plain `Range`/`RangeInclusive` expressions implement
//! [`Strategy`](crate::Strategy) directly (see `strategy.rs`), which
//! covers every numeric strategy this workspace uses; this module exists
//! for path compatibility with upstream `prop::num`.

/// `f64` strategies.
pub mod f64 {
    use crate::strategy::{Strategy, TestRng};

    /// Finite, non-NaN `f64` values spanning several orders of magnitude.
    #[derive(Debug, Clone, Copy)]
    pub struct Normal;

    impl Strategy for Normal {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            let magnitude = (rng.unit() * 2.0 - 1.0) * 1e6;
            magnitude * rng.unit()
        }
    }

    /// Finite `f64` values (no NaN or infinities).
    pub const NORMAL: Normal = Normal;
}
