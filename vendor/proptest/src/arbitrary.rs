//! The [`any`] entry point and the [`Arbitrary`] trait backing it.

use crate::strategy::{Strategy, TestRng};
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws one value covering the whole domain of the type.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T`: `any::<bool>()`, `any::<i64>()`, ...
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::from_name("any-bool");
        let s = any::<bool>();
        let trues: usize = (0..200).filter(|_| s.new_value(&mut rng)).count();
        assert!((50..150).contains(&trues), "trues = {trues}");
    }

    #[test]
    fn any_i64_spans_signs() {
        let mut rng = TestRng::from_name("any-i64");
        let s = any::<i64>();
        let mut saw_neg = false;
        let mut saw_pos = false;
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            saw_neg |= v < 0;
            saw_pos |= v > 0;
        }
        assert!(saw_neg && saw_pos);
    }
}
