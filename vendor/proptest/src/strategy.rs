//! The [`Strategy`] trait, its combinators, and the deterministic
//! case-generation RNG.

use std::sync::Arc;

/// Deterministic xoshiro256++ generator driving case generation.
///
/// Each `proptest!` test seeds one from its own name, so runs are fully
/// reproducible and independent of test execution order.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a into SplitMix64).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Seeds from a `u64` via SplitMix64 expansion.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next() | 1],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` (multiply-shift mapping).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates an intermediate value, then generates from the
    /// strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Keeps only values `f` maps to `Some`, resampling otherwise.
    ///
    /// # Panics
    /// Panics (failing the test) when 1000 consecutive samples are all
    /// rejected — the strategy is then too narrow to be useful.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            source: self,
            f,
            whence,
        }
    }

    /// Recursive strategies: `f` receives the strategy built so far and
    /// wraps it one level deeper; nesting is bounded by `depth`.
    ///
    /// The `_desired_size`/`_expected_branch_size` hints of upstream
    /// proptest are accepted and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            let branch = f(current.clone()).boxed();
            current = Union::new(vec![(2, current), (1, branch)]).boxed();
        }
        current
    }

    /// Type-erases the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(pub(crate) Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    source: S,
    f: F,
    whence: &'static str,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        for _ in 0..1000 {
            if let Some(v) = (self.f)(self.source.new_value(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected 1000 consecutive samples: {}", self.whence);
    }
}

/// Weighted union over strategies of one value type; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds the union.
    ///
    /// # Panics
    /// Panics when `variants` is empty or all weights are zero.
    pub fn new(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = variants.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof needs at least one positive weight");
        Self { variants, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.below(self.total);
        for (w, strat) in &self.variants {
            let w = u64::from(*w);
            if roll < w {
                return strat.new_value(rng);
            }
            roll -= w;
        }
        unreachable!("roll bounded by the weight total")
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::from_name("compose");
        let s = (0i32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn union_honors_weights_roughly() {
        let mut rng = TestRng::from_name("weights");
        let s = Union::new(vec![(3, Just(0u8).boxed()), (1, Just(1u8).boxed())]);
        let ones: usize = (0..4000).map(|_| usize::from(s.new_value(&mut rng))).sum();
        assert!((700..1300).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn recursive_strategies_bound_depth() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = Just(()).prop_map(|()| Tree::Leaf).prop_recursive(3, 8, 2, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut rng = TestRng::from_name("rec");
        let mut saw_node = false;
        for _ in 0..200 {
            let t = s.new_value(&mut rng);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, Tree::Node(_));
        }
        assert!(saw_node, "recursion never taken");
    }
}
