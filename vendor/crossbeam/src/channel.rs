//! MPMC channels with crossbeam-channel's API shape.
//!
//! Layered over `std::sync::mpsc`: the std receiver is single-consumer,
//! so it is shared behind a mutex to give crossbeam's cloneable-receiver
//! semantics. Contention on that mutex is acceptable for the job-queue
//! workloads this workspace runs (handful of workers, coarse jobs).

use std::fmt;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Sending half; cloneable (MPMC).
pub struct Sender<T> {
    inner: SenderKind<T>,
}

enum SenderKind<T> {
    Bounded(mpsc::SyncSender<T>),
    Unbounded(mpsc::Sender<T>),
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let inner = match &self.inner {
            SenderKind::Bounded(s) => SenderKind::Bounded(s.clone()),
            SenderKind::Unbounded(s) => SenderKind::Unbounded(s.clone()),
        };
        Self { inner }
    }
}

/// Receiving half; cloneable (MPMC) via an internal shared queue.
pub struct Receiver<T> {
    inner: Arc<Mutex<mpsc::Receiver<T>>>,
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Error: the channel is disconnected (send side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error: a non-blocking send could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel is at capacity.
    Full(T),
    /// All receivers dropped.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Full(_) => write!(f, "sending on a full channel"),
            Self::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

impl<T: fmt::Debug> std::error::Error for TrySendError<T> {}

/// Error: the channel is empty and disconnected (blocking receive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error: a non-blocking receive could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message available right now.
    Empty,
    /// All senders dropped and the queue is drained.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "receiving on an empty channel"),
            Self::Disconnected => write!(f, "receiving on an empty and disconnected channel"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error: a timed receive elapsed or disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// All senders dropped and the queue is drained.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Timeout => write!(f, "timed out waiting on receive"),
            Self::Disconnected => write!(f, "receiving on an empty and disconnected channel"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Creates a bounded channel with capacity `cap`.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (
        Sender {
            inner: SenderKind::Bounded(tx),
        },
        Receiver {
            inner: Arc::new(Mutex::new(rx)),
        },
    )
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (
        Sender {
            inner: SenderKind::Unbounded(tx),
        },
        Receiver {
            inner: Arc::new(Mutex::new(rx)),
        },
    )
}

impl<T> Sender<T> {
    /// Blocking send (waits for capacity on bounded channels).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.inner {
            SenderKind::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            SenderKind::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
        }
    }

    /// Non-blocking send; `Full` on a bounded channel at capacity.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        match &self.inner {
            SenderKind::Bounded(s) => s.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            }),
            SenderKind::Unbounded(s) => {
                s.send(value).map_err(|e| TrySendError::Disconnected(e.0))
            }
        }
    }
}

impl<T> Receiver<T> {
    /// Blocking receive.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.lock().recv().map_err(|_| RecvError)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.lock().try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.lock().recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_backpressure_reports_full() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cloned_receivers_split_the_stream() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut seen = Vec::new();
        loop {
            match rx.try_recv().or_else(|_| rx2.try_recv()) {
                Ok(v) => seen.push(v),
                Err(_) => break,
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn timeout_fires_on_empty_channel() {
        let (_tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
