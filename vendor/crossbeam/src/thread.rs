//! Scoped threads with crossbeam's API shape over `std::thread::scope`.

use std::thread::Result as ThreadResult;

/// A scope handle; spawned closures receive it, enabling nested spawns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Join handle for a scoped thread.
pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread, returning its result (`Err` on panic).
    pub fn join(self) -> ThreadResult<T> {
        self.0.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread scoped to `'env` borrows.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
    }
}

/// Runs `f` with a scope; all spawned threads are joined before return.
///
/// Unlike crossbeam (which collects panics of unjoined threads into the
/// `Err` variant), a panic in an unjoined thread propagates as a panic
/// from the underlying `std::thread::scope`; callers joining every
/// handle — as this workspace does — observe identical behavior.
#[allow(clippy::needless_pass_by_value)]
pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1, 2, 3, 4];
        let total: i32 = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let n = super::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
