//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//!
//! * [`thread::scope`] — crossbeam-utils-style scoped threads, layered
//!   over `std::thread::scope` (the closure passed to `spawn` receives
//!   the scope, as in crossbeam, enabling nested spawns);
//! * [`channel`] — MPMC bounded/unbounded channels layered over
//!   `std::sync::mpsc`, with cloneable receivers.

pub mod channel;
pub mod thread;
