//! Inert `Serialize`/`Deserialize` derives.
//!
//! Each derive accepts any item (including `#[serde(...)]` attributes)
//! and expands to nothing: the annotations exist for downstream
//! interoperability, and nothing in this workspace serializes through
//! serde at runtime.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
