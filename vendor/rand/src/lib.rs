//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `StdRng`, `SeedableRng::seed_from_u64`/`from_seed`, the `Rng`
//! extension trait (`gen`, `gen_range`, `gen_bool`), and
//! `seq::SliceRandom` (`shuffle`, `choose`).
//!
//! The build container has no access to a crates registry, so the real
//! `rand` cannot be fetched. This crate keeps the workspace compiling
//! and keeps every seeded computation fully deterministic; the generator
//! is xoshiro256++ seeded through SplitMix64 rather than rand's
//! ChaCha12, so *streams differ from upstream rand* (seeded results are
//! self-consistent, not bit-identical to a rand-0.8 build).

pub mod rngs;
pub mod seq;

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64
    /// (the same expansion rand uses for this entry point).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander and jitter helper.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (uniform bits for integers, `[0, 1)` for floats, fair coin for
    /// `bool`).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(&mut AsCore(self))
    }

    /// Samples uniformly from a range (`low..high` or `low..=high`).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(&mut AsCore(self))
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Adapter so `?Sized` rngs can feed the sampling helpers.
struct AsCore<'a, R: ?Sized>(&'a mut R);

impl<R: RngCore + ?Sized> RngCore for AsCore<'_, R> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// `u64` bits -> uniform `f64` in `[0, 1)` (53 mantissa bits).
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`].
pub trait SampleStandard {
    /// Draws one value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Multiply-shift mapping of a `u64` onto `[0, span)`; avoids the
/// modulo's low-bit bias without rejection loops.
pub(crate) fn bounded(bits: u64, span: u64) -> u64 {
    ((u128::from(bits) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng.next_u64(), span + 1) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_interval_covers_and_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }
}
