//! Slice sampling helpers, mirroring `rand::seq::SliceRandom`.

use crate::{bounded, RngCore};

/// Shuffling and choosing on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniform Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly chooses one element; `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = bounded(rng.next_u64(), i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[bounded(rng.next_u64(), self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(5));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle should actually permute");
    }

    #[test]
    fn choose_stays_in_slice() {
        let v = [1, 2, 3];
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
