//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seeded generator: xoshiro256++.
///
/// Not bit-compatible with upstream rand's ChaCha12-based `StdRng`, but
/// a high-quality, fully deterministic 64-bit generator with the same
/// construction API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is the one fixed point of the xoshiro
        // transition; nudge it to a fixed non-zero state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        Self { s }
    }
}

/// Alias: this stand-in has a single generator quality tier.
pub type SmallRng = StdRng;
