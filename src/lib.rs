//! # ada-health — facade crate
//!
//! Re-exports the whole ADA-HEALTH workspace behind a single dependency:
//! the [`dataset`] substrate, the [`vsm`] linear-algebra layer, the
//! [`metrics`] and [`mining`] algorithm crates, the [`kdb`] document
//! store, the [`engine`] (the paper's contribution) that wires them
//! together, the [`obs`] observability layer (lock-free tracing,
//! latency histograms, the session flight recorder), and the
//! [`service`] layer that runs many concurrent analysis sessions over
//! one shared K-DB, the [`signals`] safety-signal mining workload
//! (disproportionality statistics with Bayesian shrinkage), the
//! [`stream`] ingestion subsystem (bounded backpressured feeds,
//! incremental VSM builds and mini-batch K-means re-mining with
//! durable window checkpoints), and the [`net`] front-end that serves
//! that service to remote clients over a framed, checksummed TCP wire
//! protocol.
//!
//! ## End-to-end usage
//!
//! ```
//! use ada_health::dataset::synthetic::{generate, SyntheticConfig};
//! use ada_health::engine::pipeline::{AdaHealth, AdaHealthConfig};
//!
//! // A small seeded cohort (use `SyntheticConfig::paper()` for the
//! // full 6,380-patient study, or `dataset::io::load_dir` for CSVs).
//! let cfg = SyntheticConfig {
//!     num_patients: 120,
//!     num_exam_types: 25,
//!     target_records: 1_800,
//!     ..SyntheticConfig::small()
//! };
//! let log = generate(&cfg, 42);
//!
//! // One call runs every box of the paper's Figure-1 architecture:
//! // characterization, transformation selection, adaptive partial
//! // mining, the Table-I K sweep, knowledge extraction, end-goal
//! // ranking and feedback-adaptive knowledge navigation — persisting
//! // everything into the six K-DB collections.
//! let mut engine = AdaHealth::new(AdaHealthConfig::quick("doc"));
//! let report = engine.run(&log);
//!
//! assert!(report.optimizer.selected_k >= 2);
//! assert!(!report.ranked_items.is_empty());
//! println!("{}", ada_health::engine::report::render(&report));
//! ```
//!
//! See the repository README for a quickstart, `DESIGN.md` for the
//! architecture and per-experiment index, and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub use ada_core as engine;
pub use ada_dataset as dataset;
pub use ada_fleet as fleet;
pub use ada_kdb as kdb;
pub use ada_metrics as metrics;
pub use ada_mining as mining;
pub use ada_net as net;
pub use ada_obs as obs;
pub use ada_service as service;
pub use ada_signals as signals;
pub use ada_stream as stream;
pub use ada_vsm as vsm;
