//! Cross-crate integration: the full ADA-HEALTH pipeline over the
//! synthetic substrate, checked end to end.

use ada_health::dataset::io;
use ada_health::dataset::synthetic::{generate, SyntheticConfig};
use ada_health::engine::pipeline::{AdaHealth, AdaHealthConfig};
use ada_health::kdb::schema::names;
use ada_health::kdb::Filter;

fn small_cfg() -> SyntheticConfig {
    SyntheticConfig {
        num_patients: 160,
        num_exam_types: 30,
        target_records: 2_400,
        ..SyntheticConfig::small()
    }
}

#[test]
fn pipeline_populates_every_architecture_box() {
    let log = generate(&small_cfg(), 7);
    let mut engine = AdaHealth::new(AdaHealthConfig::quick("integration"));
    let report = engine.run(&log);

    // [1] characterization feeds [6] goals.
    assert!(report.descriptor.sparsity() > 0.0);
    assert!(report.goals.iter().any(|(_, _, v)| v.viable));

    // [2] transformation ranked every candidate.
    assert_eq!(report.transform.ranked.len(), 4);

    // [3] partial mining produced the full reference step.
    assert!((report.partial.steps.last().unwrap().fraction - 1.0).abs() < 1e-12);

    // [4] optimizer selected a probed K within its SSE window.
    assert!(report
        .optimizer
        .evaluations
        .iter()
        .any(|e| e.k == report.optimizer.selected_k));
    assert!(report.optimizer.selected_k >= report.optimizer.sse_window_start);

    // [5] knowledge extracted and [7] ranked, with feedback recorded.
    assert!(!report.clusters.is_empty());
    assert_eq!(
        report.ranked_items.len(),
        report.clusters.len() + report.rules.len()
    );
    assert!(report.feedback_recorded > 0);
}

#[test]
fn kdb_documents_are_queryable_after_run() {
    let log = generate(&small_cfg(), 9);
    let mut engine = AdaHealth::new(AdaHealthConfig::quick("kdbq"));
    let report = engine.run(&log);
    let db = engine.kdb();

    // All six paper collections exist and are populated.
    for name in names::ALL {
        assert!(db.collection(name).is_some(), "missing {name}");
    }
    // Cluster knowledge carries the optimizer's K.
    let clusters = db
        .find(
            names::CLUSTER_KNOWLEDGE,
            &Filter::eq("k", report.optimizer.selected_k as i64),
        )
        .unwrap();
    assert_eq!(clusters.len(), report.clusters.len());
    // Pattern items expose support/confidence fields for ranking;
    // compliance items expose rates. Both share the collection.
    for (_, doc) in db.find(names::PATTERN_KNOWLEDGE, &Filter::True).unwrap() {
        match doc.get("kind").unwrap().as_str().unwrap() {
            "pattern" => {
                assert!(doc.get("support").unwrap().as_f64().unwrap() > 0.0);
                assert!(doc.get("confidence").unwrap().as_f64().unwrap() >= 0.6);
            }
            "compliance" => {
                let rate = doc.get("score").unwrap().as_f64().unwrap();
                assert!((0.0..=1.0).contains(&rate));
            }
            other => panic!("unexpected knowledge kind {other:?}"),
        }
    }
    // Feedback references existing items.
    for (_, doc) in db.find(names::FEEDBACK, &Filter::True).unwrap() {
        let coll = doc.get("item_collection").unwrap().as_str().unwrap();
        let item = doc.get("item_id").unwrap().as_i64().unwrap() as u64;
        assert!(
            db.collection(coll).unwrap().get(item).is_some(),
            "dangling feedback reference"
        );
    }
}

#[test]
fn csv_round_trip_preserves_pipeline_results() {
    let log = generate(&small_cfg(), 11);
    let dir = std::env::temp_dir().join(format!("ada_it_csv_{}", std::process::id()));
    io::save_dir(&log, &dir).unwrap();
    let reloaded = io::load_dir(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(reloaded, log);

    let a = AdaHealth::new(AdaHealthConfig::quick("csv")).run(&log);
    let b = AdaHealth::new(AdaHealthConfig::quick("csv")).run(&reloaded);
    assert_eq!(a.optimizer, b.optimizer);
    assert_eq!(a.ranked_items, b.ranked_items);
}

#[test]
fn pipeline_is_deterministic() {
    let log = generate(&small_cfg(), 13);
    let a = AdaHealth::new(AdaHealthConfig::quick("det")).run(&log);
    let b = AdaHealth::new(AdaHealthConfig::quick("det")).run(&log);
    assert_eq!(a.optimizer, b.optimizer);
    assert_eq!(a.partial, b.partial);
    assert_eq!(a.ranked_items, b.ranked_items);
    assert_eq!(a.feedback_recorded, b.feedback_recorded);
}
