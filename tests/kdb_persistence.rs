//! Cross-crate persistence: pipeline artifacts surviving K-DB restarts.

use ada_health::dataset::synthetic::{generate, SyntheticConfig};
use ada_health::engine::pipeline::{AdaHealth, AdaHealthConfig};
use ada_health::kdb::schema::names;
use ada_health::kdb::{Filter, Kdb};

fn cfg() -> SyntheticConfig {
    SyntheticConfig {
        num_patients: 120,
        num_exam_types: 25,
        target_records: 1_800,
        ..SyntheticConfig::small()
    }
}

#[test]
fn session_artifacts_survive_reopen() {
    let path = std::env::temp_dir().join(format!("ada_it_kdb_{}.journal", std::process::id()));
    std::fs::remove_file(&path).ok();

    let (clusters, patterns, feedback);
    {
        let db = Kdb::open(&path).unwrap();
        let mut engine = AdaHealth::with_kdb(AdaHealthConfig::quick("persist"), db);
        let report = engine.run(&generate(&cfg(), 3));
        clusters = report.clusters.len();
        // Pattern knowledge = association rules + compliance items.
        patterns = report.rules.len() + report.compliance.as_ref().map_or(0, |c| c.results.len());
        feedback = report.feedback_recorded;
    }

    let reopened = Kdb::open(&path).unwrap();
    assert_eq!(
        reopened.collection(names::CLUSTER_KNOWLEDGE).unwrap().len(),
        clusters
    );
    assert_eq!(
        reopened.collection(names::PATTERN_KNOWLEDGE).unwrap().len(),
        patterns
    );
    assert_eq!(
        reopened.collection(names::FEEDBACK).unwrap().len(),
        feedback
    );
    // Indexes created by the schema are rebuilt from the journal.
    assert!(reopened
        .collection(names::CLUSTER_KNOWLEDGE)
        .unwrap()
        .has_index("session"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn multiple_sessions_accumulate_and_compact() {
    let path = std::env::temp_dir().join(format!("ada_it_snap_{}.journal", std::process::id()));
    std::fs::remove_file(&path).ok();

    {
        let db = Kdb::open(&path).unwrap();
        let mut engine = AdaHealth::with_kdb(AdaHealthConfig::quick("s-a"), db);
        engine.run(&generate(&cfg(), 5));
        engine.run(&generate(&cfg(), 6));
    }
    let size_before = std::fs::metadata(&path).unwrap().len();

    {
        let mut db = Kdb::open(&path).unwrap();
        // Delete one session's feedback, then compact.
        let ids: Vec<u64> = db
            .find(names::FEEDBACK, &Filter::True)
            .unwrap()
            .iter()
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            db.delete(names::FEEDBACK, id).unwrap();
        }
        db.snapshot().unwrap();
    }
    let size_after = std::fs::metadata(&path).unwrap().len();
    assert!(
        size_after < size_before,
        "snapshot must shrink the journal ({size_before} -> {size_after})"
    );

    // Everything else still intact.
    let reopened = Kdb::open(&path).unwrap();
    assert_eq!(reopened.collection(names::RAW_DATA).unwrap().len(), 2);
    assert_eq!(reopened.collection(names::FEEDBACK).unwrap().len(), 0);
    assert!(!reopened
        .collection(names::CLUSTER_KNOWLEDGE)
        .unwrap()
        .is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_journal_tail_recovers_previous_sessions() {
    let path = std::env::temp_dir().join(format!("ada_it_torn_{}.journal", std::process::id()));
    std::fs::remove_file(&path).ok();
    {
        let db = Kdb::open(&path).unwrap();
        let mut engine = AdaHealth::with_kdb(AdaHealthConfig::quick("torn"), db);
        engine.run(&generate(&cfg(), 8));
    }
    // Simulate a crash mid-write.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

    let recovered = Kdb::open(&path).unwrap();
    // The schema and almost all documents survive; only the torn record
    // is lost.
    for name in names::ALL {
        assert!(recovered.collection(name).is_some(), "lost {name}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn goal_history_reloads_from_reopened_kdb() {
    let path = std::env::temp_dir().join(format!("ada_it_goals_{}.journal", std::process::id()));
    std::fs::remove_file(&path).ok();

    // Run enough sessions to train the goal-interest model.
    {
        let db = Kdb::open(&path).unwrap();
        let mut engine = AdaHealth::with_kdb(AdaHealthConfig::quick("hist"), db);
        for seed in 0..9 {
            engine.run(&generate(&cfg(), 50 + seed));
        }
        assert!(engine.goal_model_active());
    }

    // A fresh engine over the reopened store inherits the history — the
    // model is trained before any new session runs.
    let reopened = Kdb::open(&path).unwrap();
    let engine = AdaHealth::with_kdb(AdaHealthConfig::quick("hist2"), reopened);
    assert!(
        engine.goal_model_active(),
        "goal model must retrain from persisted session descriptors"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn ranker_feedback_reloads_from_reopened_kdb() {
    let path = std::env::temp_dir().join(format!("ada_it_rank_{}.journal", std::process::id()));
    std::fs::remove_file(&path).ok();

    let recorded;
    {
        let db = Kdb::open(&path).unwrap();
        let mut engine = AdaHealth::with_kdb(AdaHealthConfig::quick("rank"), db);
        let report = engine.run(&generate(&cfg(), 17));
        recorded = report.feedback_recorded;
        assert_eq!(engine.ranker_feedback_count(), recorded);
    }

    let reopened = Kdb::open(&path).unwrap();
    let engine = AdaHealth::with_kdb(AdaHealthConfig::quick("rank2"), reopened);
    assert_eq!(
        engine.ranker_feedback_count(),
        recorded,
        "ranker must replay persisted feedback"
    );
    std::fs::remove_file(&path).ok();
}
