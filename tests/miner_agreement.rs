//! Cross-crate algorithm agreement on realistic medical data: the
//! efficient implementations must match their reference baselines on the
//! synthetic cohort, not just on unit-test toys.

use ada_health::dataset::synthetic::{generate, SyntheticConfig};
use ada_health::mining::kmeans::{init, KMeans, KMeansBackend, KMeansInit};
use ada_health::mining::patterns::{apriori, fpgrowth, relative_min_support};
use ada_health::vsm::VsmBuilder;

fn cohort() -> ada_health::dataset::ExamLog {
    generate(
        &SyntheticConfig {
            num_patients: 250,
            num_exam_types: 40,
            target_records: 3_800,
            ..SyntheticConfig::small()
        },
        21,
    )
}

#[test]
fn fpgrowth_matches_apriori_on_visit_data() {
    let log = cohort();
    let transactions: Vec<Vec<u32>> = log
        .visits()
        .into_iter()
        .map(|v| v.exams.into_iter().map(|e| e.0).collect())
        .collect();
    for rel in [0.10, 0.05, 0.02] {
        let support = relative_min_support(transactions.len(), rel);
        let a = apriori::mine(&transactions, support);
        let f = fpgrowth::mine(&transactions, support);
        assert_eq!(a, f, "miners disagree at {rel} relative support");
        assert!(!f.is_empty(), "no patterns at {rel} — data too sparse?");
    }
}

#[test]
fn filtering_kmeans_matches_lloyd_on_vsm_data() {
    let log = cohort();
    let pv = VsmBuilder::new().build(&log);
    for k in [4usize, 8, 12] {
        let start = init::initial_centroids(&pv.matrix, k, KMeansInit::KMeansPlusPlus, 5);
        let lloyd = KMeans::new(k).fit_from(&pv.matrix, start.clone());
        let filtering = KMeans::new(k)
            .backend(KMeansBackend::Filtering)
            .fit_from(&pv.matrix, start);
        assert_eq!(
            lloyd.assignments, filtering.assignments,
            "backends diverged at k = {k}"
        );
        assert!((lloyd.sse - filtering.sse).abs() < 1e-6 * (1.0 + lloyd.sse));
    }
}

#[test]
fn fast_overall_similarity_matches_pairwise_on_vsm_data() {
    use ada_health::metrics::cluster;
    let log = cohort();
    let pv = VsmBuilder::new().build(&log);
    // Use a manageable slice: the pairwise reference is O(n²·d).
    let idx: Vec<usize> = (0..120).collect();
    let m = pv.matrix.select_rows(&idx);
    let result = KMeans::new(5).seed(3).fit(&m);
    let fast = cluster::overall_similarity(&m, &result.assignments, 5);
    let slow = cluster::overall_similarity_pairwise(&m, &result.assignments, 5);
    assert!((fast - slow).abs() < 1e-9, "fast {fast} vs pairwise {slow}");
}

#[test]
fn kdtree_nearest_matches_brute_force_on_vsm_data() {
    use ada_health::vsm::KdTree;
    let log = cohort();
    let pv = VsmBuilder::new().top_features(&log, 12).build(&log);
    let tree = KdTree::build(&pv.matrix);
    for q in 0..50 {
        let query = pv.matrix.row(q * 3);
        let (_, d_tree) = tree.nearest(query);
        let d_brute = (0..pv.matrix.num_rows())
            .map(|i| ada_health::vsm::dense::distance_sq(query, pv.matrix.row(i)))
            .fold(f64::INFINITY, f64::min);
        assert!((d_tree - d_brute).abs() < 1e-9);
    }
}
