//! Fast shape checks of the two paper experiments, at reduced scale.
//!
//! The release-mode reproduction binaries (`table1`, `partial_mining`)
//! validate the paper-scale behaviour; these tests guard the same
//! qualitative shapes in CI at a size debug builds can afford.

use ada_health::dataset::stats;
use ada_health::dataset::synthetic::{generate, SyntheticConfig};
use ada_health::engine::optimize::Optimizer;
use ada_health::engine::partial::HorizontalPartialMiner;
use ada_health::vsm::VsmBuilder;

#[test]
fn table1_shape_holds_at_reduced_scale() {
    let log = generate(&SyntheticConfig::small(), 42);
    let pv = VsmBuilder::new().top_features(&log, 24).build(&log);
    let report = Optimizer::quick(vec![6, 8, 12, 20]).run(&pv.matrix);

    // SSE strictly decreasing in K.
    let sse: Vec<f64> = report.evaluations.iter().map(|e| e.sse).collect();
    assert!(
        sse.windows(2).all(|w| w[1] < w[0]),
        "SSE must decrease: {sse:?}"
    );
    // Classification metrics degrade at large K.
    let first = &report.evaluations[0];
    let last = report.evaluations.last().unwrap();
    assert!(
        last.classification_score() < first.classification_score(),
        "K = 20 must score below K = 6"
    );
    // Auto-selection lands on a small K.
    assert!(report.selected_k <= 12, "selected {}", report.selected_k);
}

#[test]
fn partial_mining_crossover_holds_at_reduced_scale() {
    // At 400 patients the similarity estimate carries a few percent of
    // clustering noise, so this guards the robust half of the paper's
    // crossover — the 20%-of-types step always falls outside the 5%
    // tolerance — and leaves the exact 40%-step selection to the
    // paper-scale `partial_mining` binary (and the seed-pinned unit
    // test in `ada-core`).
    let log = generate(&SyntheticConfig::small(), 42);
    let report = HorizontalPartialMiner::default().run(&log);
    let sims: Vec<f64> = report.steps.iter().map(|s| s.mean_similarity()).collect();

    // Similarity decreases as exam types are dropped.
    assert!(sims[0] < sims[2], "direction inverted: {sims:?}");
    // The smallest subset is never acceptable…
    assert!(report.difference_vs_full(0) > report.epsilon);
    assert!(report.selected >= 1);
    // …and the selected subset genuinely satisfies the tolerance.
    assert!(report.difference_vs_full(report.selected) <= report.epsilon);
}

#[test]
fn coverage_points_match_generator_calibration() {
    let log = generate(&SyntheticConfig::small(), 42);
    let c20 = stats::coverage_at_fraction(&log, 0.20);
    let c40 = stats::coverage_at_fraction(&log, 0.40);
    assert!(c20 < c40 && c40 < 1.0);
    // The long-tail property the paper's experiment rests on.
    assert!(
        c20 > 2.5 * 0.20,
        "top 20% of types must be over-represented"
    );
}

#[test]
fn ablation_naive_bayes_also_degrades_with_k() {
    use ada_health::engine::optimize::RobustnessClassifier;
    let log = generate(&SyntheticConfig::small(), 42);
    let pv = VsmBuilder::new().top_features(&log, 24).build(&log);
    let mut opt = Optimizer::quick(vec![6, 20]);
    opt.classifier = RobustnessClassifier::NaiveBayes;
    let report = opt.run(&pv.matrix);
    assert!(
        report.evaluations[1].classification_score() < report.evaluations[0].classification_score(),
        "robustness degradation must be classifier-independent"
    );
}

#[test]
fn ablation_filtering_backend_reproduces_table_shape() {
    use ada_health::mining::kmeans::KMeansBackend;
    let log = generate(&SyntheticConfig::small(), 42);
    let pv = VsmBuilder::new().top_features(&log, 24).build(&log);
    let mut opt = Optimizer::quick(vec![6, 12]);
    opt.backend = KMeansBackend::Filtering;
    let report = opt.run(&pv.matrix);
    let lloyd = Optimizer::quick(vec![6, 12]).run(&pv.matrix);
    for (a, b) in report.evaluations.iter().zip(&lloyd.evaluations) {
        assert!((a.sse - b.sse).abs() < 1e-6 * (1.0 + b.sse));
        assert_eq!(a.accuracy, b.accuracy);
    }
}
