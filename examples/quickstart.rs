//! Quickstart: run the whole ADA-HEALTH pipeline on a small synthetic
//! cohort with three lines of setup.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ada_health::dataset::synthetic::{generate, SyntheticConfig};
use ada_health::engine::pipeline::{AdaHealth, AdaHealthConfig};

fn main() {
    // 1. A dataset. Here: a seeded synthetic diabetic-patient cohort
    //    (use `ada_health::dataset::io::load_dir` for your own CSVs).
    let log = generate(&SyntheticConfig::small(), 42);
    println!(
        "dataset: {} patients, {} exam types, {} records",
        log.num_patients(),
        log.num_exam_types(),
        log.num_records()
    );

    // 2. An engine. `quick` trades sweep breadth for speed; use
    //    `AdaHealthConfig::paper` for the full Table-I protocol.
    let mut engine = AdaHealth::new(AdaHealthConfig::quick("quickstart"));

    // 3. Run. One call executes every architecture box of the paper's
    //    Figure 1 and returns the full session report.
    let report = engine.run(&log);

    println!(
        "transformation: {} (selected automatically from {:?})",
        report.transform.best(),
        report
            .transform
            .ranked
            .iter()
            .map(|s| s.weighting.to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "partial mining: {:.0}% of exam types kept ({:.0}% of rows)",
        report.partial.selected_step().fraction * 100.0,
        report.partial.selected_step().row_coverage * 100.0
    );
    println!("optimizer: K = {} selected", report.optimizer.selected_k);
    println!(
        "knowledge: {} clusters + {} association rules extracted",
        report.clusters.len(),
        report.rules.len()
    );
    println!(
        "suggested end-goal: {}",
        report
            .goals
            .first()
            .map(|(g, _, _)| g.name())
            .unwrap_or("-")
    );
    println!();
    println!("top 3 knowledge items after feedback adaptation:");
    for item in report.ranked_items.iter().take(3) {
        println!("  - {item}");
    }
}
