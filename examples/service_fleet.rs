//! A fleet of concurrent analysis sessions through `ada-service`.
//!
//! The paper's closing vision is an automated analytics flow serving
//! many questions at once — "a path towards automated data analysis".
//! This example submits nine synthetic-cohort sessions with mixed
//! priorities to one [`AnalysisService`] over a single shared K-DB,
//! cancels one mid-flight, lets one exercise the retry path, and then
//! prints the registry's final states plus the aggregate service
//! metrics.
//!
//! ```text
//! cargo run --release --example service_fleet
//! ```

use std::sync::Arc;

use ada_health::dataset::synthetic::{generate, SyntheticConfig};
use ada_health::engine::pipeline::AdaHealthConfig;
use ada_health::kdb::Kdb;
use ada_health::service::{
    AnalysisService, CancelToken, JobSpec, Priority, ServiceConfig, SessionState,
};

fn main() {
    let service = AnalysisService::with_kdb(
        ServiceConfig {
            workers: 4,
            queue_capacity: 32,
            ..ServiceConfig::default()
        },
        Kdb::in_memory(),
    );

    let cohort = SyntheticConfig {
        num_patients: 100,
        num_exam_types: 22,
        target_records: 1_400,
        ..SyntheticConfig::small()
    };

    // Eight regular sessions, cycling through the priority classes —
    // distinct seeds, so each analyzes a different cohort.
    println!("== submitting fleet ==");
    let priorities = [Priority::High, Priority::Normal, Priority::Low];
    let mut ids = Vec::new();
    for i in 0..8u64 {
        let priority = priorities[i as usize % priorities.len()];
        let spec = JobSpec::new(
            AdaHealthConfig::quick(format!("cohort-{i:02}")),
            Arc::new(generate(&cohort, 1_000 + i)),
        )
        .priority(priority);
        let id = service.submit(spec).expect("queue has room");
        println!("  {id} cohort-{i:02} ({priority})");
        ids.push(id);
    }

    // A ninth session we cancel while it is still in flight.
    let doomed_token = CancelToken::new();
    let doomed = service
        .submit(
            JobSpec::new(
                AdaHealthConfig::quick("cancelled-study"),
                Arc::new(generate(&cohort, 2_000)),
            )
            .priority(Priority::Low)
            .cancel_token(doomed_token.clone()),
        )
        .expect("queue has room");
    println!("  {doomed} cancelled-study (low, will be cancelled)");

    // And a flaky one that panics twice before succeeding, to show the
    // capped-backoff retry path.
    let flaky = service
        .submit(
            JobSpec::new(
                AdaHealthConfig::quick("flaky-study"),
                Arc::new(generate(&cohort, 3_000)),
            )
            .inject_failures(2)
            .max_retries(3),
        )
        .expect("queue has room");
    println!("  {flaky} flaky-study (normal, 2 injected failures)");
    println!("  (any panic messages below are the injected failures being caught and retried)");

    // Cancel the doomed session mid-flight: the token flips now; the
    // session observes it at its next pipeline checkpoint (or before it
    // ever starts, if it is still queued).
    doomed_token.cancel();

    for id in ids.iter().chain([&doomed, &flaky]) {
        service.wait(*id).expect("session registered");
    }

    println!("\n== registry final states ==");
    for (id, name, state) in service.sessions() {
        let detail = match &state {
            SessionState::Completed(outcome) => match outcome.pipeline() {
                Some(report) => format!(
                    "{} clusters, {} rules, top goal {}",
                    report.clusters.len(),
                    report.rules.len(),
                    report
                        .goals
                        .first()
                        .map_or_else(|| "-".to_string(), |(g, _, _)| g.name().to_string()),
                ),
                None => "signals session".to_string(),
            },
            SessionState::Failed { reason } => reason.clone(),
            _ => String::new(),
        };
        println!("  {id} {name:<16} {:<9} {detail}", state.label());
    }

    let metrics = service.shutdown();
    println!("\n== aggregate service metrics ==");
    println!("  submitted        {}", metrics.submitted);
    println!("  completed        {}", metrics.completed);
    println!("  failed           {}", metrics.failed);
    println!("  cancelled        {}", metrics.cancelled);
    println!("  retries          {}", metrics.retried);
    println!("  rejected         {}", metrics.rejected);
    println!("  max queue depth  {}", metrics.max_queue_depth);
    println!("  per-stage latency (mean over runs):");
    for (stage, stat) in &metrics.stages {
        println!(
            "    {stage:<21} {:>4} runs  {:>8.2?} mean",
            stat.runs, stat.mean
        );
    }
}
