//! Guideline-compliance audit plus follow-up sequence analysis.
//!
//! The paper motivates ADA-HEALTH with, among others, "(ii) assessing
//! the adherence of medical prescriptions and treatments to relevant
//! clinical guidelines". This example audits the synthetic diabetic
//! cohort against a standard follow-up guideline set, profiles the
//! cohort's visit cadence, and mines the frequent *ordered* examination
//! sequences that show which follow-ups actually happen after which
//! exams.
//!
//! ```text
//! cargo run --release --example compliance_audit
//! ```

use ada_health::dataset::synthetic::{generate_with_truth, SyntheticConfig};
use ada_health::dataset::timeline::{gap_summary, monthly_volume, timelines};
use ada_health::engine::compliance::{assess, diabetes_guidelines, Verdict};
use ada_health::mining::sequences;

fn main() {
    let data = generate_with_truth(&SyntheticConfig::small(), 42);
    let log = &data.log;

    // --- visit cadence ---
    println!("== visit cadence ==");
    if let Some(gaps) = gap_summary(log) {
        println!(
            "{} inter-visit gaps: mean {:.0} days, median {:.0}, max {}",
            gaps.count, gaps.mean_days, gaps.median_days, gaps.max_days
        );
    }
    let monthly = monthly_volume(log, 2015);
    let peak = monthly.iter().enumerate().max_by_key(|&(_, c)| *c).unwrap();
    println!(
        "monthly record volume: min {}, max {} (month {})",
        monthly.iter().min().unwrap(),
        peak.1,
        peak.0 + 1
    );

    // --- guideline audit ---
    println!("\n== guideline compliance ==");
    let guidelines = diabetes_guidelines(log);
    let report = assess(log, &guidelines);
    for r in &report.results {
        println!(
            "{:<52} {:>5.1}%  ({}/{} eligible)",
            r.name,
            r.rate() * 100.0,
            r.compliant,
            r.eligible
        );
    }
    println!("overall compliance: {:.1}%", report.overall_rate() * 100.0);

    // Who drives non-compliance? Cross-reference the latent cohort.
    let hba1c = &report.results[0];
    let episodic_offenders = hba1c
        .offenders
        .iter()
        .filter(|(p, _)| data.episodic[p.index()])
        .count();
    println!(
        "worst offenders of \"{}\": {} sampled, {} of them episodic patients",
        hba1c.name,
        hba1c.offenders.len(),
        episodic_offenders
    );
    for (patient, verdict) in hba1c.offenders.iter().take(3) {
        let text = match verdict {
            Verdict::TooFew { observed } => format!("only {observed} exam(s)"),
            Verdict::GapExceeded { worst_gap } => format!("{worst_gap}-day gap"),
            _ => "ok".into(),
        };
        println!(
            "  {patient}: {text} (profile {})",
            data.profile_names[data.true_profile[patient.index()]]
        );
    }

    // --- ordered follow-up sequences ---
    println!("\n== frequent examination sequences (ordered, distinct visits) ==");
    let cohort_timelines = timelines(log);
    let visit_sequences: Vec<Vec<Vec<u32>>> = cohort_timelines
        .iter()
        .map(|t| {
            t.visits
                .iter()
                .map(|v| v.exams.iter().map(|e| e.0).collect())
                .collect()
        })
        .collect();
    let min_support = (log.num_patients() / 10).max(2); // 10% of patients
    let mined = sequences::mine(&visit_sequences, min_support, 3);
    let mut pairs: Vec<_> = mined.iter().filter(|s| s.sequence.len() == 2).collect();
    pairs.sort_by_key(|s| std::cmp::Reverse(s.support));
    for seq in pairs.iter().take(6) {
        let names: Vec<&str> = seq
            .sequence
            .iter()
            .map(|&i| log.catalog()[i as usize].name.as_str())
            .collect();
        let confidence =
            sequences::sequence_confidence(&visit_sequences, &seq.sequence[..1], seq.sequence[1]);
        println!(
            "  {}  ->  {}   ({} patients, follow-up confidence {:.0}%)",
            names[0],
            names[1],
            seq.support,
            confidence * 100.0
        );
    }
    println!(
        "{} frequent sequences total (max length 3, support >= {} patients)",
        mined.len(),
        min_support
    );
}
