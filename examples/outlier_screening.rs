//! Outlier screening: find patients with atypical examination histories.
//!
//! The paper notes that rarely-prescribed exams "could affect other
//! types of analyses such as outlier detection". This example runs
//! DBSCAN on normalized examination-history vectors: density clusters
//! recover the care-profile structure while the noise label surfaces
//! patients whose exam mix matches nobody — here, dominated by the
//! generator's *episodic* specialist-only patients, which the example
//! verifies against the latent ground truth.
//!
//! ```text
//! cargo run --release --example outlier_screening
//! ```

use ada_health::dataset::synthetic::{generate_with_truth, SyntheticConfig};
use ada_health::mining::dbscan::{Dbscan, DbscanLabel};
use ada_health::vsm::VsmBuilder;

fn main() {
    let data = generate_with_truth(&SyntheticConfig::small(), 42);
    let log = &data.log;
    let pv = VsmBuilder::new().normalize(true).build(log);

    // eps swept coarsely; min_points 5 ~ smallest clinically meaningful
    // group in a 400-patient cohort.
    println!("eps sweep (min_points = 5):");
    let mut chosen = None;
    for eps in [0.5, 0.7, 0.9, 1.1] {
        let result = Dbscan::new(eps, 5).fit(&pv.matrix);
        let noise = result.noise_points().len();
        println!(
            "  eps {eps:.1}: {} clusters, {} noise patients",
            result.num_clusters, noise
        );
        // Pick the sweep point with a useful cluster count and a noise
        // rate that actually screens (flagging most of the cohort is
        // not screening).
        if result.num_clusters >= 3 && noise * 3 < log.num_patients() && chosen.is_none() {
            chosen = Some((eps, result));
        }
    }
    let (eps, result) = chosen.expect("some eps yields clusters");
    println!("\nusing eps = {eps}");

    // Who are the outliers?
    let noise = result.noise_points();
    let episodic_among_noise = noise.iter().filter(|&&i| data.episodic[i]).count();
    let episodic_total = data.episodic.iter().filter(|&&e| e).count();
    println!(
        "{} noise patients; {} of them are latent episodic patients \
         ({} episodic in the cohort)",
        noise.len(),
        episodic_among_noise,
        episodic_total
    );

    // Inspect a few flagged patients: their record counts and top exams.
    println!("\nsample flagged patients:");
    let counts = log.patient_exam_counts();
    for &i in noise.iter().take(5) {
        let total: u32 = counts[i].iter().sum();
        let mut top: Vec<(usize, u32)> = counts[i]
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(e, &c)| (e, c))
            .collect();
        top.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        let exams: Vec<String> = top
            .iter()
            .take(3)
            .map(|&(e, c)| format!("{} x{}", log.catalog()[e].name, c))
            .collect();
        println!(
            "  patient {i}: {total} records, age {}, profile {}, episodic {}: {}",
            log.patients()[i].age,
            data.profile_names[data.true_profile[i]],
            data.episodic[i],
            exams.join("; ")
        );
    }

    // Cluster composition vs latent profiles.
    println!("\ndensity clusters vs latent profiles:");
    for cluster in 0..result.num_clusters {
        let members: Vec<usize> = result
            .labels
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == DbscanLabel::Cluster(cluster))
            .map(|(i, _)| i)
            .collect();
        let mut profile_counts = vec![0usize; data.profile_names.len()];
        for &i in &members {
            profile_counts[data.true_profile[i]] += 1;
        }
        let (best, count) = profile_counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .expect("profiles exist");
        println!(
            "  cluster {cluster}: {:>4} patients, majority profile {} ({:.0}%)",
            members.len(),
            data.profile_names[best],
            100.0 * *count as f64 / members.len().max(1) as f64
        );
    }
}
