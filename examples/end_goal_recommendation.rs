//! Self-learning end-goal recommendation across sessions, with a
//! persistent K-DB.
//!
//! The paper's "core and most innovative contribution": after enough
//! past sessions, ADA-HEALTH should predict which analysis end-goal a
//! user will find interesting for a *new* dataset. This example runs
//! several sessions over differently-shaped cohorts (persisting every
//! artifact to an on-disk K-DB journal), lets the goal-interest model
//! train on the accumulated history, and shows the recommendation for a
//! fresh dataset — plus the K-DB surviving a reopen.
//!
//! ```text
//! cargo run --release --example end_goal_recommendation
//! ```

use ada_health::dataset::synthetic::{generate, SyntheticConfig};
use ada_health::engine::pipeline::{AdaHealth, AdaHealthConfig};
use ada_health::kdb::schema::names;
use ada_health::kdb::Kdb;

fn main() {
    let kdb_path = std::env::temp_dir().join("ada_health_example_kdb.journal");
    std::fs::remove_file(&kdb_path).ok();

    // Sessions over cohorts of varying shape (different sizes and
    // sparsity levels), all persisted into one K-DB.
    let cohorts = [
        (150usize, 30usize, 2_000usize),
        (220, 40, 3_500),
        (300, 50, 4_200),
        (180, 35, 2_600),
        (260, 45, 4_000),
        (200, 30, 3_000),
        (240, 50, 3_800),
        (170, 40, 2_400),
    ];

    let db = Kdb::open(&kdb_path).expect("open journaled K-DB");
    let mut engine = AdaHealth::with_kdb(AdaHealthConfig::quick("session-0"), db);
    for (i, &(patients, types, records)) in cohorts.iter().enumerate() {
        let cfg = SyntheticConfig {
            num_patients: patients,
            num_exam_types: types,
            target_records: records,
            ..SyntheticConfig::small()
        };
        let log = generate(&cfg, 1_000 + i as u64);
        let report = engine.run(&log);
        println!(
            "session {i}: {patients} patients -> goal {:<24} (K = {}, {} knowledge items)",
            report.goals[0].0.to_string(),
            report.optimizer.selected_k,
            report.ranked_items.len()
        );
    }

    println!(
        "\ngoal-interest model trained: {} (needs {} sessions)",
        engine.goal_model_active(),
        ada_health::engine::goals::GoalInterestModel::MIN_EXAMPLES
    );

    // Recommendation for a brand-new dataset.
    let fresh = generate(&SyntheticConfig::small(), 9_999);
    let report = engine.run(&fresh);
    println!("\nrecommendations for the new dataset (ranked):");
    for (goal, score, verdict) in report.goals.iter().take(3) {
        println!(
            "  {:<26} score {:.2}  ({})",
            goal.to_string(),
            score,
            verdict.reason
        );
    }

    // The K-DB journal holds everything; prove it survives a reopen.
    drop(engine);
    let reopened = Kdb::open(&kdb_path).expect("replay journal");
    println!("\nK-DB after reopen (journal replayed):");
    for name in names::ALL {
        println!(
            "  {name:<20} {} documents",
            reopened.collection(name).map_or(0, |c| c.len())
        );
    }
    std::fs::remove_file(&kdb_path).ok();
}
