//! A remote fleet: analysis sessions submitted over the ADAN1 wire.
//!
//! The paper's closing vision is analytics as a *service* — clinicians
//! and scheduled jobs submitting questions to a long-lived installation
//! that accumulates knowledge in one shared K-DB. This example runs
//! that topology in one process: an [`AnalysisService`] behind a
//! loopback [`NetServer`], a blocking [`Client`] submitting sessions
//! one connection each, and one poll-based [`AsyncClient`] multiplexing
//! several logical requests over a single connection — no external
//! async runtime anywhere.
//!
//! ```text
//! cargo run --release --example remote_fleet
//! ```

use std::sync::Arc;
use std::time::Duration;

use ada_health::kdb::{Kdb, Value};
use ada_health::net::proto::{CohortSpec, Request, Response, WireJobSpec};
use ada_health::net::{AsyncClient, Client, NetConfig, NetServer};
use ada_health::service::{AnalysisService, ServiceConfig};

fn main() {
    // The "installation": a service on a shared K-DB, served over TCP.
    let service = Arc::new(AnalysisService::with_kdb(
        ServiceConfig {
            workers: 4,
            queue_capacity: 32,
            ..ServiceConfig::default()
        },
        Kdb::in_memory(),
    ));
    let server =
        NetServer::start(Arc::clone(&service), NetConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    println!("== ada-net serving on {addr} ==");

    // Three sessions over individual blocking connections.
    println!("\n== blocking clients, one connection each ==");
    let mut blocking = Vec::new();
    for i in 0..3u64 {
        let mut client = Client::connect(addr).expect("connect");
        let spec = WireJobSpec::quick(format!("clinic-{i}"), CohortSpec::small(9_000 + i));
        match client.call(Request::Submit(spec)).expect("submit") {
            Response::Submitted { session } => {
                println!("  session {session}  clinic-{i}");
                blocking.push((session, client));
            }
            other => panic!("expected Submitted, got {other:?}"),
        }
    }

    // Five more multiplexed over ONE connection: submit all five, then
    // resolve the tickets — requests in flight simultaneously.
    println!("\n== async client, five sessions on one connection ==");
    let multiplexed = AsyncClient::connect(addr).expect("connect");
    let tickets: Vec<_> = (0..5u64)
        .map(|i| {
            let spec = WireJobSpec::quick(format!("sweep-{i}"), CohortSpec::small(9_500 + i));
            multiplexed.submit(Request::Submit(spec)).expect("submit")
        })
        .collect();
    let mut sweep = Vec::new();
    for ticket in tickets {
        match ticket
            .wait(Duration::from_secs(60))
            .expect("submission resolves")
        {
            Response::Submitted { session } => sweep.push(session),
            other => panic!("expected Submitted, got {other:?}"),
        }
    }
    println!("  sessions {sweep:?} all in flight");

    // Health answers while the fleet runs.
    if let Response::Health { doc } = multiplexed
        .call(Request::Health, Duration::from_secs(60))
        .expect("health")
    {
        println!(
            "  health mid-fleet: status={} connections={}",
            doc.get("status").and_then(Value::as_str).unwrap_or("?"),
            doc.get("net_connections")
                .and_then(Value::as_i64)
                .unwrap_or(-1),
        );
    }

    // Wait for every session and print its remote result summary.
    println!("\n== results over the wire ==");
    for (session, client) in &mut blocking {
        let (state, _) = client
            .wait_terminal(*session, Duration::from_secs(300))
            .expect("terminal");
        print_summary(
            *session,
            &state,
            client.call(Request::Results { session: *session }),
        );
    }
    let mut status_client = Client::connect(addr).expect("connect");
    for session in sweep {
        let (state, _) = status_client
            .wait_terminal(session, Duration::from_secs(300))
            .expect("terminal");
        print_summary(
            session,
            &state,
            status_client.call(Request::Results { session }),
        );
    }

    // The combined exposition: service series plus the ada_net_* family.
    println!("\n== prometheus (net series) ==");
    for line in server.snapshot_prometheus().lines() {
        if line.starts_with("ada_net_") {
            println!("  {line}");
        }
    }

    drop(blocking);
    drop(status_client);
    drop(multiplexed);
    let net = server.shutdown();
    println!(
        "\n== drain ==\n  {} accepts, {} requests, {} protocol errors",
        net.accepts,
        net.requests_total(),
        net.protocol_errors
    );
}

fn print_summary(session: u64, state: &str, results: Result<Response, ada_health::net::NetError>) {
    match results {
        Ok(Response::ResultSummary { summary, .. }) => {
            println!(
                "  session {session}  {state:<10} k={} clusters={} rules={} top-goal={}",
                summary
                    .get("selected_k")
                    .and_then(Value::as_i64)
                    .unwrap_or(0),
                summary.get("clusters").and_then(Value::as_i64).unwrap_or(0),
                summary.get("rules").and_then(Value::as_i64).unwrap_or(0),
                summary
                    .get("top_goal")
                    .and_then(Value::as_str)
                    .unwrap_or("-"),
            );
        }
        other => println!("  session {session}  {state:<10} (no summary: {other:?})"),
    }
}
