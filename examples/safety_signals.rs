//! Ranked safety-signal mining on a synthetic diabetes cohort.
//!
//! Builds patient-level 2×2 contingency tables for every (exposure
//! exam, outcome condition group) pair, estimates reporting odds
//! ratios with 95% CIs, shrinks them EBGM-style under a cohort-fitted
//! Gamma prior, and prints the top-ranked signals — first via the
//! direct mining API, then as a `Workload::SafetySignals` session
//! through the analysis service (K-DB persistence, physician feedback
//! loop, and the `ada_signals_*` Prometheus counters included).
//!
//! Run: `cargo run --release --example safety_signals`

use std::sync::Arc;

use ada_health::dataset::synthetic::{generate, SyntheticConfig};
use ada_health::engine::{AdaHealthConfig, RunControl};
use ada_health::kdb::schema::names;
use ada_health::kdb::{Filter, Kdb};
use ada_health::service::{AnalysisService, JobSpec, ServiceConfig, SessionState, Workload};
use ada_health::signals::{mine_signals, SignalConfig};

fn main() {
    let cohort = SyntheticConfig {
        num_patients: 800,
        num_exam_types: 60,
        target_records: 12_000,
        ..SyntheticConfig::small()
    };
    let log = generate(&cohort, 42);
    println!(
        "cohort: {} patients, {} exam types, {} records\n",
        log.patients().len(),
        log.catalog().len(),
        log.records().len()
    );

    // Direct API: mine, then inspect the ranking.
    let config = SignalConfig::default();
    let report = mine_signals(&log, &config, &RunControl::new()).expect("mining succeeds");
    println!(
        "== top safety signals ({} ranked, {} tables, {} zero-cell corrected) ==",
        report.signals.len(),
        report.tables_built,
        report.zero_cell_corrections
    );
    println!(
        "shrinkage prior: Gamma(alpha {:.3}, beta {:.3}) fitted in {} iterations\n",
        report.prior.alpha, report.prior.beta, report.prior.iterations
    );
    for (rank, signal) in report.signals.iter().take(10).enumerate() {
        println!(
            "{:>2}. [score {:.3}] {}  (a={}, b={}, c={}, d={})",
            rank + 1,
            signal.score,
            signal.description,
            signal.table.a,
            signal.table.b,
            signal.table.c,
            signal.table.d,
        );
    }

    // As a service workload: same statistics, plus K-DB persistence,
    // the seeded physician feedback loop, and service-level counters.
    let service = AnalysisService::with_kdb(ServiceConfig::default(), Kdb::in_memory());
    let spec = JobSpec::new(AdaHealthConfig::quick("signal-study"), Arc::new(log))
        .workload(Workload::SafetySignals(config));
    let id = service.submit(spec).expect("submit");
    match service.wait(id).expect("session registered") {
        SessionState::Completed(outcome) => {
            let session = outcome.signals().expect("signals workload");
            println!(
                "\n== service session: {} signals persisted, {} feedback labels ==",
                session.signals.len(),
                session.feedback_recorded
            );
            println!("post-feedback ranking (top 5):");
            for line in session.ranked.iter().take(5) {
                println!("  {line}");
            }
        }
        other => panic!("expected Completed, got {other:?}"),
    }
    let persisted = service
        .kdb()
        .read()
        .find(
            names::SIGNAL_KNOWLEDGE,
            &Filter::eq("session", "signal-study"),
        )
        .expect("signal collection exists")
        .len();
    let metrics = service.shutdown();
    println!(
        "\nK-DB: {persisted} signal_knowledge documents; counters: \
         {} tables built, {} signals emitted",
        metrics.signals_tables_built, metrics.signals_emitted
    );
}
