//! A live hospital feed: streaming ingestion into a running fleet node.
//!
//! The paper's cohort arrives as a *feed* in a real installation —
//! exam records trickling out of the wards day by day, not a tidy
//! batch file. This example runs that topology end to end in one
//! process: a primary [`FleetNode`] (service + ADAN1 wire + journal
//! shipping port), a blocking wire [`Client`] playing the hospital
//! integration engine, and the `ada-stream` subsystem behind the
//! `StreamOpen` / `Ingest` / `StreamQuery` / `StreamSeal` requests —
//! bounded backpressure, watermark-driven window closes, mini-batch
//! K-means updates, and a queryable live model the whole way.
//!
//! ```text
//! cargo run --release --example hospital_feed
//! ```

use std::time::Duration;

use ada_health::dataset::synthetic::{generate, SyntheticConfig};
use ada_health::dataset::{ExamRecord, StreamOrder};
use ada_health::fleet::FleetNode;
use ada_health::kdb::{SharedKdb, Value};
use ada_health::net::proto::{Request, Response};
use ada_health::net::{Client, NetConfig};
use ada_health::service::ServiceConfig;
use ada_health::stream::StreamMiningSpec;

/// Records per wire batch — small on purpose, so the bounded channel's
/// backpressure path gets exercised.
const BATCH: usize = 96;

fn main() {
    // The installation: a primary node with an in-memory K-DB. The
    // stream's `stream_windows` checkpoints land in the same store the
    // analysis sessions use, so a restarted node would resume the feed
    // from its last durable watermark.
    let node = FleetNode::start_primary(
        "ward-primary",
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        SharedKdb::in_memory(),
        NetConfig::default(),
    )
    .expect("bind loopback");
    let addr = node.client_addr();
    println!("== {} serving on {addr} ==", node.name());

    // The hospital integration engine: one blocking wire client.
    let mut client = Client::connect(addr).expect("connect");

    // Open the named stream. Re-opening the same name is idempotent;
    // after a crash this same request resumes from the durable windows.
    let spec = StreamMiningSpec::quick().seed(11).k(4);
    match client
        .call(Request::StreamOpen {
            stream: "icu-feed".into(),
            spec,
        })
        .expect("stream_open")
    {
        Response::StreamOpened {
            stream,
            resumed_windows,
        } => println!("opened stream {stream:?} ({resumed_windows} durable windows resumed)"),
        other => panic!("expected StreamOpened, got {other:?}"),
    }

    // A year-and-change of ward traffic, replayed in timestamp order
    // with seeded bounded disorder — the realistic arrival pattern the
    // reorder buffer absorbs.
    let cohort = SyntheticConfig {
        num_patients: 400,
        num_exam_types: 40,
        target_records: 6_000,
        ..SyntheticConfig::small()
    };
    let feed: Vec<ExamRecord> = StreamOrder::new(&generate(&cohort, 11), 11, 5).collect();
    println!("feeding {} records in batches of {BATCH}", feed.len());

    let mut backoffs = 0u64;
    let mut peak_pending = 0u64;
    let batches = feed.len().div_ceil(BATCH);
    let quarter = (batches / 4).max(1);
    for (i, batch) in feed.chunks(BATCH).enumerate() {
        // A full channel answers Busy with a retry hint — that is the
        // backpressure contract, not an error. Wait and resend.
        loop {
            match client
                .call(Request::Ingest {
                    stream: "icu-feed".into(),
                    records: batch.to_vec(),
                })
                .expect("ingest")
            {
                Response::Ingested { pending, .. } => {
                    peak_pending = peak_pending.max(pending);
                    break;
                }
                Response::Busy { retry_after } => {
                    backoffs += 1;
                    std::thread::sleep(retry_after.min(Duration::from_millis(5)));
                }
                other => panic!("expected Ingested, got {other:?}"),
            }
        }
        // Every quarter of the feed, ask the node what it has mined so
        // far — read-your-writes, so every acked batch is reflected.
        if i > 0 && i % quarter == 0 && i / quarter <= 3 {
            status(&mut client, &format!("{}%", 25 * (i / quarter)));
        }
    }
    println!("feed delivered ({backoffs} backpressure waits, peak {peak_pending} pending batches)");

    // End of feed: seal closes every buffered window regardless of the
    // watermark and leaves the final model queryable.
    match client
        .call(Request::StreamSeal {
            stream: "icu-feed".into(),
        })
        .expect("stream_seal")
    {
        Response::StreamState { .. } => status(&mut client, "sealed"),
        other => panic!("expected StreamState, got {other:?}"),
    }

    // The stream's pinned Prometheus families, live on the node.
    println!("\n== prometheus (stream series) ==");
    for line in node.exposition().lines() {
        if line.starts_with("ada_stream_") {
            println!("  {line}");
        }
    }

    drop(client);
    let net = node.shutdown();
    println!(
        "\n== drain ==\n  {} accepts, {} requests, {} protocol errors",
        net.accepts,
        net.requests_total(),
        net.protocol_errors
    );
}

/// Queries and prints the stream's live status document.
fn status(client: &mut Client, tag: &str) {
    let doc = match client
        .call(Request::StreamQuery {
            stream: "icu-feed".into(),
        })
        .expect("stream_query")
    {
        Response::StreamState { doc } => doc,
        other => panic!("expected StreamState, got {other:?}"),
    };
    let geti = |field: &str| doc.get(field).and_then(Value::as_i64).unwrap_or(0);
    let model = match doc.get("model") {
        Some(Value::Doc(m)) => format!(
            "k={} sse={:.1} fp={}",
            m.get("k").and_then(Value::as_i64).unwrap_or(0),
            m.get("sse").and_then(Value::as_f64).unwrap_or(f64::NAN),
            m.get("fingerprint").and_then(Value::as_str).unwrap_or("?"),
        ),
        _ => "none yet".into(),
    };
    println!(
        "  [{tag}] windows={} watermark={} ingested={} reordered={} rows={} vocab={} refits={} model: {model}",
        geti("windows_closed"),
        doc.get("watermark")
            .and_then(Value::as_i64)
            .map_or("-".into(), |d| d.to_string()),
        geti("ingested"),
        geti("reordered"),
        geti("rows"),
        geti("vocab"),
        geti("refits"),
    );
}
