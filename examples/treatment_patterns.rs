//! Pattern-based knowledge discovery: which examinations are commonly
//! prescribed together, at which abstraction level?
//!
//! Exercises the paper's second exploratory family (its reference [2],
//! MeTA): FP-growth over visit transactions, association-rule generation
//! with the full interestingness battery, and taxonomy-aware multi-level
//! mining that surfaces patterns at the condition-group level when
//! leaf-level exams are too rare.
//!
//! ```text
//! cargo run --release --example treatment_patterns
//! ```

use ada_health::dataset::synthetic::{generate, SyntheticConfig};
use ada_health::dataset::taxonomy::{ConditionGroup, Domain};
use ada_health::dataset::ExamTypeId;
use ada_health::mining::patterns::taxonomy_mine::{self, ItemHierarchy};
use ada_health::mining::patterns::{fpgrowth, relative_min_support, rules};

fn main() {
    let log = generate(&SyntheticConfig::small(), 42);
    let visits = log.visits();
    let transactions: Vec<Vec<u32>> = visits
        .iter()
        .map(|v| v.exams.iter().map(|e| e.0).collect())
        .collect();
    println!(
        "{} visits from {} patients ({} exam types)",
        transactions.len(),
        log.num_patients(),
        log.num_exam_types()
    );

    let name_of = |i: u32| -> String {
        let n_leaf = log.num_exam_types() as u32;
        let n_groups = ConditionGroup::ALL.len() as u32;
        if i < n_leaf {
            log.catalog()[i as usize].name.clone()
        } else if i < n_leaf + n_groups {
            format!("[group: {}]", ConditionGroup::ALL[(i - n_leaf) as usize])
        } else {
            format!(
                "[domain: {}]",
                Domain::ALL[(i - n_leaf - n_groups) as usize]
            )
        }
    };

    // --- flat mining: frequent visit-level exam combinations ---
    let min_support = relative_min_support(transactions.len(), 0.04);
    let frequent = fpgrowth::mine(&transactions, min_support);
    println!(
        "\n[fp-growth] {} frequent itemsets at 4% visit support; largest:",
        frequent.len()
    );
    let mut by_size = frequent.clone();
    by_size.sort_by_key(|f| std::cmp::Reverse((f.items.len(), f.support)));
    for f in by_size.iter().take(5) {
        let names: Vec<String> = f.items.iter().map(|&i| name_of(i)).collect();
        println!(
            "  {{{}}}  support {:.1}%",
            names.join(", "),
            100.0 * f.support as f64 / transactions.len() as f64
        );
    }

    // --- association rules: co-prescription knowledge items ---
    let mined = rules::generate(&frequent, transactions.len(), 0.6);
    println!("\n[rules] top co-prescription rules (confidence >= 60%):");
    for rule in mined.iter().take(8) {
        println!("  {}", rules::format_rule(rule, name_of));
        println!(
            "      leverage {:+.4}  conviction {:.2}  jaccard {:.3}",
            rule.counts.leverage(),
            rule.counts.conviction(),
            rule.counts.jaccard()
        );
    }

    // --- multi-level mining over the exam taxonomy ---
    let taxonomy = log.taxonomy();
    let n_leaf = log.num_exam_types() as u32;
    let n_groups = ConditionGroup::ALL.len() as u32;
    let mut parent: Vec<Option<u32>> = (0..n_leaf)
        .map(|e| {
            taxonomy
                .group_of(ExamTypeId(e))
                .map(|g| n_leaf + g.index() as u32)
        })
        .collect();
    for g in ConditionGroup::ALL {
        parent.push(Some(n_leaf + n_groups + g.domain().index() as u32));
    }
    for _ in Domain::ALL {
        parent.push(None);
    }
    let hierarchy = ItemHierarchy::new(parent);

    // A support level that leaf-level rare exams cannot clear.
    let strict_support = relative_min_support(transactions.len(), 0.15);
    let flat_strict = fpgrowth::mine(&transactions, strict_support);
    let multi = taxonomy_mine::mine(&transactions, &hierarchy, strict_support);
    let generalized = multi
        .iter()
        .filter(|f| f.items.iter().any(|&i| i >= n_leaf))
        .count();
    println!(
        "\n[multi-level] at 15% support: {} leaf-only itemsets, {} multi-level \
         ({} involving generalized taxonomy nodes)",
        flat_strict.len(),
        multi.len(),
        generalized
    );
    println!("  examples of generalized patterns:");
    for f in multi
        .iter()
        .filter(|f| f.items.iter().any(|&i| i >= n_leaf) && f.items.len() >= 2)
        .take(5)
    {
        let names: Vec<String> = f.items.iter().map(|&i| name_of(i)).collect();
        println!(
            "  {{{}}}  support {:.1}%",
            names.join(", "),
            100.0 * f.support as f64 / transactions.len() as f64
        );
    }
}
