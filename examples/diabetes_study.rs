//! The paper's Section IV study, end to end, with narration: find groups
//! of diabetic patients with similar examination history.
//!
//! Mirrors the published protocol — VSM transformation, adaptive
//! horizontal partial mining with the 5% overall-similarity tolerance,
//! the Table-I K sweep with decision-tree robustness scoring, automatic
//! K selection — on the paper-scale synthetic cohort, then inspects the
//! selected clustering clinically (sizes, cohesion, dominant condition
//! groups, age profile per cluster).
//!
//! ```text
//! cargo run --release --example diabetes_study           # paper scale
//! cargo run --release --example diabetes_study -- small  # fast variant
//! ```

use ada_health::dataset::synthetic::{generate_with_truth, SyntheticConfig};
use ada_health::engine::optimize::Optimizer;
use ada_health::engine::partial::HorizontalPartialMiner;
use ada_health::mining::kmeans::KMeans;
use ada_health::vsm::VsmBuilder;

fn main() {
    let small = std::env::args().any(|a| a == "small");
    let config = if small {
        SyntheticConfig::small()
    } else {
        SyntheticConfig::paper()
    };
    let data = generate_with_truth(&config, 42);
    let log = &data.log;
    println!(
        "cohort: {} diabetic patients, {} exam types, {} records over {}",
        log.num_patients(),
        log.num_exam_types(),
        log.num_records(),
        config.year
    );

    // --- VSM transformation (the paper's implemented block) ---
    println!("\n[VSM] building patient examination-history vectors (raw counts)");

    // --- adaptive horizontal partial mining ---
    let partial = HorizontalPartialMiner::default().run(log);
    let step = partial.selected_step();
    println!(
        "[partial mining] selected {} of {} exam types = {:.1}% of rows \
         (similarity within {:.0}% of full data)",
        step.included,
        log.num_exam_types(),
        step.row_coverage * 100.0,
        partial.epsilon * 100.0
    );

    // --- the K sweep on the selected subset ---
    let pv = VsmBuilder::new()
        .top_features(log, step.included)
        .build(log);
    let optimizer = if small {
        Optimizer::quick(vec![4, 6, 8, 10])
    } else {
        Optimizer::paper()
    };
    let sweep = optimizer.run(&pv.matrix);
    println!("\n[optimizer] Table-I sweep:");
    print!("{}", sweep.format_table());
    let k = sweep.selected_k;

    // --- clinical inspection of the selected clustering ---
    let clustering = KMeans::new(k).seed(0).fit(&pv.matrix);
    let taxonomy = log.taxonomy();
    println!("\n[clusters] K = {k}, clinical summary:");
    for cluster in 0..k {
        let members: Vec<usize> = (0..log.num_patients())
            .filter(|&i| clustering.assignments[i] == cluster)
            .collect();
        if members.is_empty() {
            continue;
        }
        // Age profile.
        let ages: Vec<f64> = members
            .iter()
            .map(|&i| f64::from(log.patients()[i].age))
            .collect();
        let mean_age = ages.iter().sum::<f64>() / ages.len() as f64;
        // Dominant condition group by record mass.
        let mut mass = vec![0.0f64; ada_health::dataset::taxonomy::ConditionGroup::ALL.len()];
        for &i in &members {
            for (c, &v) in pv.matrix.row(i).iter().enumerate() {
                if let Some(g) = taxonomy.group_of(pv.features[c]) {
                    mass[g.index()] += v;
                }
            }
        }
        let dominant = ada_health::dataset::taxonomy::ConditionGroup::ALL
            .iter()
            .max_by(|a, b| {
                mass[a.index()]
                    .partial_cmp(&mass[b.index()])
                    .expect("finite mass")
            })
            .expect("groups exist");
        // Agreement with the generator's latent profile (majority).
        let mut profile_counts = vec![0usize; data.profile_names.len()];
        for &i in &members {
            profile_counts[data.true_profile[i]] += 1;
        }
        let (best_profile, best_count) = profile_counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .expect("profiles exist");
        println!(
            "  cluster {cluster}: {:>5} patients, mean age {:>4.1}, dominant group {:<16} \
             latent majority: {} ({:.0}%)",
            members.len(),
            mean_age,
            dominant.to_string(),
            data.profile_names[best_profile],
            100.0 * *best_count as f64 / members.len() as f64
        );
    }

    println!(
        "\n[done] the optimizer's two-stage rule (SSE window from K = {}, then best \
         classification) selected K = {k}",
        sweep.sse_window_start
    );
}
