//! The end-to-end ADA-HEALTH pipeline (Figure 1 of the paper).
//!
//! One [`AdaHealth::run`] call executes every architecture box in order:
//!
//! 1. **Data characterization** — compute the [`DatasetDescriptor`],
//!    store it in the K-DB (collection 3);
//! 2. **Data transformation selection** — score VSM weightings, pick
//!    the best;
//! 3. **Adaptive partial mining** — grow the exam-type subset until the
//!    overall similarity is within ε of the full data (Section IV-B);
//! 4. **Algorithm optimization** — the Table I K-sweep on the selected
//!    subset, auto-selecting K;
//! 5. **Knowledge extraction** — final clustering at the selected K plus
//!    FP-growth association rules over visits, both stored as knowledge
//!    items (collections 4–5);
//! 6. **End-goal identification** — viability rules + (when history
//!    exists) the learned interest model;
//! 7. **Knowledge navigation** — rank items, gather simulated-physician
//!    feedback (collection 6), adapt, re-rank.

use ada_dataset::taxonomy::ConditionGroup;
use ada_dataset::ExamLog;
use ada_kdb::schema::{self, names};
use ada_kdb::{Document, Kdb, KdbRead, KdbSnapshot, SharedKdb};
use ada_metrics::cluster;
use ada_mining::kmeans::KMeans;
use ada_mining::patterns::rules::{format_rule, Rule};
use ada_mining::patterns::{fpgrowth, relative_min_support, rules};
use ada_vsm::VsmBuilder;
use serde::{Deserialize, Serialize};

use crate::annotator::SimulatedPhysician;
use crate::characterize::DatasetDescriptor;
use crate::compliance::{self, ComplianceReport};
use crate::control::{PipelineError, PipelineStage, RunControl};
use crate::goals::{self, EndGoal, GoalInterestModel, GoalViability, SessionExample};
use crate::optimize::{Optimizer, OptimizerReport};
use crate::partial::{HorizontalPartialMiner, PartialMiningReport};
use crate::rank::{KnowledgeItem, KnowledgeRanker};
use crate::transform::{TransformReport, TransformSelector};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct AdaHealthConfig {
    /// Session identifier (tags every K-DB document).
    pub session: String,
    /// Transformation-selection settings.
    pub transform: TransformSelector,
    /// Partial-mining settings.
    pub partial: HorizontalPartialMiner,
    /// K-sweep settings.
    pub optimizer: Optimizer,
    /// Relative minimum support for visit-level pattern mining.
    pub min_support: f64,
    /// Minimum confidence for association rules.
    pub min_confidence: f64,
    /// Maximum number of pattern knowledge items kept.
    pub max_pattern_items: usize,
    /// Simulated-physician noise level.
    pub annotator_noise: f64,
    /// Simulated-physician specialty bias.
    pub annotator_specialty: Option<ConditionGroup>,
    /// How many top-ranked items receive feedback per session.
    pub feedback_budget: usize,
    /// Master seed.
    pub seed: u64,
}

impl AdaHealthConfig {
    /// The paper's configuration (Table I K values, 10-fold CV, ε = 5%).
    pub fn paper(session: impl Into<String>) -> Self {
        Self {
            session: session.into(),
            transform: TransformSelector::default(),
            partial: HorizontalPartialMiner::default(),
            optimizer: Optimizer::paper(),
            min_support: 0.05,
            min_confidence: 0.6,
            max_pattern_items: 50,
            annotator_noise: 0.1,
            annotator_specialty: None,
            feedback_budget: 20,
            seed: 0,
        }
    }

    /// A fast configuration for tests and examples.
    pub fn quick(session: impl Into<String>) -> Self {
        Self {
            optimizer: Optimizer::quick(vec![4, 6, 8]),
            partial: HorizontalPartialMiner {
                ks: vec![6],
                ..Default::default()
            },
            feedback_budget: 10,
            ..Self::paper(session)
        }
    }
}

/// A stored cluster summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSummary {
    /// Cluster index within the final clustering.
    pub cluster: usize,
    /// Number of member patients.
    pub size: usize,
    /// Within-cluster cohesion (overall similarity of the singleton
    /// cluster set {C}).
    pub cohesion: f64,
    /// The three condition groups most over-represented in the cluster's
    /// records.
    pub top_groups: Vec<ConditionGroup>,
}

/// Everything one pipeline run produced.
///
/// Derives `PartialEq` so callers (the service determinism tests in
/// particular) can assert that a concurrent run reproduced its serial
/// counterpart exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Step 1: the dataset descriptor.
    pub descriptor: DatasetDescriptor,
    /// Step 2: the transformation report (winner first).
    pub transform: TransformReport,
    /// Step 3: the adaptive partial-mining report.
    pub partial: PartialMiningReport,
    /// Step 4: the K-sweep (Table I shape) and the selected K.
    pub optimizer: OptimizerReport,
    /// Step 5a: per-cluster summaries of the final clustering.
    pub clusters: Vec<ClusterSummary>,
    /// Step 5b: the mined association rules (confidence-sorted).
    pub rules: Vec<Rule>,
    /// Step 5c: guideline-compliance audit, run when the
    /// treatment-compliance goal is viable for this dataset.
    pub compliance: Option<ComplianceReport>,
    /// Step 6: goals ranked for this dataset.
    pub goals: Vec<(EndGoal, f64, GoalViability)>,
    /// Step 7: item descriptions in final (post-feedback) rank order.
    pub ranked_items: Vec<String>,
    /// Number of feedback entries recorded this session.
    pub feedback_recorded: usize,
}

/// The ADA-HEALTH engine instance: configuration + K-DB.
pub struct AdaHealth {
    config: AdaHealthConfig,
    kdb: SharedKdb,
    goal_model: Option<GoalInterestModel>,
    goal_history: Vec<SessionExample>,
    /// The knowledge ranker, persistent across sessions: its feedback
    /// history is rebuilt from the K-DB's feedback collection on open
    /// and keeps absorbing new sessions' feedback afterwards.
    ranker: KnowledgeRanker,
}

impl AdaHealth {
    /// Creates an engine with an in-memory K-DB.
    ///
    /// # Panics
    /// Panics when schema initialization fails (impossible in memory).
    pub fn new(config: AdaHealthConfig) -> Self {
        Self::with_kdb(config, Kdb::in_memory())
    }

    /// Creates an engine over an existing (possibly persistent) K-DB,
    /// taking sole ownership of it.
    ///
    /// # Panics
    /// Panics when the schema cannot be initialized (journal I/O).
    pub fn with_kdb(config: AdaHealthConfig, kdb: Kdb) -> Self {
        Self::with_shared_kdb(config, SharedKdb::new(kdb))
    }

    /// Creates an engine over a K-DB shared with other engines or
    /// readers (the multi-session service case). Every K-DB operation
    /// the engine performs locks only the collection shard it touches,
    /// so concurrent engines on different collections never contend and
    /// same-collection writers interleave at document granularity.
    ///
    /// # Panics
    /// Panics when the schema cannot be initialized (journal I/O).
    pub fn with_shared_kdb(config: AdaHealthConfig, kdb: SharedKdb) -> Self {
        schema::init_schema(&mut kdb.write()).expect("K-DB schema initialization failed");
        // Reload past-session interactions: every descriptor document
        // carrying both a feature vector and a chosen goal becomes a
        // training example for the end-goal interest model.
        let mut goal_history = Vec::new();
        let (goal_model, ranker) = {
            let db = kdb.read();
            if let Some(coll) = db.collection(names::DESCRIPTORS) {
                for (_, doc) in coll.iter() {
                    let features: Option<Vec<f64>> = doc.get("features").and_then(|v| {
                        v.as_array()
                            .map(|a| a.iter().filter_map(ada_kdb::Value::as_f64).collect())
                    });
                    let goal = doc
                        .get("chosen_goal")
                        .and_then(ada_kdb::Value::as_str)
                        .and_then(EndGoal::parse);
                    if let (Some(features), Some(goal)) = (features, goal) {
                        goal_history.push(SessionExample { features, goal });
                    }
                }
            }
            (
                GoalInterestModel::train(&goal_history),
                Self::rebuild_ranker(&db),
            )
        };
        Self {
            config,
            kdb,
            goal_model,
            goal_history,
            ranker,
        }
    }

    /// Creates an engine over a shared K-DB *without* absorbing the
    /// store's accumulated history: the goal model and ranker start
    /// fresh, exactly as on an empty store.
    ///
    /// This is the constructor the analysis service uses for concurrent
    /// sessions — each session's [`SessionReport`] then depends only on
    /// its own config, seed, and input log, so it is byte-identical to a
    /// serial run of the same session on an empty K-DB, no matter how
    /// sessions interleave on the shared store.
    ///
    /// # Panics
    /// Panics when the schema cannot be initialized (journal I/O).
    pub fn with_shared_kdb_isolated(config: AdaHealthConfig, kdb: SharedKdb) -> Self {
        schema::init_schema(&mut kdb.write()).expect("K-DB schema initialization failed");
        Self {
            config,
            kdb,
            goal_model: None,
            goal_history: Vec::new(),
            ranker: KnowledgeRanker::new(),
        }
    }

    /// Rebuilds the knowledge ranker from persisted feedback: every
    /// feedback document is joined to its knowledge item, the item's
    /// ranking features are reconstructed, and the (item, label) pair is
    /// replayed ("based on previous interactions … the algorithm
    /// dynamically adjusts the … order").
    fn rebuild_ranker<R: KdbRead>(kdb: &R) -> KnowledgeRanker {
        use ada_kdb::schema::Interestingness;
        let mut ranker = KnowledgeRanker::new();
        let Some(feedback) = kdb.collection(names::FEEDBACK) else {
            return ranker;
        };
        for (_, doc) in feedback.iter() {
            let Some(coll_name) = doc.get("item_collection").and_then(|v| v.as_str()) else {
                continue;
            };
            let Some(item_id) = doc.get("item_id").and_then(|v| v.as_i64()) else {
                continue;
            };
            let Some(label) = doc
                .get("interest")
                .and_then(|v| v.as_str())
                .and_then(Interestingness::parse)
            else {
                continue;
            };
            let Some(item_doc) = kdb
                .collection(coll_name)
                .and_then(|c| c.get(item_id as u64))
            else {
                continue; // item was deleted or compacted away
            };
            let get_f64 = |key: &str| item_doc.get(key).and_then(|v| v.as_f64());
            let description = item_doc
                .get("description")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_owned();
            let item = match item_doc.get("kind").and_then(|v| v.as_str()) {
                Some("cluster") => {
                    let size = get_f64("size").unwrap_or(0.0);
                    let cohesion = get_f64("score").unwrap_or(0.0);
                    // Size fraction is unknown without the cohort size;
                    // approximate with the stored absolute size scaled by
                    // a nominal cohort (ranking only needs ordering).
                    KnowledgeItem::cluster(
                        item_id as u64,
                        description,
                        (size / 1_000.0).min(1.0),
                        cohesion,
                    )
                }
                Some("pattern") => KnowledgeItem::pattern(
                    item_id as u64,
                    description,
                    get_f64("support").unwrap_or(0.0),
                    get_f64("confidence").unwrap_or(0.0),
                    get_f64("lift").unwrap_or(0.0),
                ),
                Some("signal") => KnowledgeItem::signal(
                    item_id as u64,
                    description,
                    get_f64("support").unwrap_or(0.0),
                    get_f64("ci_low").unwrap_or(0.0),
                    get_f64("shrunk").unwrap_or(0.0),
                ),
                _ => continue, // compliance items are not ranked
            };
            ranker.record_feedback(&item, label);
        }
        ranker
    }

    /// Number of feedback observations the ranker currently holds.
    pub fn ranker_feedback_count(&self) -> usize {
        self.ranker.feedback_count()
    }

    /// A point-in-time snapshot of the K-DB for reading (inspection and
    /// tests). The snapshot holds no lock — it is an immutable image, so
    /// it can be kept while pipelines run on engines sharing the store.
    pub fn kdb(&self) -> KdbSnapshot {
        self.kdb.read()
    }

    /// A clone of the shared K-DB handle (for concurrent readers or
    /// further engines over the same store).
    pub fn shared_kdb(&self) -> SharedKdb {
        self.kdb.clone()
    }

    /// Feeds past session history into the end-goal interest model
    /// ("the model is trained by previous user interactions").
    pub fn absorb_history(&mut self, examples: impl IntoIterator<Item = SessionExample>) {
        self.goal_history.extend(examples);
        self.goal_model = GoalInterestModel::train(&self.goal_history);
    }

    /// Whether the end-goal interest model is trained.
    pub fn goal_model_active(&self) -> bool {
        self.goal_model.is_some()
    }

    /// Runs the full pipeline on a log.
    ///
    /// # Panics
    /// Panics on degenerate inputs (empty log) or K-DB journal failures.
    pub fn run(&mut self, log: &ExamLog) -> SessionReport {
        self.run_controlled(log, &RunControl::new())
            .expect("a default RunControl never cancels or expires")
    }

    /// Runs the full pipeline under `control`: checkpoints at every
    /// stage boundary (and inside the partial-mining and K-sweep loops)
    /// poll the cancel flag and deadline, and an attached observer
    /// receives per-stage start/end events with wall-clock latency.
    ///
    /// On early exit the K-DB keeps the documents of the stages that
    /// completed — every insert is individually journaled and atomic —
    /// so the store stays consistent and its journal replayable; only
    /// the report is withheld.
    ///
    /// # Panics
    /// Panics on degenerate inputs (empty log) or K-DB journal failures.
    #[allow(clippy::needless_range_loop)] // lockstep multi-array indexing
    pub fn run_controlled(
        &mut self,
        log: &ExamLog,
        control: &RunControl,
    ) -> Result<SessionReport, PipelineError> {
        let session = self.config.session.clone();
        // Inner loops (partial-mining rungs, sweep points) emit sub-span
        // and counter events through the control; label it so those
        // events carry the session name the stage events use.
        let control = &control.clone().with_session(&session);
        let taxonomy = log.taxonomy();

        // 1. Characterization. The descriptor document also carries the
        // raw feature vector so future sessions can retrain the
        // end-goal interest model straight from the K-DB.
        let (descriptor, descriptor_id) =
            control.stage(&session, PipelineStage::Characterize, || {
                let descriptor = DatasetDescriptor::compute(log);
                let descriptor_doc = descriptor
                    .to_document()
                    .with("features", descriptor.feature_vector());
                let descriptor_id =
                    schema::insert_descriptors(&mut self.kdb.write(), &session, descriptor_doc)
                        .expect("K-DB insert failed");
                self.kdb
                    .insert(
                        names::RAW_DATA,
                        Document::new()
                            .with("session", session.as_str())
                            .with("patients", log.num_patients() as i64)
                            .with("exam_types", log.num_exam_types() as i64)
                            .with("records", log.num_records() as i64),
                    )
                    .expect("K-DB insert failed");
                Ok((descriptor, descriptor_id))
            })?;

        // 2. Transformation selection.
        let transform = control.stage(&session, PipelineStage::Transform, || {
            let transform = self.config.transform.select(log);
            self.kdb
                .insert(
                    names::TRANSFORMED_DATA,
                    Document::new()
                        .with("session", session.as_str())
                        .with("weighting", transform.best().to_string())
                        .with(
                            "candidates",
                            transform
                                .ranked
                                .iter()
                                .map(|s| s.weighting.to_string())
                                .collect::<Vec<_>>(),
                        ),
                )
                .expect("K-DB insert failed");
            Ok(transform)
        })?;
        let weighting = transform.best();

        // 3. Adaptive partial mining (on the chosen weighting).
        let partial = control.stage(&session, PipelineStage::PartialMining, || {
            let mut partial_cfg = self.config.partial.clone();
            partial_cfg.weighting = weighting;
            partial_cfg.run_with_control(log, control)
        })?;

        // 4. Optimization on the selected subset.
        let (optimizer, pv) = control.stage(&session, PipelineStage::Optimize, || {
            let selected_types = partial.selected_step().included;
            let pv = VsmBuilder::new()
                .weighting(weighting)
                .top_features(log, selected_types)
                .build(log);
            let optimizer = self
                .config
                .optimizer
                .run_with_control(&pv.matrix, control)?;
            Ok((optimizer, pv))
        })?;
        let k = optimizer.selected_k;

        // 5. Knowledge extraction: final clustering + pattern mining.
        let (clusters, mined_rules, items) =
            control.stage(&session, PipelineStage::KnowledgeExtraction, || {
                // 5a. Final clustering at the selected K -> cluster knowledge.
                let (final_clustering, kernel_stats) = KMeans::new(k)
                    .seed(self.config.optimizer.seed)
                    .fit_with_stats(&pv.matrix);
                control.counters(
                    PipelineStage::KnowledgeExtraction,
                    &kernel_stats.as_pairs(),
                );
                let mut clusters = Vec::with_capacity(k);
                let mut items: Vec<KnowledgeItem> = Vec::new();
                let sizes = final_clustering.cluster_sizes();
                for cluster_idx in 0..k {
                    let members: Vec<usize> = (0..pv.matrix.num_rows())
                        .filter(|&i| final_clustering.assignments[i] == cluster_idx)
                        .collect();
                    if members.is_empty() {
                        continue;
                    }
                    let sub = pv.matrix.select_rows(&members);
                    let cohesion = cluster::overall_similarity(&sub, &vec![0; members.len()], 1);
                    // Over-represented condition groups: mean feature mass per group.
                    let mut group_mass = vec![0.0f64; ConditionGroup::ALL.len()];
                    for row in sub.rows_iter() {
                        for (c, &v) in row.iter().enumerate() {
                            if let Some(g) = taxonomy.group_of(pv.features[c]) {
                                group_mass[g.index()] += v;
                            }
                        }
                    }
                    let mut order: Vec<usize> = (0..group_mass.len()).collect();
                    order.sort_by(|&a, &b| {
                        group_mass[b]
                            .partial_cmp(&group_mass[a])
                            .expect("finite mass")
                    });
                    let top_groups: Vec<ConditionGroup> = order
                        .into_iter()
                        .take(3)
                        .map(|i| ConditionGroup::ALL[i])
                        .collect();
                    let size = sizes[cluster_idx];
                    let description = format!(
                        "cluster {cluster_idx}/{k}: {size} patients, cohesion {cohesion:.3}, dominant groups {}",
                        top_groups
                            .iter()
                            .map(|g| g.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    let doc_id = schema::insert_cluster_item(
                        &mut self.kdb.write(),
                        &session,
                        k,
                        cluster_idx,
                        size,
                        cohesion,
                        &description,
                    )
                    .expect("K-DB insert failed");
                    let size_fraction = size as f64 / pv.matrix.num_rows() as f64;
                    items.push(KnowledgeItem::cluster(
                        doc_id,
                        description.clone(),
                        size_fraction,
                        cohesion,
                    ));
                    clusters.push(ClusterSummary {
                        cluster: cluster_idx,
                        size,
                        cohesion,
                        top_groups,
                    });
                }

                // 5b. Pattern mining over visits -> pattern knowledge.
                let visits = log.visits();
                let transactions: Vec<Vec<u32>> = visits
                    .iter()
                    .map(|v| v.exams.iter().map(|e| e.0).collect())
                    .collect();
                let min_support = relative_min_support(transactions.len(), self.config.min_support);
                let frequent = fpgrowth::mine(&transactions, min_support);
                let mut mined_rules =
                    rules::generate(&frequent, transactions.len(), self.config.min_confidence);
                mined_rules.truncate(self.config.max_pattern_items);
                for rule in &mined_rules {
                    let description = format_rule(rule, |i| {
                        log.catalog()
                            .get(i as usize)
                            .map(|e| e.name.clone())
                            .unwrap_or_else(|| format!("exam-{i}"))
                    });
                    let items_flat: Vec<u32> = rule
                        .antecedent
                        .iter()
                        .chain(rule.consequent.iter())
                        .copied()
                        .collect();
                    let doc_id = schema::insert_pattern_item(
                        &mut self.kdb.write(),
                        &session,
                        &items_flat,
                        rule.support(),
                        rule.confidence(),
                        rule.lift(),
                        &description,
                    )
                    .expect("K-DB insert failed");
                    items.push(KnowledgeItem::pattern(
                        doc_id,
                        description,
                        rule.support(),
                        rule.confidence(),
                        rule.lift(),
                    ));
                }
                Ok((clusters, mined_rules, items))
            })?;

        // 6. End-goal identification, plus the goal-gated compliance
        // audit (step 5c of the architecture; it needs the goal ranking
        // to decide whether the compliance goal is viable).
        let (goals, compliance_report) =
            control.stage(&session, PipelineStage::GoalIdentification, || {
                let goals = goals::rank_goals(&descriptor, self.goal_model.as_ref());
                let compliance_viable = goals
                    .iter()
                    .any(|(g, _, v)| *g == EndGoal::TreatmentCompliance && v.viable);
                let compliance_report = if compliance_viable {
                    let guidelines = compliance::diabetes_guidelines(log);
                    if guidelines.is_empty() {
                        None
                    } else {
                        let audit = compliance::assess(log, &guidelines);
                        for result in &audit.results {
                            self.kdb
                                .insert(
                                    names::PATTERN_KNOWLEDGE,
                                    Document::new()
                                        .with("session", session.as_str())
                                        .with("kind", "compliance")
                                        .with("guideline", result.name.as_str())
                                        .with("eligible", result.eligible as i64)
                                        .with("compliant", result.compliant as i64)
                                        .with("score", result.rate())
                                        .with(
                                            "description",
                                            format!(
                                                "guideline \"{}\": {:.1}% compliant",
                                                result.name,
                                                result.rate() * 100.0
                                            ),
                                        ),
                                )
                                .expect("K-DB insert failed");
                        }
                        Some(audit)
                    }
                } else {
                    None
                };
                Ok((goals, compliance_report))
            })?;

        // 7. Knowledge navigation with simulated feedback. The ranker
        // persists across sessions (and K-DB reopens), so this session's
        // initial ordering already reflects earlier feedback.
        let (ranked_items, feedback_recorded) =
            control.stage(&session, PipelineStage::Navigation, || {
                let ranker = &mut self.ranker;
                let mut physician = SimulatedPhysician::new(
                    self.config.seed,
                    self.config.annotator_noise,
                    self.config.annotator_specialty,
                );
                // Item ids are per-collection document ids, so a cluster
                // and a pattern may share an id — iterate the ranked
                // references themselves rather than looking items up by id.
                let initial_order = ranker.rank(&items);
                let mut feedback_recorded = 0usize;
                for &item in initial_order.iter().take(self.config.feedback_budget) {
                    let label = match item.kind {
                        crate::rank::ItemKind::Cluster => {
                            physician.label_cluster(item.features[5], item.features[6], &[])
                        }
                        crate::rank::ItemKind::Pattern => physician.label_pattern(
                            item.features[2],
                            item.features[3],
                            item.features[4] / (1.0 - item.features[4]).max(1e-9),
                            &[],
                        ),
                        // Signal items are produced by the ada-signals
                        // workload, never by pipeline sessions; keep the
                        // arm functional so a mixed item list still ranks.
                        crate::rank::ItemKind::Signal => physician.label_signal(
                            item.features[2],
                            item.features[8] / (1.0 - item.features[8]).max(1e-9),
                            item.features[9] / (1.0 - item.features[9]).max(1e-9),
                            &[],
                        ),
                    };
                    let coll = match item.kind {
                        crate::rank::ItemKind::Cluster => names::CLUSTER_KNOWLEDGE,
                        crate::rank::ItemKind::Pattern => names::PATTERN_KNOWLEDGE,
                        crate::rank::ItemKind::Signal => names::SIGNAL_KNOWLEDGE,
                    };
                    schema::insert_feedback(&mut self.kdb.write(), &session, coll, item.id, label)
                        .expect("K-DB insert failed");
                    ranker.record_feedback(item, label);
                    feedback_recorded += 1;
                }
                let ranked_items: Vec<String> = ranker
                    .rank(&items)
                    .iter()
                    .map(|i| i.description.clone())
                    .collect();

                // Remember this session for future goal-interest training:
                // treat the top-ranked viable goal as the goal the user
                // pursued. The choice is persisted into the session's
                // descriptor document, so a store reopened later reloads the
                // full interaction history ("the K-DB will be continuously
                // enriched with new … feedbacks"). The atomic
                // read-modify-write holds the descriptors shard lock, so
                // concurrent sessions cannot interleave between the read
                // and the update.
                if let Some((chosen, _, _)) = goals.iter().find(|(_, _, v)| v.viable) {
                    self.goal_history.push(SessionExample {
                        features: descriptor.feature_vector(),
                        goal: *chosen,
                    });
                    self.goal_model = GoalInterestModel::train(&self.goal_history);
                    self.kdb
                        .update_with(names::DESCRIPTORS, descriptor_id, |doc| {
                            doc.clone().with("chosen_goal", chosen.name())
                        })
                        .expect("K-DB update failed");
                }
                Ok((ranked_items, feedback_recorded))
            })?;

        Ok(SessionReport {
            descriptor,
            transform,
            partial,
            optimizer,
            clusters,
            rules: mined_rules,
            compliance: compliance_report,
            goals,
            ranked_items,
            feedback_recorded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_dataset::synthetic::{generate, SyntheticConfig};
    use ada_kdb::Filter;

    fn tiny_cfg() -> SyntheticConfig {
        SyntheticConfig {
            num_patients: 150,
            num_exam_types: 30,
            target_records: 2_200,
            ..SyntheticConfig::small()
        }
    }

    #[test]
    fn full_pipeline_produces_all_artifacts() {
        let log = generate(&tiny_cfg(), 23);
        let mut engine = AdaHealth::new(AdaHealthConfig::quick("s1"));
        let report = engine.run(&log);

        // Step artifacts.
        assert_eq!(report.descriptor.summary.num_patients, 150);
        assert!(!report.transform.ranked.is_empty());
        assert!(report.partial.steps.len() >= 2);
        assert_eq!(report.optimizer.evaluations.len(), 3);
        assert!(!report.clusters.is_empty());
        assert!(!report.goals.is_empty());
        assert!(!report.ranked_items.is_empty());
        assert!(report.feedback_recorded > 0);

        // Every knowledge item is ranked.
        let total_items = report.clusters.len() + report.rules.len();
        assert_eq!(report.ranked_items.len(), total_items);
    }

    #[test]
    fn kdb_holds_all_six_collections_populated() {
        let log = generate(&tiny_cfg(), 29);
        let mut engine = AdaHealth::new(AdaHealthConfig::quick("s2"));
        let report = engine.run(&log);
        let db = engine.kdb();
        let count = |coll: &str| {
            db.collection(coll)
                .unwrap_or_else(|| panic!("missing collection {coll}"))
                .len()
        };
        assert_eq!(count(names::RAW_DATA), 1);
        assert_eq!(count(names::TRANSFORMED_DATA), 1);
        assert_eq!(count(names::DESCRIPTORS), 1);
        assert_eq!(count(names::CLUSTER_KNOWLEDGE), report.clusters.len());
        let compliance_items = report.compliance.as_ref().map_or(0, |c| c.results.len());
        assert_eq!(
            count(names::PATTERN_KNOWLEDGE),
            report.rules.len() + compliance_items
        );
        assert_eq!(count(names::FEEDBACK), report.feedback_recorded);

        // Knowledge items are queryable by session.
        let found = db
            .find(names::CLUSTER_KNOWLEDGE, &Filter::eq("session", "s2"))
            .unwrap();
        assert_eq!(found.len(), report.clusters.len());
    }

    #[test]
    fn selected_k_respects_optimizer_choice() {
        let log = generate(&tiny_cfg(), 31);
        let mut engine = AdaHealth::new(AdaHealthConfig::quick("s3"));
        let report = engine.run(&log);
        // Non-empty clusters are at most K (empty ones are skipped).
        assert!(report.clusters.len() <= report.optimizer.selected_k);
        assert!(report
            .optimizer
            .evaluations
            .iter()
            .any(|e| e.k == report.optimizer.selected_k));
    }

    #[test]
    fn history_accumulates_and_model_trains_across_sessions() {
        let mut engine = AdaHealth::new(AdaHealthConfig::quick("multi"));
        assert!(!engine.goal_model_active());
        // Pre-seed history below threshold, then run sessions.
        for seed in 0..8 {
            let log = generate(&tiny_cfg(), 100 + seed);
            engine.run(&log);
        }
        assert!(
            engine.goal_model_active(),
            "8 sessions should train the goal model"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let log = generate(&tiny_cfg(), 37);
        let a = AdaHealth::new(AdaHealthConfig::quick("d")).run(&log);
        let b = AdaHealth::new(AdaHealthConfig::quick("d")).run(&log);
        assert_eq!(a.ranked_items, b.ranked_items);
        assert_eq!(a.optimizer, b.optimizer);
    }
}
