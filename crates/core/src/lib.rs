//! # ada-core
//!
//! The ADA-HEALTH engine — the paper's contribution — wired from the
//! workspace substrates. Each module is one box of the Figure-1
//! architecture:
//!
//! * [`characterize`] — *data characterization*: statistical descriptors
//!   (sparsity, long-tail coverage, entropy/Gini, per-group shares) that
//!   drive every downstream decision;
//! * [`transform`] — *data transformation selection*: automatically picks
//!   the VSM weighting that yields the highest-quality knowledge;
//! * [`partial`] — *adaptive partial mining*: horizontal (exam-type
//!   subsets grown in frequency order, the paper's Section IV-B
//!   experiment) and vertical (patient subsets) strategies with the
//!   ≤ ε% overall-similarity stopping rule;
//! * [`optimize`] — *data analytics optimization*: the parallel K sweep
//!   scoring each cluster set with SSE plus a cross-validated classifier
//!   robustness check, reproducing Table I and its automatic K = 8
//!   selection;
//! * [`goals`] — *identification of viable end-goals*: rule-based
//!   viability over descriptors plus an interest model trained on K-DB
//!   session history;
//! * [`rank`] — *knowledge navigation*: interestingness-ranked knowledge
//!   items, re-ordered adaptively from user feedback;
//! * [`annotator`] — the simulated physician standing in for the paper's
//!   domain expert (documented substitution, see DESIGN.md);
//! * [`control`] — run control: cooperative cancellation, deadlines, and
//!   stage-level observability for long-running sessions;
//! * [`pipeline`] — the end-to-end orchestrator ([`AdaHealth`]).

#![warn(missing_docs)]

pub mod annotator;
pub mod characterize;
pub mod compliance;
pub mod control;
pub mod goals;
pub mod optimize;
pub mod partial;
pub mod pipeline;
pub mod rank;
pub mod report;
pub mod transform;

pub use characterize::DatasetDescriptor;
pub use control::{
    NullObserver, PipelineError, PipelineObserver, PipelineStage, RunControl, TraceHandle,
};
pub use optimize::{KEvaluation, Optimizer, OptimizerReport};
pub use partial::{HorizontalPartialMiner, PartialMiningReport};
pub use pipeline::{AdaHealth, AdaHealthConfig, SessionReport};
