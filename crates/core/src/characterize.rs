//! Data characterization: statistical descriptors of an examination log.
//!
//! "We focus on the definition of innovative criteria to model data
//! distributions by exploiting unconventional statistical indices and
//! underlying data structures (e.g., frequent patterns)." The
//! [`DatasetDescriptor`] gathers: classic scale statistics, the
//! sparsity/long-tail indices that justify VSM + partial mining, the
//! coverage curve the horizontal miner walks along, per-condition-group
//! record shares, and a frequent-pattern descriptor (density of frequent
//! exam pairs) as the paper's "underlying data structure" criterion.
//! Descriptors serialize into K-DB documents (collection 3).

use ada_dataset::stats::{self, LogSummary};
use ada_dataset::taxonomy::ConditionGroup;
use ada_dataset::ExamLog;
use ada_kdb::Document;
use ada_mining::patterns::fpgrowth;
use serde::{Deserialize, Serialize};

/// Statistical descriptors of one dataset, as stored in the K-DB.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetDescriptor {
    /// Classic scale and distribution summary.
    pub summary: LogSummary,
    /// Fraction of records covered by the top 20% / 40% of exam types —
    /// the two coverage points the paper publishes (≈ 0.70 / 0.85).
    pub coverage_top20: f64,
    /// See [`DatasetDescriptor::coverage_top20`].
    pub coverage_top40: f64,
    /// Full record-coverage curve over exam-type ranks (index k =
    /// coverage of the k most frequent types).
    pub coverage_curve: Vec<f64>,
    /// Share of records per condition group, indexed by
    /// [`ConditionGroup::ALL`].
    pub group_shares: Vec<f64>,
    /// Frequent-pattern descriptor: fraction of exam-type *pairs*
    /// (among pairs of the 30 most frequent types) that are frequent at
    /// 5% patient support. High density signals strong co-prescription
    /// structure — clustering and rule mining will pay off.
    pub frequent_pair_density: f64,
}

impl DatasetDescriptor {
    /// Computes all descriptors for a log.
    pub fn compute(log: &ExamLog) -> Self {
        let summary = stats::summarize(log);
        let coverage_curve = stats::coverage_curve(log);
        let coverage_top20 = stats::coverage_at_fraction(log, 0.20);
        let coverage_top40 = stats::coverage_at_fraction(log, 0.40);

        // Per-group record shares.
        let taxonomy = log.taxonomy();
        let mut group_counts = vec![0usize; ConditionGroup::ALL.len()];
        for r in log.records() {
            if let Some(g) = taxonomy.group_of(r.exam) {
                group_counts[g.index()] += 1;
            }
        }
        let total = log.num_records().max(1) as f64;
        let group_shares = group_counts.iter().map(|&c| c as f64 / total).collect();

        Self {
            summary,
            coverage_top20,
            coverage_top40,
            coverage_curve,
            group_shares,
            frequent_pair_density: frequent_pair_density(log),
        }
    }

    /// Sparsity shorthand (fraction of zero cells in the VSM matrix).
    pub fn sparsity(&self) -> f64 {
        self.summary.sparsity
    }

    /// True when the exam-type usage is long-tailed enough that partial
    /// mining is expected to pay off (the adaptive strategy's gate):
    /// 40% of exam types already cover ≥ 3/4 of records.
    pub fn long_tailed(&self) -> bool {
        self.coverage_top40 >= 0.75
    }

    /// Smallest number of top-frequency exam types covering at least
    /// `fraction` of the records.
    pub fn types_needed_for_coverage(&self, fraction: f64) -> usize {
        self.coverage_curve
            .iter()
            .position(|&c| c >= fraction)
            .unwrap_or(self.coverage_curve.len().saturating_sub(1))
    }

    /// Serializes into a K-DB document (collection 3 of the schema).
    pub fn to_document(&self) -> Document {
        let mut doc = Document::new()
            .with("patients", self.summary.num_patients as i64)
            .with("exam_types", self.summary.num_exam_types as i64)
            .with("records", self.summary.num_records as i64)
            .with(
                "records_per_patient_mean",
                self.summary.records_per_patient_mean,
            )
            .with(
                "records_per_patient_std",
                self.summary.records_per_patient_std,
            )
            .with(
                "distinct_exams_per_patient_mean",
                self.summary.distinct_exams_per_patient_mean,
            )
            .with("sparsity", self.summary.sparsity)
            .with("exam_frequency_gini", self.summary.exam_frequency_gini)
            .with(
                "exam_frequency_entropy",
                self.summary.exam_frequency_entropy,
            )
            .with("coverage_top20", self.coverage_top20)
            .with("coverage_top40", self.coverage_top40)
            .with("frequent_pair_density", self.frequent_pair_density)
            .with("group_shares", self.group_shares.clone());
        if let Some((lo, hi)) = self.summary.age_range {
            doc.set("age_min", lo as i64);
            doc.set("age_max", hi as i64);
        }
        doc
    }

    /// The numeric feature vector used by the end-goal interest model
    /// (stable order; see [`DatasetDescriptor::feature_names`]).
    pub fn feature_vector(&self) -> Vec<f64> {
        let mut v = vec![
            (self.summary.num_patients as f64).ln_1p(),
            (self.summary.num_exam_types as f64).ln_1p(),
            (self.summary.num_records as f64).ln_1p(),
            self.summary.records_per_patient_mean,
            self.summary.distinct_exams_per_patient_mean,
            self.summary.sparsity,
            self.summary.exam_frequency_gini,
            self.summary.exam_frequency_entropy,
            self.coverage_top20,
            self.coverage_top40,
            self.frequent_pair_density,
        ];
        v.extend(self.group_shares.iter().copied());
        v
    }

    /// Names of [`DatasetDescriptor::feature_vector`] components.
    pub fn feature_names() -> Vec<String> {
        let mut names: Vec<String> = [
            "ln_patients",
            "ln_exam_types",
            "ln_records",
            "records_per_patient_mean",
            "distinct_exams_per_patient_mean",
            "sparsity",
            "gini",
            "entropy",
            "coverage_top20",
            "coverage_top40",
            "frequent_pair_density",
        ]
        .into_iter()
        .map(String::from)
        .collect();
        names.extend(ConditionGroup::ALL.iter().map(|g| format!("share_{g}")));
        names
    }
}

/// Fraction of pairs among the 30 most frequent exam types that are
/// frequent (≥ 5% patient support) as a 2-itemset.
fn frequent_pair_density(log: &ExamLog) -> f64 {
    let transactions: Vec<Vec<u32>> = log
        .patient_exam_sets()
        .into_iter()
        .map(|s| s.into_iter().map(|e| e.0).collect())
        .collect();
    if transactions.is_empty() {
        return 0.0;
    }
    let top: Vec<u32> = log
        .exams_by_frequency()
        .into_iter()
        .take(30)
        .map(|e| e.0)
        .collect();
    let keep: std::collections::HashSet<u32> = top.iter().copied().collect();
    let filtered: Vec<Vec<u32>> = transactions
        .iter()
        .map(|t| t.iter().copied().filter(|i| keep.contains(i)).collect())
        .collect();
    let min_support = ada_mining::patterns::relative_min_support(filtered.len(), 0.05);
    let frequent = fpgrowth::mine(&filtered, min_support);
    let pairs = frequent.iter().filter(|f| f.items.len() == 2).count();
    let n = top.len();
    let possible = n * (n - 1) / 2;
    if possible == 0 {
        0.0
    } else {
        pairs as f64 / possible as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_dataset::synthetic::{generate, SyntheticConfig};

    fn descriptor() -> DatasetDescriptor {
        let log = generate(&SyntheticConfig::small(), 7);
        DatasetDescriptor::compute(&log)
    }

    #[test]
    fn descriptors_reflect_synthetic_shape() {
        let d = descriptor();
        assert_eq!(d.summary.num_patients, 400);
        assert!(d.sparsity() > 0.5);
        assert!(d.long_tailed(), "coverage_top40 = {}", d.coverage_top40);
        assert!(d.coverage_top20 < d.coverage_top40);
        assert!((0.0..=1.0).contains(&d.frequent_pair_density));
        assert!(
            d.frequent_pair_density > 0.05,
            "panels should create frequent pairs"
        );
        let share_sum: f64 = d.group_shares.iter().sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_rank_lookup() {
        let d = descriptor();
        let k70 = d.types_needed_for_coverage(0.70);
        let k85 = d.types_needed_for_coverage(0.85);
        assert!(k70 <= k85);
        assert!(k85 <= d.summary.num_exam_types);
        assert!(k70 >= 1);
    }

    #[test]
    fn document_round_trip_fields() {
        let d = descriptor();
        let doc = d.to_document();
        assert_eq!(doc.get("patients").unwrap().as_i64(), Some(400));
        assert!(doc.get("sparsity").unwrap().as_f64().unwrap() > 0.5);
        assert!(doc.get("age_min").is_some());
        assert_eq!(
            doc.get("group_shares").unwrap().as_array().unwrap().len(),
            ConditionGroup::ALL.len()
        );
    }

    #[test]
    fn feature_vector_matches_names() {
        let d = descriptor();
        assert_eq!(
            d.feature_vector().len(),
            DatasetDescriptor::feature_names().len()
        );
        assert!(d.feature_vector().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_log_descriptor() {
        let log = ExamLog::new(vec![], vec![]).unwrap();
        let d = DatasetDescriptor::compute(&log);
        assert_eq!(d.summary.num_records, 0);
        assert_eq!(d.frequent_pair_density, 0.0);
        assert!(!d.long_tailed());
    }
}
