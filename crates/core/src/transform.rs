//! Automatic data-transformation selection.
//!
//! "The main research issue here is to define a totally automatic
//! strategy to select the optimal data transformation, which yields
//! higher quality knowledge." The selector scores every candidate VSM
//! weighting by the quality of the knowledge it produces: a fixed,
//! seeded K-means probe run on each candidate matrix, scored by the
//! overall-similarity index (the paper's interestingness metric) plus a
//! silhouette tie-breaker, both computed on the *probe's own* matrix and
//! therefore comparable because every candidate is row-normalized for
//! scoring.

use ada_dataset::ExamLog;
use ada_metrics::cluster;
use ada_mining::kmeans::KMeans;
use ada_vsm::{Pca, VsmBuilder, Weighting};
use serde::{Deserialize, Serialize};

/// The score card of one candidate transformation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformScore {
    /// The candidate weighting.
    pub weighting: Weighting,
    /// `Some(k)` when the representation was further reduced to `k`
    /// principal components before probing.
    pub pca: Option<usize>,
    /// Overall similarity of the probe clustering (primary criterion).
    pub overall_similarity: f64,
    /// Silhouette of the probe clustering (tie-breaker).
    pub silhouette: f64,
}

impl TransformScore {
    /// The combined selection score.
    pub fn score(&self) -> f64 {
        self.overall_similarity + 0.1 * self.silhouette
    }
}

/// The transformation-selection report: all candidates, ranked.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformReport {
    /// Candidates, best first.
    pub ranked: Vec<TransformScore>,
}

impl TransformReport {
    /// The selected (best) weighting.
    pub fn best(&self) -> Weighting {
        self.ranked
            .first()
            .map(|s| s.weighting)
            .unwrap_or(Weighting::Count)
    }
}

/// Configuration of the transformation selector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformSelector {
    /// Candidate weightings to score.
    pub candidates: Vec<Weighting>,
    /// Number of clusters of the probe K-means.
    pub probe_k: usize,
    /// Maximum number of patients in the probe sample (head sample —
    /// deterministic; patient order carries no information in the VSM).
    pub sample_limit: usize,
    /// PCA component counts to additionally probe per weighting (the
    /// "different representation spaces" of the architecture); empty by
    /// default.
    pub pca_variants: Vec<usize>,
    /// Seed for the probe clustering.
    pub seed: u64,
}

impl Default for TransformSelector {
    fn default() -> Self {
        Self {
            candidates: Weighting::ALL.to_vec(),
            probe_k: 5,
            sample_limit: 1_000,
            pca_variants: Vec::new(),
            seed: 0,
        }
    }
}

impl TransformSelector {
    /// Scores every candidate (each weighting, plus each weighting ×
    /// PCA variant when configured) and returns them ranked (best first,
    /// ties broken by candidate order for determinism).
    pub fn select(&self, log: &ExamLog) -> TransformReport {
        let mut ranked: Vec<TransformScore> = Vec::new();
        for &weighting in &self.candidates {
            ranked.push(self.score_candidate(log, weighting, None));
            for &components in &self.pca_variants {
                ranked.push(self.score_candidate(log, weighting, Some(components)));
            }
        }
        ranked.sort_by(|a, b| b.score().partial_cmp(&a.score()).expect("finite scores"));
        TransformReport { ranked }
    }

    fn score_candidate(
        &self,
        log: &ExamLog,
        weighting: Weighting,
        pca: Option<usize>,
    ) -> TransformScore {
        let pv = VsmBuilder::new()
            .weighting(weighting)
            .normalize(true) // score in a comparable, scale-free space
            .build(log);
        let n = pv.matrix.num_rows();
        let mut matrix = if n > self.sample_limit {
            let idx: Vec<usize> = (0..self.sample_limit).collect();
            pv.matrix.select_rows(&idx)
        } else {
            pv.matrix
        };
        if let Some(components) = pca {
            if matrix.num_rows() >= 2 && components >= 1 {
                let model = Pca::fit(&matrix, components);
                matrix = model.transform(&matrix);
            }
        }
        let k = self.probe_k.min(matrix.num_rows().max(1));
        if matrix.num_rows() < 2 || k < 2 || matrix.num_cols() == 0 {
            return TransformScore {
                weighting,
                pca,
                overall_similarity: 0.0,
                silhouette: 0.0,
            };
        }
        let result = KMeans::new(k).seed(self.seed).fit(&matrix);
        let overall = cluster::overall_similarity(&matrix, &result.assignments, k);
        // Silhouette is O(n²): cap the evaluation sample further.
        let sil_cap = 400.min(matrix.num_rows());
        let sil_matrix = matrix.select_rows(&(0..sil_cap).collect::<Vec<_>>());
        let sil_assign = &result.assignments[..sil_cap];
        let silhouette = cluster::silhouette(&sil_matrix, sil_assign, k);
        TransformScore {
            weighting,
            pca,
            overall_similarity: overall,
            silhouette,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_dataset::synthetic::{generate, SyntheticConfig};

    #[test]
    fn ranks_all_candidates() {
        let log = generate(&SyntheticConfig::small(), 3);
        let report = TransformSelector::default().select(&log);
        assert_eq!(report.ranked.len(), Weighting::ALL.len());
        assert!(report.ranked.iter().all(|s| s.pca.is_none()));
        for w in report.ranked.windows(2) {
            assert!(w[0].score() >= w[1].score());
        }
        // The winner is exposed.
        assert_eq!(report.best(), report.ranked[0].weighting);
    }

    #[test]
    fn scores_are_valid_similarities() {
        let log = generate(&SyntheticConfig::small(), 4);
        let report = TransformSelector::default().select(&log);
        for s in &report.ranked {
            assert!((0.0..=1.0 + 1e-9).contains(&s.overall_similarity), "{s:?}");
            assert!((-1.0..=1.0).contains(&s.silhouette), "{s:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let log = generate(&SyntheticConfig::small(), 5);
        let a = TransformSelector::default().select(&log);
        let b = TransformSelector::default().select(&log);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_log_defaults_to_count() {
        let log = ada_dataset::ExamLog::new(vec![], vec![]).unwrap();
        let report = TransformSelector {
            candidates: vec![Weighting::Count, Weighting::Binary],
            ..Default::default()
        }
        .select(&log);
        assert_eq!(report.best(), Weighting::Count);
        assert!(report.ranked.iter().all(|s| s.score() == 0.0));
    }

    #[test]
    fn pca_variants_are_scored_alongside_raw() {
        let log = generate(&SyntheticConfig::small(), 8);
        let selector = TransformSelector {
            candidates: vec![Weighting::Count],
            pca_variants: vec![8],
            ..Default::default()
        };
        let report = selector.select(&log);
        assert_eq!(report.ranked.len(), 2);
        assert!(report.ranked.iter().any(|s| s.pca == Some(8)));
        assert!(report.ranked.iter().any(|s| s.pca.is_none()));
        for s in &report.ranked {
            assert!((0.0..=1.0 + 1e-9).contains(&s.overall_similarity), "{s:?}");
        }
        // Determinism with PCA variants.
        assert_eq!(report, selector.select(&log));
    }

    #[test]
    fn respects_candidate_subset() {
        let log = generate(&SyntheticConfig::small(), 6);
        let report = TransformSelector {
            candidates: vec![Weighting::Binary],
            ..Default::default()
        }
        .select(&log);
        assert_eq!(report.ranked.len(), 1);
        assert_eq!(report.best(), Weighting::Binary);
    }
}
