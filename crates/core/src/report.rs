//! Human-readable session reports.
//!
//! "A user interface allows interactive presentation and navigation of
//! the extracted knowledge items." This headless reproduction renders
//! the same content as text: a structured clinical summary of one
//! pipeline session, suitable for terminals, logs, or inclusion in a
//! study notebook.

use std::fmt::Write;

use crate::pipeline::SessionReport;

/// Renders a full session report as formatted text.
pub fn render(report: &SessionReport) -> String {
    let mut out = String::new();
    let w = &mut out;

    let d = &report.descriptor;
    writeln!(w, "ADA-HEALTH session report").expect("write to String");
    writeln!(w, "=========================").expect("write to String");
    writeln!(
        w,
        "dataset: {} patients, {} exam types, {} records (sparsity {:.2}, gini {:.2})",
        d.summary.num_patients,
        d.summary.num_exam_types,
        d.summary.num_records,
        d.summary.sparsity,
        d.summary.exam_frequency_gini,
    )
    .expect("write to String");
    if let Some((lo, hi)) = d.summary.age_range {
        writeln!(w, "ages {lo}-{hi}").expect("write to String");
    }

    writeln!(w, "\ntransformation: {}", report.transform.best()).expect("write to String");

    let sel = report.partial.selected_step();
    writeln!(
        w,
        "partial mining: kept {:.0}% of exam types = {:.1}% of rows ({} of {} steps within eps)",
        sel.fraction * 100.0,
        sel.row_coverage * 100.0,
        report
            .partial
            .steps
            .iter()
            .enumerate()
            .filter(|(i, _)| report.partial.difference_vs_full(*i) <= report.partial.epsilon)
            .count(),
        report.partial.steps.len(),
    )
    .expect("write to String");

    writeln!(
        w,
        "optimizer: K = {} (SSE window from K = {})",
        report.optimizer.selected_k, report.optimizer.sse_window_start
    )
    .expect("write to String");

    writeln!(w, "\nclusters:").expect("write to String");
    for c in &report.clusters {
        writeln!(
            w,
            "  #{:<2} {:>6} patients  cohesion {:.3}  groups: {}",
            c.cluster,
            c.size,
            c.cohesion,
            c.top_groups
                .iter()
                .map(|g| g.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )
        .expect("write to String");
    }

    writeln!(w, "\nassociation rules: {}", report.rules.len()).expect("write to String");

    if let Some(compliance) = &report.compliance {
        writeln!(
            w,
            "\nguideline compliance (overall {:.1}%):",
            compliance.overall_rate() * 100.0
        )
        .expect("write to String");
        for r in &compliance.results {
            writeln!(
                w,
                "  {:<52} {:>5.1}% ({}/{})",
                r.name,
                r.rate() * 100.0,
                r.compliant,
                r.eligible
            )
            .expect("write to String");
        }
    }

    writeln!(w, "\nsuggested end-goals:").expect("write to String");
    for (goal, score, verdict) in report.goals.iter().take(3) {
        writeln!(w, "  {goal:<26} score {score:.2} ({})", verdict.reason).expect("write to String");
    }

    writeln!(
        w,
        "\ntop knowledge items ({} feedback entries absorbed):",
        report.feedback_recorded
    )
    .expect("write to String");
    for item in report.ranked_items.iter().take(10) {
        writeln!(w, "  - {item}").expect("write to String");
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{AdaHealth, AdaHealthConfig};
    use ada_dataset::synthetic::{generate, SyntheticConfig};

    #[test]
    fn report_contains_every_section() {
        let log = generate(
            &SyntheticConfig {
                num_patients: 150,
                num_exam_types: 30,
                target_records: 2_200,
                ..SyntheticConfig::small()
            },
            19,
        );
        let mut engine = AdaHealth::new(AdaHealthConfig::quick("report"));
        let session = engine.run(&log);
        let text = render(&session);
        for needle in [
            "ADA-HEALTH session report",
            "dataset: 150 patients",
            "transformation:",
            "partial mining:",
            "optimizer: K =",
            "clusters:",
            "association rules:",
            "suggested end-goals:",
            "top knowledge items",
        ] {
            assert!(text.contains(needle), "missing section {needle:?}\n{text}");
        }
        // Compliance section appears when the audit ran.
        if session.compliance.is_some() {
            assert!(text.contains("guideline compliance"));
        }
    }
}
