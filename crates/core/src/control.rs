//! Run control for pipeline executions: cooperative cancellation,
//! deadlines, and stage-level observability.
//!
//! The ADA-HEALTH vision is an *automated* analysis service: sessions
//! are long-running, so an operator (or the `ada-service` front-end)
//! needs to watch progress, abort a session that is no longer wanted,
//! and bound how long any one session may hold resources. This module
//! provides the engine-side half of that contract:
//!
//! - [`RunControl`] is passed into
//!   [`AdaHealth::run_controlled`](crate::pipeline::AdaHealth::run_controlled)
//!   and carries a shared cancel flag, an optional deadline, and an
//!   optional [`PipelineObserver`];
//! - the pipeline (and the expensive inner loops of partial mining and
//!   the K-sweep) call [`RunControl::checkpoint`] at stage boundaries,
//!   which returns a [`PipelineError`] as soon as the run should stop;
//! - observers receive `on_stage_start` / `on_stage_end` events with
//!   wall-clock stage latency.
//!
//! Cancellation is *cooperative*: a checkpoint between stages observes
//! the flag, so a cancel request takes effect at the next boundary and
//! the K-DB is never left mid-write.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The architecture boxes a session moves through (Figure 1 of the
/// paper), in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PipelineStage {
    /// Step 1: dataset characterization.
    Characterize,
    /// Step 2: data-transformation selection.
    Transform,
    /// Step 3: adaptive partial mining.
    PartialMining,
    /// Step 4: algorithm optimization (the K sweep).
    Optimize,
    /// Step 5: knowledge extraction (final clustering, patterns,
    /// compliance audit).
    KnowledgeExtraction,
    /// Step 6: end-goal identification.
    GoalIdentification,
    /// Step 7: knowledge navigation (ranking + feedback).
    Navigation,
    /// Safety-signal mining (the `ada-signals` workload): contingency
    /// tables, disproportionality statistics, shrinkage, and ranking.
    /// Not part of the paper's seven-stage pipeline; a session runs
    /// either the pipeline stages or this one.
    SignalMining,
    /// Streaming ingestion and incremental re-mining (the `ada-stream`
    /// workload): the session replays its cohort in timestamp order
    /// through a stream engine and reports the live model. Like
    /// [`SignalMining`](PipelineStage::SignalMining), this stage
    /// belongs to its own workload, not the seven-stage pipeline.
    StreamMining,
}

impl PipelineStage {
    /// All stages across every workload, in a stable order. Sizes
    /// per-stage arrays (histogram banks, span grouping).
    pub const ALL: [PipelineStage; 9] = [
        PipelineStage::Characterize,
        PipelineStage::Transform,
        PipelineStage::PartialMining,
        PipelineStage::Optimize,
        PipelineStage::KnowledgeExtraction,
        PipelineStage::GoalIdentification,
        PipelineStage::Navigation,
        PipelineStage::SignalMining,
        PipelineStage::StreamMining,
    ];

    /// The paper's seven pipeline stages, in execution order. A
    /// `Pipeline` workload session runs exactly these; the
    /// [`SignalMining`](PipelineStage::SignalMining) stage belongs to
    /// the safety-signal workload instead.
    pub const PIPELINE: [PipelineStage; 7] = [
        PipelineStage::Characterize,
        PipelineStage::Transform,
        PipelineStage::PartialMining,
        PipelineStage::Optimize,
        PipelineStage::KnowledgeExtraction,
        PipelineStage::GoalIdentification,
        PipelineStage::Navigation,
    ];

    /// Position of the stage in [`PipelineStage::ALL`]: a dense, stable
    /// index for per-stage arrays (histogram banks, span grouping).
    pub fn index(self) -> usize {
        match self {
            PipelineStage::Characterize => 0,
            PipelineStage::Transform => 1,
            PipelineStage::PartialMining => 2,
            PipelineStage::Optimize => 3,
            PipelineStage::KnowledgeExtraction => 4,
            PipelineStage::GoalIdentification => 5,
            PipelineStage::Navigation => 6,
            PipelineStage::SignalMining => 7,
            PipelineStage::StreamMining => 8,
        }
    }

    /// Stable lowercase name (used in logs and metrics keys).
    pub fn name(self) -> &'static str {
        match self {
            PipelineStage::Characterize => "characterize",
            PipelineStage::Transform => "transform",
            PipelineStage::PartialMining => "partial-mining",
            PipelineStage::Optimize => "optimize",
            PipelineStage::KnowledgeExtraction => "knowledge-extraction",
            PipelineStage::GoalIdentification => "goal-identification",
            PipelineStage::Navigation => "navigation",
            PipelineStage::SignalMining => "signal-mining",
            PipelineStage::StreamMining => "stream-mining",
        }
    }
}

impl fmt::Display for PipelineStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a controlled run stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The cancel flag was observed set at a stage boundary.
    Cancelled {
        /// The stage whose checkpoint observed the cancellation.
        stage: PipelineStage,
    },
    /// The deadline passed before the run completed.
    DeadlineExceeded {
        /// The stage whose checkpoint observed the expiry.
        stage: PipelineStage,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Cancelled { stage } => {
                write!(f, "pipeline run cancelled at stage {stage}")
            }
            PipelineError::DeadlineExceeded { stage } => {
                write!(f, "pipeline run exceeded its deadline at stage {stage}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Receives stage-boundary events from a controlled pipeline run.
///
/// Implementations must be `Send + Sync`: the service layer shares one
/// observer across worker threads. Callbacks run on the thread that
/// executes the pipeline and should return quickly.
pub trait PipelineObserver: Send + Sync {
    /// A stage is about to run for `session`.
    fn on_stage_start(&self, session: &str, stage: PipelineStage) {
        let _ = (session, stage);
    }

    /// A stage finished for `session` after `elapsed` wall-clock time.
    fn on_stage_end(&self, session: &str, stage: PipelineStage, elapsed: Duration) {
        let _ = (session, stage, elapsed);
    }

    /// A named unit of work *inside* `stage` began — a partial-mining
    /// ladder rung (`rung:0.20`), an optimizer sweep point
    /// (`sweep:k=8`). May be called from worker threads; at any instant
    /// the open sub-span names of one session are distinct, so
    /// start/end events pair by `(session, stage, name)`.
    fn on_span_start(&self, session: &str, stage: PipelineStage, name: &str) {
        let _ = (session, stage, name);
    }

    /// A named unit of work inside `stage` finished after `elapsed`.
    fn on_span_end(&self, session: &str, stage: PipelineStage, name: &str, elapsed: Duration) {
        let _ = (session, stage, name, elapsed);
    }

    /// Kernel instrumentation counters attributed to the innermost open
    /// span of `stage` (stable `(name, value)` pairs; values accumulate
    /// across events).
    fn on_counters(&self, session: &str, stage: PipelineStage, counters: &[(&'static str, u64)]) {
        let _ = (session, stage, counters);
    }
}

/// An observer that ignores every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl PipelineObserver for NullObserver {}

/// Wire-propagated trace identity attached to a controlled run: the
/// 128-bit trace id and the sampling decision, as plain fields.
///
/// `ada-core` sits below the observability crate in the dependency
/// order, so it cannot name the full trace-context type; the service
/// layer flattens the context into this handle when it builds the
/// [`RunControl`], and diagnostic surfaces inside the engine (panic
/// messages, debug dumps) can cite the trace id without any new
/// dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceHandle {
    /// High 64 bits of the 128-bit trace id.
    pub hi: u64,
    /// Low 64 bits of the 128-bit trace id.
    pub lo: u64,
    /// Whether this run's request records spans.
    pub sampled: bool,
}

impl TraceHandle {
    /// The 128-bit trace id as 32 lowercase hex digits (the same
    /// rendering the trace store keys on).
    pub fn trace_id_hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Shared control handle for one pipeline run.
#[derive(Clone, Default)]
pub struct RunControl {
    cancel: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
    observer: Option<Arc<dyn PipelineObserver>>,
    session: Option<Arc<str>>,
    trace: Option<TraceHandle>,
}

impl fmt::Debug for RunControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunControl")
            .field("cancelled", &self.is_cancelled())
            .field("deadline", &self.deadline)
            .field("has_observer", &self.observer.is_some())
            .field("trace", &self.trace)
            .finish()
    }
}

impl RunControl {
    /// A control that never cancels, never expires, and observes nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a shared cancel flag (set it from any thread to request
    /// cooperative cancellation).
    #[must_use]
    pub fn with_cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Attaches an absolute deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a stage observer.
    #[must_use]
    pub fn with_observer(mut self, observer: Arc<dyn PipelineObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Labels the control with a session name; sub-span and counter
    /// events emitted from inner loops (which have no session parameter
    /// of their own) carry this label.
    #[must_use]
    pub fn with_session(mut self, session: &str) -> Self {
        self.session = Some(Arc::from(session));
        self
    }

    /// The session label (empty when none was attached).
    pub fn session(&self) -> &str {
        self.session.as_deref().unwrap_or("")
    }

    /// Attaches the run's trace identity.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The run's trace identity, if one was attached.
    pub fn trace(&self) -> Option<TraceHandle> {
        self.trace
    }

    /// Whether an observer is attached (lets hot loops skip building
    /// event payloads nobody would receive).
    pub fn has_observer(&self) -> bool {
        self.observer.is_some()
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Acquire))
    }

    /// Polls the cancel flag and deadline; `stage` names the work that
    /// would run next and is reported in the error.
    pub fn checkpoint(&self, stage: PipelineStage) -> Result<(), PipelineError> {
        if self.is_cancelled() {
            return Err(PipelineError::Cancelled { stage });
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(PipelineError::DeadlineExceeded { stage });
        }
        Ok(())
    }

    /// Runs `work` as stage `stage`: checkpoints first, then brackets the
    /// work with observer events.
    pub fn stage<T>(
        &self,
        session: &str,
        stage: PipelineStage,
        work: impl FnOnce() -> Result<T, PipelineError>,
    ) -> Result<T, PipelineError> {
        self.checkpoint(stage)?;
        if let Some(obs) = &self.observer {
            obs.on_stage_start(session, stage);
        }
        let started = Instant::now();
        let result = work()?;
        if let Some(obs) = &self.observer {
            obs.on_stage_end(session, stage, started.elapsed());
        }
        Ok(result)
    }

    /// Brackets `work` with sub-span observer events (no checkpoint —
    /// callers poll separately). Safe to call from worker threads; the
    /// events carry the control's session label. Unlike [`RunControl::stage`],
    /// the end event fires even when `work` itself is fallible and
    /// fails — the span measures the attempt.
    pub fn span<T>(&self, stage: PipelineStage, name: &str, work: impl FnOnce() -> T) -> T {
        let Some(obs) = &self.observer else {
            return work();
        };
        obs.on_span_start(self.session(), stage, name);
        let started = Instant::now();
        let out = work();
        obs.on_span_end(self.session(), stage, name, started.elapsed());
        out
    }

    /// Forwards kernel counters to the observer, attributed to the
    /// innermost open span of `stage`. A no-op without an observer.
    pub fn counters(&self, stage: PipelineStage, counters: &[(&'static str, u64)]) {
        if let Some(obs) = &self.observer {
            obs.on_counters(self.session(), stage, counters);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn default_control_always_passes_checkpoints() {
        let control = RunControl::new();
        for stage in PipelineStage::ALL {
            assert_eq!(control.checkpoint(stage), Ok(()));
        }
    }

    #[test]
    fn cancel_flag_stops_the_next_checkpoint() {
        let flag = Arc::new(AtomicBool::new(false));
        let control = RunControl::new().with_cancel_flag(Arc::clone(&flag));
        assert_eq!(control.checkpoint(PipelineStage::Optimize), Ok(()));
        flag.store(true, Ordering::Release);
        assert_eq!(
            control.checkpoint(PipelineStage::Optimize),
            Err(PipelineError::Cancelled {
                stage: PipelineStage::Optimize
            })
        );
    }

    #[test]
    fn expired_deadline_fails_checkpoints() {
        let control = RunControl::new().with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(
            control.checkpoint(PipelineStage::Transform),
            Err(PipelineError::DeadlineExceeded {
                stage: PipelineStage::Transform
            })
        );
    }

    #[test]
    fn stage_brackets_work_with_observer_events() {
        #[derive(Default)]
        struct Recorder(Mutex<Vec<String>>);
        impl PipelineObserver for Recorder {
            fn on_stage_start(&self, session: &str, stage: PipelineStage) {
                self.0
                    .lock()
                    .unwrap()
                    .push(format!("start {session} {stage}"));
            }
            fn on_stage_end(&self, session: &str, stage: PipelineStage, _elapsed: Duration) {
                self.0
                    .lock()
                    .unwrap()
                    .push(format!("end {session} {stage}"));
            }
        }
        let recorder = Arc::new(Recorder::default());
        let control =
            RunControl::new().with_observer(recorder.clone() as Arc<dyn PipelineObserver>);
        let out = control
            .stage("s", PipelineStage::Characterize, || Ok(41 + 1))
            .unwrap();
        assert_eq!(out, 42);
        assert_eq!(
            *recorder.0.lock().unwrap(),
            vec!["start s characterize", "end s characterize"]
        );
    }

    #[test]
    fn cancelled_stage_skips_work_and_events() {
        let flag = Arc::new(AtomicBool::new(true));
        let control = RunControl::new().with_cancel_flag(flag);
        let ran = std::cell::Cell::new(false);
        let result = control.stage("s", PipelineStage::Navigation, || {
            ran.set(true);
            Ok(())
        });
        assert!(matches!(result, Err(PipelineError::Cancelled { .. })));
        assert!(!ran.get(), "work must not start after cancellation");
    }

    #[test]
    fn errors_format_for_operators() {
        let cancelled = PipelineError::Cancelled {
            stage: PipelineStage::PartialMining,
        };
        assert_eq!(
            cancelled.to_string(),
            "pipeline run cancelled at stage partial-mining"
        );
        let expired = PipelineError::DeadlineExceeded {
            stage: PipelineStage::Optimize,
        };
        assert!(expired.to_string().contains("deadline"));
        let _: &dyn std::error::Error = &cancelled;
    }

    #[test]
    fn trace_handle_rides_the_control() {
        let control = RunControl::new();
        assert_eq!(control.trace(), None);
        let handle = TraceHandle {
            hi: 0x0123_4567_89ab_cdef,
            lo: 0xfedc_ba98_7654_3210,
            sampled: true,
        };
        let control = control.with_trace(handle);
        assert_eq!(control.trace(), Some(handle));
        assert_eq!(handle.trace_id_hex(), "0123456789abcdeffedcba9876543210");
        // Clones carry the handle with them (workers clone the control).
        assert_eq!(control.clone().trace(), Some(handle));
    }

    #[test]
    fn stage_names_are_stable_and_ordered() {
        assert_eq!(PipelineStage::ALL.len(), 9);
        assert_eq!(PipelineStage::PIPELINE.len(), 7);
        let names: Vec<_> = PipelineStage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names[0], "characterize");
        assert_eq!(names[6], "navigation");
        assert_eq!(names[7], "signal-mining");
        assert_eq!(names[8], "stream-mining");
        assert!(PipelineStage::Characterize < PipelineStage::Navigation);
        // PIPELINE is a prefix of ALL, so dense indices agree.
        for (i, stage) in PipelineStage::PIPELINE.iter().enumerate() {
            assert_eq!(PipelineStage::ALL[i], *stage);
            assert_eq!(stage.index(), i);
        }
        assert_eq!(PipelineStage::SignalMining.index(), 7);
        assert_eq!(PipelineStage::StreamMining.index(), 8);
    }
}
