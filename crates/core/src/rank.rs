//! Knowledge navigation: interactive ranking of knowledge items.
//!
//! "ADA-HEALTH also includes an interactive knowledge ranking algorithm
//! … which will help to select, among a set of knowledge items, which
//! ones are most interesting for a user. Based on user feedbacks, the
//! algorithm dynamically adjusts the way and order how knowledge items
//! are organized and presented."
//!
//! Before any feedback exists, items are ordered by an objective prior
//! (their composite interestingness). Each piece of feedback (a) shifts
//! a per-kind preference weight (fast adaptation) and (b) accumulates
//! labelled examples; once enough exist, a decision tree is trained to
//! predict the {high, medium, low} label from item features and takes
//! over the ordering (the paper's "prediction of a degree of
//! interestingness … by means of a classification algorithm").

use ada_kdb::schema::Interestingness;
use ada_mining::tree::{DecisionTree, TreeConfig};
use ada_vsm::DenseMatrix;
use serde::{Deserialize, Serialize};

/// The kind of a knowledge item (which miner produced it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ItemKind {
    /// A patient cluster.
    Cluster,
    /// A frequent pattern / association rule.
    Pattern,
}

impl ItemKind {
    fn index(self) -> usize {
        match self {
            ItemKind::Cluster => 0,
            ItemKind::Pattern => 1,
        }
    }
}

/// A knowledge item as seen by the ranker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnowledgeItem {
    /// Caller-side identifier (e.g. the K-DB document id).
    pub id: u64,
    /// Which miner produced the item.
    pub kind: ItemKind,
    /// Human-readable description.
    pub description: String,
    /// Fixed-order numeric features (see [`KnowledgeItem::cluster`] /
    /// [`KnowledgeItem::pattern`]).
    pub features: Vec<f64>,
}

impl KnowledgeItem {
    /// Feature-vector length (shared by both kinds).
    pub const NUM_FEATURES: usize = 7;

    /// A cluster item: `size_fraction` of the cohort, `cohesion` =
    /// within-cluster overall similarity.
    pub fn cluster(
        id: u64,
        description: impl Into<String>,
        size_fraction: f64,
        cohesion: f64,
    ) -> Self {
        Self {
            id,
            kind: ItemKind::Cluster,
            description: description.into(),
            // [is_cluster, is_pattern, support, confidence, lift', size, cohesion]
            features: vec![1.0, 0.0, 0.0, 0.0, 0.0, size_fraction, cohesion],
        }
    }

    /// A pattern item with its rule statistics (`lift` is squashed to
    /// `lift/(1+lift)` so the feature stays bounded).
    pub fn pattern(
        id: u64,
        description: impl Into<String>,
        support: f64,
        confidence: f64,
        lift: f64,
    ) -> Self {
        let squashed = if lift.is_finite() {
            lift / (1.0 + lift)
        } else {
            1.0
        };
        Self {
            id,
            kind: ItemKind::Pattern,
            description: description.into(),
            features: vec![0.0, 1.0, support, confidence, squashed, 0.0, 0.0],
        }
    }

    /// The objective prior score used before any feedback exists.
    pub fn prior_score(&self) -> f64 {
        match self.kind {
            ItemKind::Cluster => {
                let size = self.features[5];
                let cohesion = self.features[6];
                // Peak for mid-sized cohesive clusters.
                let size_term = 1.0 - (size - 0.2).abs().min(1.0);
                0.5 * cohesion + 0.5 * size_term
            }
            ItemKind::Pattern => {
                let support = self.features[2];
                let confidence = self.features[3];
                let lift = self.features[4];
                (support + confidence + lift) / 3.0
            }
        }
    }
}

/// The adaptive knowledge ranker.
#[derive(Debug, Clone)]
pub struct KnowledgeRanker {
    /// Per-kind preference weights, adapted by feedback (EMA).
    kind_weight: [f64; 2],
    /// Labelled history: (features, label index 0/1/2).
    history: Vec<(Vec<f64>, usize)>,
    /// Trained interestingness classifier, once history suffices.
    model: Option<DecisionTree>,
    /// EMA smoothing factor for kind weights.
    alpha: f64,
}

impl Default for KnowledgeRanker {
    fn default() -> Self {
        Self::new()
    }
}

impl KnowledgeRanker {
    /// Minimum feedback count before the classifier is trained.
    pub const MIN_HISTORY: usize = 12;

    /// A fresh ranker with neutral preferences.
    pub fn new() -> Self {
        Self {
            kind_weight: [1.0, 1.0],
            history: Vec::new(),
            model: None,
            alpha: 0.2,
        }
    }

    /// Number of feedback observations absorbed.
    pub fn feedback_count(&self) -> usize {
        self.history.len()
    }

    /// Whether the learned classifier is active.
    pub fn model_active(&self) -> bool {
        self.model.is_some()
    }

    /// Records one user feedback and adapts the ordering policy.
    pub fn record_feedback(&mut self, item: &KnowledgeItem, label: Interestingness) {
        // Fast path: exponential moving average on the item's kind.
        let idx = item.kind.index();
        self.kind_weight[idx] =
            (1.0 - self.alpha) * self.kind_weight[idx] + self.alpha * (0.5 + label.score());
        // Slow path: accumulate and (re)train the classifier.
        let label_idx = match label {
            Interestingness::Low => 0,
            Interestingness::Medium => 1,
            Interestingness::High => 2,
        };
        self.history.push((item.features.clone(), label_idx));
        if self.history.len() >= Self::MIN_HISTORY {
            let rows: Vec<Vec<f64>> = self.history.iter().map(|(f, _)| f.clone()).collect();
            let labels: Vec<usize> = self.history.iter().map(|&(_, l)| l).collect();
            let matrix = DenseMatrix::from_rows(&rows);
            self.model = Some(DecisionTree::fit(
                &matrix,
                &labels,
                3,
                &TreeConfig {
                    max_depth: 5,
                    min_samples_leaf: 2,
                    ..TreeConfig::default()
                },
            ));
        }
    }

    /// The current score of an item under the adapted policy.
    pub fn score(&self, item: &KnowledgeItem) -> f64 {
        let base = match &self.model {
            Some(model) => {
                // Predicted interest dominates; the objective prior
                // breaks ties within a predicted class.
                let predicted = model.predict_row(&item.features) as f64 / 2.0;
                predicted + 0.1 * item.prior_score()
            }
            None => item.prior_score(),
        };
        base * self.kind_weight[item.kind.index()]
    }

    /// Returns the items sorted most-interesting-first (stable; ties
    /// break by kind then id for determinism — ids are per-collection,
    /// so a cluster and a pattern may share one).
    pub fn rank<'a>(&self, items: &'a [KnowledgeItem]) -> Vec<&'a KnowledgeItem> {
        let mut ranked: Vec<&KnowledgeItem> = items.iter().collect();
        ranked.sort_by(|a, b| {
            self.score(b)
                .partial_cmp(&self.score(a))
                .expect("finite scores")
                .then_with(|| (a.kind.index(), a.id).cmp(&(b.kind.index(), b.id)))
        });
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items() -> Vec<KnowledgeItem> {
        vec![
            KnowledgeItem::cluster(1, "mid-size cohesive cluster", 0.2, 0.8),
            KnowledgeItem::cluster(2, "catch-all blob", 0.9, 0.3),
            KnowledgeItem::pattern(3, "strong rule", 0.2, 0.9, 3.0),
            KnowledgeItem::pattern(4, "weak rule", 0.01, 0.2, 1.0),
        ]
    }

    #[test]
    fn prior_ranking_prefers_strong_items() {
        let ranker = KnowledgeRanker::new();
        let all = items();
        let ranked = ranker.rank(&all);
        let first_two: Vec<u64> = ranked[..2].iter().map(|i| i.id).collect();
        assert!(first_two.contains(&1), "cohesive cluster should rank high");
        assert!(first_two.contains(&3), "strong rule should rank high");
        assert_eq!(ranked[3].id, 4, "weak rule last");
    }

    #[test]
    fn kind_feedback_shifts_ordering() {
        let mut ranker = KnowledgeRanker::new();
        let all = items();
        // The user repeatedly dislikes clusters and likes patterns.
        for _ in 0..5 {
            ranker.record_feedback(&all[0], Interestingness::Low);
            ranker.record_feedback(&all[2], Interestingness::High);
        }
        assert!(
            ranker.kind_weight[ItemKind::Pattern.index()]
                > ranker.kind_weight[ItemKind::Cluster.index()]
        );
        let ranked = ranker.rank(&all);
        assert_eq!(ranked[0].kind, ItemKind::Pattern);
    }

    #[test]
    fn model_activates_after_enough_feedback_and_learns_policy() {
        let mut ranker = KnowledgeRanker::new();
        // Teach: high-confidence patterns are High, low-confidence Low.
        for i in 0..10 {
            let strong = KnowledgeItem::pattern(100 + i, "s", 0.2, 0.9, 2.5);
            let weak = KnowledgeItem::pattern(200 + i, "w", 0.2, 0.1, 2.5);
            ranker.record_feedback(&strong, Interestingness::High);
            ranker.record_feedback(&weak, Interestingness::Low);
        }
        assert!(ranker.model_active());
        let unseen_strong = KnowledgeItem::pattern(999, "new strong", 0.2, 0.85, 2.5);
        let unseen_weak = KnowledgeItem::pattern(998, "new weak", 0.2, 0.15, 2.5);
        assert!(
            ranker.score(&unseen_strong) > ranker.score(&unseen_weak),
            "classifier must generalize the feedback policy"
        );
    }

    #[test]
    fn rank_is_deterministic_and_stable_on_ties() {
        let ranker = KnowledgeRanker::new();
        let twins = vec![
            KnowledgeItem::pattern(7, "a", 0.2, 0.5, 1.5),
            KnowledgeItem::pattern(3, "b", 0.2, 0.5, 1.5),
        ];
        let ranked = ranker.rank(&twins);
        assert_eq!(ranked[0].id, 3, "ties break by id");
    }

    #[test]
    fn feature_vectors_have_fixed_length() {
        for item in items() {
            assert_eq!(item.features.len(), KnowledgeItem::NUM_FEATURES);
        }
    }
}
