//! Knowledge navigation: interactive ranking of knowledge items.
//!
//! "ADA-HEALTH also includes an interactive knowledge ranking algorithm
//! … which will help to select, among a set of knowledge items, which
//! ones are most interesting for a user. Based on user feedbacks, the
//! algorithm dynamically adjusts the way and order how knowledge items
//! are organized and presented."
//!
//! Before any feedback exists, items are ordered by an objective prior
//! (their composite interestingness). Each piece of feedback (a) shifts
//! a per-kind preference weight (fast adaptation) and (b) accumulates
//! labelled examples; once enough exist, a decision tree is trained to
//! predict the {high, medium, low} label from item features and takes
//! over the ordering (the paper's "prediction of a degree of
//! interestingness … by means of a classification algorithm").

use ada_kdb::schema::Interestingness;
use ada_mining::tree::{DecisionTree, TreeConfig};
use ada_vsm::DenseMatrix;
use serde::{Deserialize, Serialize};

/// The kind of a knowledge item (which miner produced it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ItemKind {
    /// A patient cluster.
    Cluster,
    /// A frequent pattern / association rule.
    Pattern,
    /// A ranked safety signal (disproportionality finding from
    /// `ada-signals`).
    Signal,
}

impl ItemKind {
    fn index(self) -> usize {
        match self {
            ItemKind::Cluster => 0,
            ItemKind::Pattern => 1,
            ItemKind::Signal => 2,
        }
    }
}

/// A knowledge item as seen by the ranker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnowledgeItem {
    /// Caller-side identifier (e.g. the K-DB document id).
    pub id: u64,
    /// Which miner produced the item.
    pub kind: ItemKind,
    /// Human-readable description.
    pub description: String,
    /// Fixed-order numeric features (see [`KnowledgeItem::cluster`] /
    /// [`KnowledgeItem::pattern`]).
    pub features: Vec<f64>,
}

impl KnowledgeItem {
    /// Feature-vector length (shared by all kinds). Layout:
    /// `[is_cluster, is_pattern, support, confidence, lift', size,
    /// cohesion, is_signal, ror', shrunk']` — indices 0–6 predate the
    /// signal kind and must never shift (the navigation stage and the
    /// ranker rebuild read them positionally); signal features append.
    pub const NUM_FEATURES: usize = 10;

    /// A cluster item: `size_fraction` of the cohort, `cohesion` =
    /// within-cluster overall similarity.
    pub fn cluster(
        id: u64,
        description: impl Into<String>,
        size_fraction: f64,
        cohesion: f64,
    ) -> Self {
        Self {
            id,
            kind: ItemKind::Cluster,
            description: description.into(),
            features: vec![
                1.0,
                0.0,
                0.0,
                0.0,
                0.0,
                size_fraction,
                cohesion,
                0.0,
                0.0,
                0.0,
            ],
        }
    }

    /// A pattern item with its rule statistics (`lift` is squashed to
    /// `lift/(1+lift)` so the feature stays bounded).
    pub fn pattern(
        id: u64,
        description: impl Into<String>,
        support: f64,
        confidence: f64,
        lift: f64,
    ) -> Self {
        let squashed = if lift.is_finite() {
            lift / (1.0 + lift)
        } else {
            1.0
        };
        Self {
            id,
            kind: ItemKind::Pattern,
            description: description.into(),
            features: vec![
                0.0, 1.0, support, confidence, squashed, 0.0, 0.0, 0.0, 0.0, 0.0,
            ],
        }
    }

    /// A safety-signal item from its disproportionality statistics:
    /// `support` = exposed-with-outcome fraction of the cohort,
    /// `ror_low` = lower bound of the 95% ROR confidence interval
    /// (the conservative association strength), `shrunk` = the
    /// EBGM-style shrunken reporting ratio. The unbounded statistics
    /// are squashed to `x/(1+x)` so features stay in [0, 1] (0.5 is
    /// the no-association point for both).
    pub fn signal(
        id: u64,
        description: impl Into<String>,
        support: f64,
        ror_low: f64,
        shrunk: f64,
    ) -> Self {
        let squash = |x: f64| if x.is_finite() { x / (1.0 + x) } else { 1.0 };
        Self {
            id,
            kind: ItemKind::Signal,
            description: description.into(),
            features: vec![
                0.0,
                0.0,
                support,
                0.0,
                0.0,
                0.0,
                0.0,
                1.0,
                squash(ror_low.max(0.0)),
                squash(shrunk.max(0.0)),
            ],
        }
    }

    /// The objective prior score used before any feedback exists.
    pub fn prior_score(&self) -> f64 {
        match self.kind {
            ItemKind::Cluster => {
                let size = self.features[5];
                let cohesion = self.features[6];
                // Peak for mid-sized cohesive clusters.
                let size_term = 1.0 - (size - 0.2).abs().min(1.0);
                0.5 * cohesion + 0.5 * size_term
            }
            ItemKind::Pattern => {
                let support = self.features[2];
                let confidence = self.features[3];
                let lift = self.features[4];
                (support + confidence + lift) / 3.0
            }
            ItemKind::Signal => {
                // The combined ranking score of the tentpole: the
                // conservative CI lower bound carries the most weight,
                // the shrunken estimate guards against sparse-cell
                // noise, and support rewards signals that are actually
                // observed (saturating at 10% of the cohort).
                let support = (self.features[2] * 10.0).min(1.0);
                let ror_low = self.features[8];
                let shrunk = self.features[9];
                0.45 * ror_low + 0.35 * shrunk + 0.2 * support
            }
        }
    }
}

/// The adaptive knowledge ranker.
#[derive(Debug, Clone)]
pub struct KnowledgeRanker {
    /// Per-kind preference weights, adapted by feedback (EMA).
    kind_weight: [f64; 3],
    /// Labelled history: (features, label index 0/1/2).
    history: Vec<(Vec<f64>, usize)>,
    /// Trained interestingness classifier, once history suffices.
    model: Option<DecisionTree>,
    /// EMA smoothing factor for kind weights.
    alpha: f64,
}

impl Default for KnowledgeRanker {
    fn default() -> Self {
        Self::new()
    }
}

impl KnowledgeRanker {
    /// Minimum feedback count before the classifier is trained.
    pub const MIN_HISTORY: usize = 12;

    /// A fresh ranker with neutral preferences.
    pub fn new() -> Self {
        Self {
            kind_weight: [1.0, 1.0, 1.0],
            history: Vec::new(),
            model: None,
            alpha: 0.2,
        }
    }

    /// Number of feedback observations absorbed.
    pub fn feedback_count(&self) -> usize {
        self.history.len()
    }

    /// Whether the learned classifier is active.
    pub fn model_active(&self) -> bool {
        self.model.is_some()
    }

    /// Records one user feedback and adapts the ordering policy.
    pub fn record_feedback(&mut self, item: &KnowledgeItem, label: Interestingness) {
        // Fast path: exponential moving average on the item's kind.
        let idx = item.kind.index();
        self.kind_weight[idx] =
            (1.0 - self.alpha) * self.kind_weight[idx] + self.alpha * (0.5 + label.score());
        // Slow path: accumulate and (re)train the classifier.
        let label_idx = match label {
            Interestingness::Low => 0,
            Interestingness::Medium => 1,
            Interestingness::High => 2,
        };
        self.history.push((item.features.clone(), label_idx));
        if self.history.len() >= Self::MIN_HISTORY {
            let rows: Vec<Vec<f64>> = self.history.iter().map(|(f, _)| f.clone()).collect();
            let labels: Vec<usize> = self.history.iter().map(|&(_, l)| l).collect();
            let matrix = DenseMatrix::from_rows(&rows);
            self.model = Some(DecisionTree::fit(
                &matrix,
                &labels,
                3,
                &TreeConfig {
                    max_depth: 5,
                    min_samples_leaf: 2,
                    ..TreeConfig::default()
                },
            ));
        }
    }

    /// The current score of an item under the adapted policy.
    pub fn score(&self, item: &KnowledgeItem) -> f64 {
        let base = match &self.model {
            Some(model) => {
                // Predicted interest dominates; the objective prior
                // breaks ties within a predicted class.
                let predicted = model.predict_row(&item.features) as f64 / 2.0;
                predicted + 0.1 * item.prior_score()
            }
            None => item.prior_score(),
        };
        base * self.kind_weight[item.kind.index()]
    }

    /// Returns the items sorted most-interesting-first (stable; ties
    /// break by kind then id for determinism — ids are per-collection,
    /// so a cluster and a pattern may share one).
    pub fn rank<'a>(&self, items: &'a [KnowledgeItem]) -> Vec<&'a KnowledgeItem> {
        let mut ranked: Vec<&KnowledgeItem> = items.iter().collect();
        ranked.sort_by(|a, b| {
            self.score(b)
                .partial_cmp(&self.score(a))
                .expect("finite scores")
                .then_with(|| (a.kind.index(), a.id).cmp(&(b.kind.index(), b.id)))
        });
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items() -> Vec<KnowledgeItem> {
        vec![
            KnowledgeItem::cluster(1, "mid-size cohesive cluster", 0.2, 0.8),
            KnowledgeItem::cluster(2, "catch-all blob", 0.9, 0.3),
            KnowledgeItem::pattern(3, "strong rule", 0.2, 0.9, 3.0),
            KnowledgeItem::pattern(4, "weak rule", 0.01, 0.2, 1.0),
        ]
    }

    #[test]
    fn prior_ranking_prefers_strong_items() {
        let ranker = KnowledgeRanker::new();
        let all = items();
        let ranked = ranker.rank(&all);
        let first_two: Vec<u64> = ranked[..2].iter().map(|i| i.id).collect();
        assert!(first_two.contains(&1), "cohesive cluster should rank high");
        assert!(first_two.contains(&3), "strong rule should rank high");
        assert_eq!(ranked[3].id, 4, "weak rule last");
    }

    #[test]
    fn kind_feedback_shifts_ordering() {
        let mut ranker = KnowledgeRanker::new();
        let all = items();
        // The user repeatedly dislikes clusters and likes patterns.
        for _ in 0..5 {
            ranker.record_feedback(&all[0], Interestingness::Low);
            ranker.record_feedback(&all[2], Interestingness::High);
        }
        assert!(
            ranker.kind_weight[ItemKind::Pattern.index()]
                > ranker.kind_weight[ItemKind::Cluster.index()]
        );
        let ranked = ranker.rank(&all);
        assert_eq!(ranked[0].kind, ItemKind::Pattern);
    }

    #[test]
    fn model_activates_after_enough_feedback_and_learns_policy() {
        let mut ranker = KnowledgeRanker::new();
        // Teach: high-confidence patterns are High, low-confidence Low.
        for i in 0..10 {
            let strong = KnowledgeItem::pattern(100 + i, "s", 0.2, 0.9, 2.5);
            let weak = KnowledgeItem::pattern(200 + i, "w", 0.2, 0.1, 2.5);
            ranker.record_feedback(&strong, Interestingness::High);
            ranker.record_feedback(&weak, Interestingness::Low);
        }
        assert!(ranker.model_active());
        let unseen_strong = KnowledgeItem::pattern(999, "new strong", 0.2, 0.85, 2.5);
        let unseen_weak = KnowledgeItem::pattern(998, "new weak", 0.2, 0.15, 2.5);
        assert!(
            ranker.score(&unseen_strong) > ranker.score(&unseen_weak),
            "classifier must generalize the feedback policy"
        );
    }

    #[test]
    fn rank_is_deterministic_and_stable_on_ties() {
        let ranker = KnowledgeRanker::new();
        let twins = vec![
            KnowledgeItem::pattern(7, "a", 0.2, 0.5, 1.5),
            KnowledgeItem::pattern(3, "b", 0.2, 0.5, 1.5),
        ];
        let ranked = ranker.rank(&twins);
        assert_eq!(ranked[0].id, 3, "ties break by id");
    }

    #[test]
    fn feature_vectors_have_fixed_length() {
        let mut all = items();
        all.push(KnowledgeItem::signal(9, "signal", 0.05, 2.4, 1.8));
        for item in all {
            assert_eq!(item.features.len(), KnowledgeItem::NUM_FEATURES);
        }
    }

    #[test]
    fn signal_prior_prefers_strong_associations() {
        let strong = KnowledgeItem::signal(1, "strong", 0.08, 3.0, 2.5);
        let neutral = KnowledgeItem::signal(2, "neutral", 0.08, 1.0, 1.0);
        let sparse = KnowledgeItem::signal(3, "sparse", 0.001, 0.4, 0.9);
        assert!(strong.prior_score() > neutral.prior_score());
        assert!(neutral.prior_score() > sparse.prior_score());
        for item in [&strong, &neutral, &sparse] {
            assert!((0.0..=1.0).contains(&item.prior_score()));
        }
    }

    #[test]
    fn signal_ties_break_by_kind_then_id() {
        // Three kinds engineered onto one score: kind index then id
        // decides, exactly like the cluster/pattern tie-break fix.
        let ranker = KnowledgeRanker::new();
        let twins = vec![
            KnowledgeItem::signal(5, "a", 0.1, 2.0, 2.0),
            KnowledgeItem::signal(2, "b", 0.1, 2.0, 2.0),
        ];
        let ranked = ranker.rank(&twins);
        assert_eq!(ranked[0].id, 2, "signal ties break by id");
    }

    #[test]
    fn signal_feedback_does_not_perturb_other_kinds() {
        let mut ranker = KnowledgeRanker::new();
        let all = items();
        let before: Vec<f64> = all.iter().map(|i| ranker.score(i)).collect();

        // Fewer than MIN_HISTORY labels, so only the per-kind EMA path
        // runs — and that path is kind-isolated by construction.
        let signal = KnowledgeItem::signal(9, "renal signal", 0.05, 2.4, 1.8);
        for _ in 0..8 {
            ranker.record_feedback(&signal, Interestingness::High);
        }
        assert!(!ranker.model_active());
        assert!(ranker.kind_weight[ItemKind::Signal.index()] > 1.0);

        let after: Vec<f64> = all.iter().map(|i| ranker.score(i)).collect();
        assert_eq!(before, after, "cluster/pattern scores must not move");
    }
}
