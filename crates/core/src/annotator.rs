//! The simulated physician.
//!
//! The paper enriches knowledge items "with the support of a physician
//! … with a degree of interestingness {high, medium, low}", and notes
//! that end-goal selection "is strongly affected … by differences in
//! physician opinions, due to their diverse background and
//! specialization". No physician is available to a reproduction, so this
//! module provides the documented substitution (see DESIGN.md): a
//! deterministic labelling policy over item statistics, with a
//! configurable specialty bias and label noise — consistent enough to
//! learn from, noisy enough to be realistic.

use ada_dataset::taxonomy::ConditionGroup;
use ada_kdb::schema::Interestingness;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded, biased, noisy annotator standing in for the domain expert.
#[derive(Debug)]
pub struct SimulatedPhysician {
    rng: StdRng,
    /// Probability that a label is replaced by a uniformly random one.
    noise: f64,
    /// The physician's specialty: items touching this condition group
    /// get one interest level of boost.
    specialty: Option<ConditionGroup>,
}

impl SimulatedPhysician {
    /// Creates an annotator.
    ///
    /// # Panics
    /// Panics when `noise` is outside [0, 1].
    pub fn new(seed: u64, noise: f64, specialty: Option<ConditionGroup>) -> Self {
        assert!((0.0..=1.0).contains(&noise), "noise must be in [0, 1]");
        Self {
            rng: StdRng::seed_from_u64(seed),
            noise,
            specialty,
        }
    }

    /// A noiseless, unbiased annotator (useful in tests).
    pub fn strict(seed: u64) -> Self {
        Self::new(seed, 0.0, None)
    }

    /// Labels a *pattern* knowledge item from its rule statistics.
    ///
    /// Policy: strong, non-obvious co-prescriptions are interesting —
    /// lift ≥ 1.5 and confidence ≥ 0.6 with support ≥ 2% is `High`;
    /// moderate lift or confidence is `Medium`; near-independent or
    /// ubiquitous rules are `Low`. A specialty match upgrades one level.
    pub fn label_pattern(
        &mut self,
        support: f64,
        confidence: f64,
        lift: f64,
        touches: &[ConditionGroup],
    ) -> Interestingness {
        let base = if lift >= 1.5 && confidence >= 0.6 && support >= 0.02 {
            Interestingness::High
        } else if lift >= 1.2 && confidence >= 0.4 && support >= 0.01 {
            Interestingness::Medium
        } else {
            Interestingness::Low
        };
        self.finalize(self.specialty_boost(base, touches))
    }

    /// Labels a *cluster* knowledge item from its shape statistics.
    ///
    /// Policy: cohesive clusters of clinically-actionable size (2%–60%
    /// of the cohort) are interesting; slivers and catch-all blobs are
    /// not.
    pub fn label_cluster(
        &mut self,
        size_fraction: f64,
        cohesion: f64,
        touches: &[ConditionGroup],
    ) -> Interestingness {
        let good_size = (0.02..=0.60).contains(&size_fraction);
        let base = if good_size && cohesion >= 0.5 {
            Interestingness::High
        } else if good_size && cohesion >= 0.3 {
            Interestingness::Medium
        } else {
            Interestingness::Low
        };
        self.finalize(self.specialty_boost(base, touches))
    }

    /// Labels a *safety-signal* knowledge item from its
    /// disproportionality statistics (`ror_low` = lower 95% CI bound of
    /// the reporting odds ratio, `shrunk` = EBGM-style shrunken
    /// reporting ratio).
    ///
    /// Policy: a signal whose CI excludes the null from above and whose
    /// shrunken estimate survives is interesting; a positive but
    /// fragile association is `Medium`; CI-crossing-1 or shrunk-to-null
    /// findings are `Low`. A specialty match upgrades one level.
    pub fn label_signal(
        &mut self,
        support: f64,
        ror_low: f64,
        shrunk: f64,
        touches: &[ConditionGroup],
    ) -> Interestingness {
        let base = if ror_low >= 1.5 && shrunk >= 1.5 && support >= 0.01 {
            Interestingness::High
        } else if ror_low >= 1.0 && shrunk >= 1.2 {
            Interestingness::Medium
        } else {
            Interestingness::Low
        };
        self.finalize(self.specialty_boost(base, touches))
    }

    fn specialty_boost(
        &self,
        base: Interestingness,
        touches: &[ConditionGroup],
    ) -> Interestingness {
        match self.specialty {
            Some(s) if touches.contains(&s) => match base {
                Interestingness::Low => Interestingness::Medium,
                _ => Interestingness::High,
            },
            _ => base,
        }
    }

    fn finalize(&mut self, label: Interestingness) -> Interestingness {
        if self.noise > 0.0 && self.rng.gen::<f64>() < self.noise {
            match self.rng.gen_range(0..3) {
                0 => Interestingness::Low,
                1 => Interestingness::Medium,
                _ => Interestingness::High,
            }
        } else {
            label
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_pattern_policy() {
        let mut doc = SimulatedPhysician::strict(1);
        assert_eq!(
            doc.label_pattern(0.10, 0.9, 2.5, &[]),
            Interestingness::High
        );
        assert_eq!(
            doc.label_pattern(0.05, 0.5, 1.3, &[]),
            Interestingness::Medium
        );
        assert_eq!(
            doc.label_pattern(0.30, 0.9, 1.0, &[]),
            Interestingness::Low,
            "independent rule is uninteresting however confident"
        );
    }

    #[test]
    fn strict_cluster_policy() {
        let mut doc = SimulatedPhysician::strict(2);
        assert_eq!(doc.label_cluster(0.10, 0.7, &[]), Interestingness::High);
        assert_eq!(doc.label_cluster(0.10, 0.35, &[]), Interestingness::Medium);
        assert_eq!(
            doc.label_cluster(0.005, 0.9, &[]),
            Interestingness::Low,
            "sliver clusters are not actionable"
        );
        assert_eq!(
            doc.label_cluster(0.9, 0.9, &[]),
            Interestingness::Low,
            "catch-all clusters are not actionable"
        );
    }

    #[test]
    fn specialty_bias_upgrades() {
        let mut cardio = SimulatedPhysician::new(3, 0.0, Some(ConditionGroup::Cardiovascular));
        let touching = [ConditionGroup::Cardiovascular];
        assert_eq!(
            cardio.label_pattern(0.30, 0.9, 1.0, &touching),
            Interestingness::Medium,
            "specialty lifts Low to Medium"
        );
        assert_eq!(
            cardio.label_pattern(0.05, 0.5, 1.3, &touching),
            Interestingness::High,
            "specialty lifts Medium to High"
        );
        // No effect on unrelated items.
        assert_eq!(
            cardio.label_pattern(0.30, 0.9, 1.0, &[ConditionGroup::Renal]),
            Interestingness::Low
        );
    }

    #[test]
    fn noise_flips_some_labels_deterministically() {
        let mut a = SimulatedPhysician::new(7, 0.5, None);
        let mut b = SimulatedPhysician::new(7, 0.5, None);
        let labels_a: Vec<_> = (0..50)
            .map(|_| a.label_pattern(0.10, 0.9, 2.5, &[]))
            .collect();
        let labels_b: Vec<_> = (0..50)
            .map(|_| b.label_pattern(0.10, 0.9, 2.5, &[]))
            .collect();
        assert_eq!(labels_a, labels_b, "same seed, same labels");
        assert!(
            labels_a.iter().any(|&l| l != Interestingness::High),
            "50% noise must flip something"
        );
        assert!(
            labels_a
                .iter()
                .filter(|&&l| l == Interestingness::High)
                .count()
                > 25,
            "the policy signal must still dominate"
        );
    }

    #[test]
    #[should_panic(expected = "noise")]
    fn rejects_bad_noise() {
        let _ = SimulatedPhysician::new(0, 1.5, None);
    }
}
