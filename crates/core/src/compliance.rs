//! Guideline-compliance assessment.
//!
//! One of the paper's motivating end-goals: "(ii) assessing the
//! adherence of medical prescriptions and treatments to relevant
//! clinical guidelines". A [`Guideline`] states how often an exam (or
//! any exam of a condition group) should be performed per observation
//! year and for which ages it applies; [`assess`] evaluates a cohort's
//! timelines against a guideline set, producing per-guideline compliance
//! rates and a worst-offender sample — a ready-made knowledge item for
//! the navigation layer.

use ada_dataset::taxonomy::ConditionGroup;
use ada_dataset::timeline::{timelines, Timeline};
use ada_dataset::{ExamLog, ExamTypeId, PatientId};
use serde::{Deserialize, Serialize};

/// What a guideline monitors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GuidelineTarget {
    /// A specific examination type.
    Exam(ExamTypeId),
    /// Any examination of a condition group.
    Group(ConditionGroup),
}

/// A minimal clinical follow-up guideline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Guideline {
    /// Human-readable name, e.g. `"HbA1c at least twice a year"`.
    pub name: String,
    /// The monitored exam or group.
    pub target: GuidelineTarget,
    /// Minimum number of target exams within the observation window.
    pub min_count: u32,
    /// Optional maximum allowed gap (days) between consecutive target
    /// exams (and between window edges and the nearest exam is *not*
    /// enforced — only inter-exam gaps).
    pub max_gap_days: Option<i64>,
    /// Minimum patient age for the guideline to apply.
    pub min_age: u16,
    /// Maximum patient age for the guideline to apply.
    pub max_age: u16,
}

impl Guideline {
    /// A simple frequency guideline applying to all ages.
    pub fn frequency(name: impl Into<String>, target: GuidelineTarget, min_count: u32) -> Self {
        Self {
            name: name.into(),
            target,
            min_count,
            max_gap_days: None,
            min_age: 0,
            max_age: u16::MAX,
        }
    }

    /// Restricts the guideline to an age range (builder style).
    pub fn ages(mut self, min_age: u16, max_age: u16) -> Self {
        self.min_age = min_age;
        self.max_age = max_age;
        self
    }

    /// Adds a maximum-gap requirement (builder style).
    pub fn max_gap(mut self, days: i64) -> Self {
        self.max_gap_days = Some(days);
        self
    }
}

/// One patient's verdict under one guideline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Guideline does not apply (age out of range).
    NotApplicable,
    /// All requirements met.
    Compliant,
    /// Too few target exams.
    TooFew {
        /// Number of target exams observed.
        observed: u32,
    },
    /// Enough exams, but a gap exceeded the allowed maximum.
    GapExceeded {
        /// The largest observed gap in days.
        worst_gap: i64,
    },
}

/// Aggregated result for one guideline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuidelineResult {
    /// The guideline name.
    pub name: String,
    /// Patients the guideline applies to.
    pub eligible: usize,
    /// Eligible patients meeting every requirement.
    pub compliant: usize,
    /// Up to ten non-compliant patients (worst first: fewest exams,
    /// then largest gap).
    pub offenders: Vec<(PatientId, Verdict)>,
}

impl GuidelineResult {
    /// Compliance rate among eligible patients (1.0 when nobody is
    /// eligible — an inapplicable guideline is vacuously satisfied).
    pub fn rate(&self) -> f64 {
        if self.eligible == 0 {
            1.0
        } else {
            self.compliant as f64 / self.eligible as f64
        }
    }
}

/// The whole compliance report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComplianceReport {
    /// One result per guideline, in input order.
    pub results: Vec<GuidelineResult>,
}

impl ComplianceReport {
    /// Mean compliance rate over all guidelines with eligible patients.
    pub fn overall_rate(&self) -> f64 {
        let live: Vec<&GuidelineResult> = self.results.iter().filter(|r| r.eligible > 0).collect();
        if live.is_empty() {
            return 1.0;
        }
        live.iter().map(|r| r.rate()).sum::<f64>() / live.len() as f64
    }
}

fn judge(timeline: &Timeline, log: &ExamLog, guideline: &Guideline) -> Verdict {
    let age = log.patients()[timeline.patient.index()].age;
    if age < guideline.min_age || age > guideline.max_age {
        return Verdict::NotApplicable;
    }
    let taxonomy = log.taxonomy();
    let mut dates: Vec<ada_dataset::Date> = timeline
        .visits
        .iter()
        .filter(|v| {
            v.exams.iter().any(|&e| match &guideline.target {
                GuidelineTarget::Exam(target) => e == *target,
                GuidelineTarget::Group(group) => taxonomy.group_of(e) == Some(*group),
            })
        })
        .map(|v| v.date)
        .collect();
    dates.dedup();
    if (dates.len() as u32) < guideline.min_count {
        return Verdict::TooFew {
            observed: dates.len() as u32,
        };
    }
    if let Some(max_gap) = guideline.max_gap_days {
        let worst = dates
            .windows(2)
            .map(|w| w[1].days_between(w[0]))
            .max()
            .unwrap_or(0);
        if worst > max_gap {
            return Verdict::GapExceeded { worst_gap: worst };
        }
    }
    Verdict::Compliant
}

/// Evaluates the cohort against a guideline set.
///
/// ```
/// use ada_core::compliance::{assess, diabetes_guidelines};
/// use ada_dataset::synthetic::{generate, SyntheticConfig};
///
/// let log = generate(&SyntheticConfig::small(), 1);
/// let report = assess(&log, &diabetes_guidelines(&log));
/// assert!((0.0..=1.0).contains(&report.overall_rate()));
/// ```
pub fn assess(log: &ExamLog, guidelines: &[Guideline]) -> ComplianceReport {
    let cohort = timelines(log);
    let results = guidelines
        .iter()
        .map(|guideline| {
            let mut eligible = 0usize;
            let mut compliant = 0usize;
            let mut offenders: Vec<(PatientId, Verdict)> = Vec::new();
            for timeline in &cohort {
                match judge(timeline, log, guideline) {
                    Verdict::NotApplicable => {}
                    Verdict::Compliant => {
                        eligible += 1;
                        compliant += 1;
                    }
                    verdict => {
                        eligible += 1;
                        offenders.push((timeline.patient, verdict));
                    }
                }
            }
            offenders.sort_by_key(|&(patient, verdict)| {
                let severity = match verdict {
                    Verdict::TooFew { observed } => (0u8, i64::from(observed)),
                    Verdict::GapExceeded { worst_gap } => (1, -worst_gap),
                    _ => (2, 0),
                };
                (severity, patient.0)
            });
            offenders.truncate(10);
            GuidelineResult {
                name: guideline.name.clone(),
                eligible,
                compliant,
                offenders,
            }
        })
        .collect();
    ComplianceReport { results }
}

/// A standard diabetes follow-up guideline set over the synthetic
/// catalog, resolved by exam name (guidelines whose exams are absent
/// from the catalog are skipped).
pub fn diabetes_guidelines(log: &ExamLog) -> Vec<Guideline> {
    let find = |name: &str| -> Option<ExamTypeId> {
        log.catalog().iter().find(|e| e.name == name).map(|e| e.id)
    };
    let mut guidelines = Vec::new();
    if let Some(exam) = find("Glycated hemoglobin (HbA1c)") {
        guidelines.push(
            Guideline::frequency(
                "HbA1c at least twice a year, no gap over 8 months",
                GuidelineTarget::Exam(exam),
                2,
            )
            .max_gap(244),
        );
    }
    if let Some(exam) = find("Fundus examination") {
        guidelines.push(Guideline::frequency(
            "annual fundus examination (retinopathy screening)",
            GuidelineTarget::Exam(exam),
            1,
        ));
    }
    guidelines.push(Guideline::frequency(
        "annual renal monitoring (any renal exam)",
        GuidelineTarget::Group(ConditionGroup::Renal),
        1,
    ));
    guidelines.push(Guideline::frequency(
        "annual lipid panel (any lipid exam)",
        GuidelineTarget::Group(ConditionGroup::Lipid),
        1,
    ));
    guidelines.push(
        Guideline::frequency(
            "annual foot screening for patients 50+",
            GuidelineTarget::Group(ConditionGroup::Podiatric),
            1,
        )
        .ages(50, u16::MAX),
    );
    guidelines
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_dataset::record::{ExamRecord, ExamType, Patient};
    use ada_dataset::Date;

    fn guideline_log() -> ExamLog {
        let patients = vec![
            Patient::new(PatientId(0), 60).unwrap(), // compliant
            Patient::new(PatientId(1), 60).unwrap(), // too few
            Patient::new(PatientId(2), 60).unwrap(), // gap too large
            Patient::new(PatientId(3), 30).unwrap(), // out of age range
        ];
        let catalog = vec![ExamType::new(
            ExamTypeId(0),
            "HbA1c",
            ConditionGroup::GlycemicControl,
        )];
        let mut log = ExamLog::new(patients, catalog).unwrap();
        let d = |m, day| Date::new(2015, m, day).unwrap();
        // Patient 0: Feb + Aug (gap ~180).
        log.push_record(ExamRecord::new(PatientId(0), ExamTypeId(0), d(2, 1)))
            .unwrap();
        log.push_record(ExamRecord::new(PatientId(0), ExamTypeId(0), d(8, 1)))
            .unwrap();
        // Patient 1: one exam only.
        log.push_record(ExamRecord::new(PatientId(1), ExamTypeId(0), d(5, 1)))
            .unwrap();
        // Patient 2: Jan + Dec (gap ~334).
        log.push_record(ExamRecord::new(PatientId(2), ExamTypeId(0), d(1, 5)))
            .unwrap();
        log.push_record(ExamRecord::new(PatientId(2), ExamTypeId(0), d(12, 5)))
            .unwrap();
        // Patient 3: nothing (but also not eligible).
        log
    }

    fn hba1c_guideline() -> Guideline {
        Guideline::frequency("HbA1c 2x/yr", GuidelineTarget::Exam(ExamTypeId(0)), 2)
            .max_gap(244)
            .ages(40, 99)
    }

    #[test]
    fn verdicts_cover_all_cases() {
        let log = guideline_log();
        let report = assess(&log, &[hba1c_guideline()]);
        let r = &report.results[0];
        assert_eq!(r.eligible, 3, "age-excluded patient must not count");
        assert_eq!(r.compliant, 1);
        assert!((r.rate() - 1.0 / 3.0).abs() < 1e-12);
        // Offenders: too-few first, then gap-exceeded.
        assert_eq!(r.offenders.len(), 2);
        assert_eq!(r.offenders[0].0, PatientId(1));
        assert!(matches!(r.offenders[0].1, Verdict::TooFew { observed: 1 }));
        assert_eq!(r.offenders[1].0, PatientId(2));
        assert!(matches!(
            r.offenders[1].1,
            Verdict::GapExceeded { worst_gap } if worst_gap > 300
        ));
    }

    #[test]
    fn group_target_counts_any_member_exam() {
        let patients = vec![Patient::new(PatientId(0), 55).unwrap()];
        let catalog = vec![
            ExamType::new(ExamTypeId(0), "Serum creatinine", ConditionGroup::Renal),
            ExamType::new(ExamTypeId(1), "Urinalysis", ConditionGroup::Renal),
        ];
        let mut log = ExamLog::new(patients, catalog).unwrap();
        log.push_record(ExamRecord::new(
            PatientId(0),
            ExamTypeId(1),
            Date::new(2015, 3, 3).unwrap(),
        ))
        .unwrap();
        let g = Guideline::frequency(
            "annual renal",
            GuidelineTarget::Group(ConditionGroup::Renal),
            1,
        );
        let report = assess(&log, &[g]);
        assert_eq!(report.results[0].compliant, 1);
    }

    #[test]
    fn vacuous_guideline_is_fully_compliant() {
        let log = guideline_log();
        let g = hba1c_guideline().ages(100, 120); // nobody eligible
        let report = assess(&log, &[g]);
        assert_eq!(report.results[0].eligible, 0);
        assert_eq!(report.results[0].rate(), 1.0);
        assert_eq!(report.overall_rate(), 1.0);
    }

    #[test]
    fn overall_rate_averages_live_guidelines() {
        let log = guideline_log();
        let report = assess(&log, &[hba1c_guideline(), hba1c_guideline().ages(100, 120)]);
        assert!((report.overall_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn synthetic_catalog_guidelines_resolve() {
        use ada_dataset::synthetic::{generate, SyntheticConfig};
        let log = generate(&SyntheticConfig::small(), 3);
        let guidelines = diabetes_guidelines(&log);
        assert!(guidelines.len() >= 4, "expected the standard set");
        let report = assess(&log, &guidelines);
        assert_eq!(report.results.len(), guidelines.len());
        for r in &report.results {
            assert!(r.eligible > 0, "guideline {} found nobody", r.name);
            assert!((0.0..=1.0).contains(&r.rate()));
        }
        // Episodic patients guarantee some non-compliance.
        assert!(report.overall_rate() < 1.0);
    }
}
