//! Algorithm optimization: the K sweep behind Table I.
//!
//! "Given a dataset and a clustering algorithm, our technique performs
//! several runs of the mining activity with varying parameters (e.g.
//! different numbers of clusters) … The SSE index measures the cluster
//! cohesion … However, as the number of classes increases, the SSE
//! decreases … A classifier was then built to assess the robustness of
//! clustering results by means of different quality metrics (such as
//! accuracy, precision, recall), using the same input features of the
//! clustering algorithm, and the class label assigned by the clustering
//! algorithm itself as target."
//!
//! [`Optimizer::run`] sweeps the candidate K values (the stand-in for
//! the paper's "online cloud-based services for automatic
//! configuration"), reports the Table I columns, and auto-selects the K
//! with the best overall classification results (K = 8 in the paper).
//!
//! # Parallelism
//!
//! The sweep has two nested parallelism levels, both governed by the
//! single [`Optimizer::thread_budget`] knob:
//!
//! * **K level** — with [`Optimizer::parallel`] set, each candidate K
//!   is evaluated on its own worker thread; each worker drives its
//!   K-means runs with an equal share (`budget / #K`, at least 1) of
//!   the thread budget.
//! * **Row level** — each K-means run hands its share to the Lloyd
//!   kernel's chunked assign/update passes as row-level worker threads.
//!
//! With [`Optimizer::parallel`] unset the sweep falls back to a serial
//! loop over K, and every evaluation gets the *whole* budget at the row
//! level instead.
//!
//! Determinism: the kernel reduces per-chunk partials in a fixed chunk
//! order, so the report is byte-identical for every `thread_budget`
//! value and for the serial fallback — the knob (like `parallel`
//! itself) trades latency only, never results.

use ada_metrics::cluster;
use ada_mining::bayes::GaussianNb;
use ada_mining::kmeans::{KMeans, KMeansBackend};
use ada_mining::knn::KnnClassifier;
use ada_mining::tree::{DecisionTree, TreeConfig};
use ada_mining::validate;
use ada_vsm::DenseMatrix;
use serde::{Deserialize, Serialize};

use crate::control::{PipelineError, PipelineStage, RunControl};

/// Which classifier scores clustering robustness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RobustnessClassifier {
    /// CART decision tree (the paper's choice).
    DecisionTree(TreeConfig),
    /// Gaussian naive Bayes (ablation alternative).
    NaiveBayes,
    /// k-nearest neighbours with the given k (non-parametric upper
    /// bound on label recoverability).
    Knn(usize),
    /// Random forest (variance-reduced tree ensemble).
    RandomForest(ada_mining::forest::ForestConfig),
}

/// The score card of one K value — one row of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KEvaluation {
    /// The number of clusters.
    pub k: usize,
    /// Sum of squared errors of the cluster set.
    pub sse: f64,
    /// Cross-validated accuracy (%).
    pub accuracy: f64,
    /// Cross-validated macro-averaged precision (%).
    pub avg_precision: f64,
    /// Cross-validated macro-averaged recall (%).
    pub avg_recall: f64,
    /// Overall similarity of the cluster set (extra column; the paper's
    /// partial-mining interestingness metric).
    pub overall_similarity: f64,
}

impl KEvaluation {
    /// The combined classification score driving auto-selection
    /// (unweighted mean of the three Table I metrics).
    pub fn classification_score(&self) -> f64 {
        (self.accuracy + self.avg_precision + self.avg_recall) / 3.0
    }
}

/// The optimizer's full report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizerReport {
    /// One evaluation per probed K, in the probed order.
    pub evaluations: Vec<KEvaluation>,
    /// The automatically selected K.
    pub selected_k: usize,
    /// Start of the SSE-viable window: the smallest probed K whose
    /// forward per-unit SSE improvement falls below the elbow tolerance
    /// (the paper's "good values for K are in the range from 8 to 20").
    pub sse_window_start: usize,
}

impl OptimizerReport {
    /// The evaluation of the selected K.
    pub fn selected(&self) -> &KEvaluation {
        self.evaluations
            .iter()
            .find(|e| e.k == self.selected_k)
            .expect("selected K comes from evaluations")
    }

    /// Formats the report as a Table-I-like text table.
    pub fn format_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "{:>4} {:>12} {:>10} {:>14} {:>11} {:>10}",
            "K", "SSE", "Accuracy", "AVG Precision", "AVG Recall", "OverallSim"
        )
        .expect("writing to String cannot fail");
        for e in &self.evaluations {
            let marker = if e.k == self.selected_k {
                " <= selected"
            } else {
                ""
            };
            writeln!(
                out,
                "{:>4} {:>12.2} {:>10.2} {:>14.2} {:>11.2} {:>10.4}{}",
                e.k, e.sse, e.accuracy, e.avg_precision, e.avg_recall, e.overall_similarity, marker
            )
            .expect("writing to String cannot fail");
        }
        out
    }
}

/// The K-sweep optimizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Optimizer {
    /// K values to evaluate (paper Table I: 6,7,8,9,10,12,15,20).
    pub ks: Vec<usize>,
    /// Cross-validation folds (paper: 10).
    pub folds: usize,
    /// Seed for clustering and fold assignment.
    pub seed: u64,
    /// K-means backend.
    pub backend: KMeansBackend,
    /// Robustness classifier.
    pub classifier: RobustnessClassifier,
    /// SSE elbow tolerance: the smallest K whose forward per-unit
    /// relative SSE improvement drops below this value opens the
    /// SSE-viable window (paper: improvements fall from ~9% to ~2.7%
    /// right at K = 8, giving the window "8 to 20").
    pub sse_elbow_tol: f64,
    /// Evaluate K values on worker threads (the cloud-services stand-in).
    pub parallel: bool,
    /// Total worker-thread budget shared by the two parallelism levels
    /// (0 = one per available core). A parallel sweep gives each
    /// K-level worker `budget / ks.len()` (at least 1) row-level kernel
    /// threads; a serial sweep gives every evaluation the whole budget.
    /// Every value yields a byte-identical report — purely a latency
    /// knob (see the module docs).
    pub thread_budget: usize,
}

impl Optimizer {
    /// The paper's Table I configuration.
    pub fn paper() -> Self {
        Self {
            ks: vec![6, 7, 8, 9, 10, 12, 15, 20],
            folds: 10,
            seed: 0,
            backend: KMeansBackend::Lloyd,
            classifier: RobustnessClassifier::DecisionTree(TreeConfig {
                max_depth: 8,
                min_samples_leaf: 5,
                ..TreeConfig::default()
            }),
            sse_elbow_tol: 0.03,
            parallel: true,
            thread_budget: 0,
        }
    }

    /// A fast configuration for tests and examples.
    pub fn quick(ks: Vec<usize>) -> Self {
        Self {
            ks,
            folds: 5,
            parallel: false,
            ..Self::paper()
        }
    }

    /// The thread budget with 0 resolved to the available core count.
    fn resolved_budget(&self) -> usize {
        if self.thread_budget != 0 {
            self.thread_budget
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }

    /// Evaluates one K value with the full thread budget at the row
    /// level (a standalone evaluation has no sibling workers to share
    /// with).
    pub fn evaluate_k(&self, matrix: &DenseMatrix, k: usize) -> KEvaluation {
        self.evaluate_k_with_threads(matrix, k, self.resolved_budget(), &RunControl::new())
    }

    /// Evaluates one K value driving the Lloyd kernel with `row_threads`
    /// worker threads (identical output for every value). Kernel
    /// counters are forwarded to `control`'s observer, if any —
    /// instrumentation only, never part of the result.
    fn evaluate_k_with_threads(
        &self,
        matrix: &DenseMatrix,
        k: usize,
        row_threads: usize,
        control: &RunControl,
    ) -> KEvaluation {
        let (result, stats) = KMeans::new(k)
            .seed(self.seed)
            .backend(self.backend)
            .threads(row_threads)
            .fit_with_stats(matrix);
        control.counters(PipelineStage::Optimize, &stats.as_pairs());
        let overall_similarity = cluster::overall_similarity(matrix, &result.assignments, k);
        let cm = match &self.classifier {
            RobustnessClassifier::DecisionTree(config) => validate::cross_validate(
                matrix,
                &result.assignments,
                k,
                self.folds,
                self.seed,
                |tx, ty, sx| DecisionTree::fit(tx, ty, k, config).predict(sx),
            ),
            RobustnessClassifier::NaiveBayes => validate::cross_validate(
                matrix,
                &result.assignments,
                k,
                self.folds,
                self.seed,
                |tx, ty, sx| GaussianNb::fit(tx, ty, k).predict(sx),
            ),
            RobustnessClassifier::Knn(neighbours) => validate::cross_validate(
                matrix,
                &result.assignments,
                k,
                self.folds,
                self.seed,
                |tx, ty, sx| KnnClassifier::fit(tx, ty, k, *neighbours).predict(sx),
            ),
            RobustnessClassifier::RandomForest(config) => validate::cross_validate(
                matrix,
                &result.assignments,
                k,
                self.folds,
                self.seed,
                |tx, ty, sx| ada_mining::forest::RandomForest::fit(tx, ty, k, config).predict(sx),
            ),
        };
        KEvaluation {
            k,
            sse: result.sse,
            accuracy: cm.accuracy() * 100.0,
            avg_precision: cm.macro_precision() * 100.0,
            avg_recall: cm.macro_recall() * 100.0,
            overall_similarity,
        }
    }

    /// Runs the sweep and auto-selects K.
    ///
    /// # Panics
    /// Panics when `ks` is empty or any K exceeds the row count.
    pub fn run(&self, matrix: &DenseMatrix) -> OptimizerReport {
        self.run_with_control(matrix, &RunControl::new())
            .expect("a default RunControl never cancels or expires")
    }

    /// Runs the sweep under `control`: serial sweeps poll the cancel
    /// flag and deadline before each K evaluation; parallel sweeps poll
    /// before spawning and each worker re-checks the cancel flag before
    /// starting its evaluation (one in-flight evaluation per worker is
    /// the cancellation granularity).
    ///
    /// # Panics
    /// Panics when `ks` is empty or any K exceeds the row count.
    pub fn run_with_control(
        &self,
        matrix: &DenseMatrix,
        control: &RunControl,
    ) -> Result<OptimizerReport, PipelineError> {
        assert!(!self.ks.is_empty(), "no K values to evaluate");
        let evaluations: Vec<KEvaluation> = if self.parallel && self.ks.len() > 1 {
            control.checkpoint(PipelineStage::Optimize)?;
            // Split the budget across the K-level workers; each worker
            // drives the row-parallel kernel with its share.
            let row_threads = (self.resolved_budget() / self.ks.len()).max(1);
            let mut slots: Vec<Option<KEvaluation>> = vec![None; self.ks.len()];
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .ks
                    .iter()
                    .map(|&k| {
                        scope.spawn(move |_| {
                            if control.is_cancelled() {
                                return None;
                            }
                            // Sweep-point sub-spans may start on any
                            // worker thread; names are unique per K so
                            // observers pair start/end by name.
                            Some(control.span(
                                PipelineStage::Optimize,
                                &format!("sweep:k={k}"),
                                || self.evaluate_k_with_threads(matrix, k, row_threads, control),
                            ))
                        })
                    })
                    .collect();
                for (slot, handle) in slots.iter_mut().zip(handles) {
                    *slot = handle.join().expect("worker panicked");
                }
            })
            .expect("scope panicked");
            control.checkpoint(PipelineStage::Optimize)?;
            slots
                .into_iter()
                .map(|s| {
                    // A worker only skips its evaluation after observing
                    // the (one-way) cancel flag, which the checkpoint
                    // above already turned into an error.
                    s.ok_or(PipelineError::Cancelled {
                        stage: PipelineStage::Optimize,
                    })
                })
                .collect::<Result<_, _>>()?
        } else {
            self.ks
                .iter()
                .map(|&k| {
                    control.checkpoint(PipelineStage::Optimize)?;
                    Ok(
                        control.span(PipelineStage::Optimize, &format!("sweep:k={k}"), || {
                            self.evaluate_k_with_threads(matrix, k, self.resolved_budget(), control)
                        }),
                    )
                })
                .collect::<Result<_, _>>()?
        };

        // Two-stage selection mirroring the paper's Section IV-B logic:
        //
        // 1. SSE viability: "Based on the SSE index, good values for K
        //    are in the range from 8 to 20" — below the elbow, adding a
        //    cluster still buys a large SSE drop, so those K are
        //    under-clustered. The window starts at the smallest K whose
        //    forward per-unit relative improvement < `sse_elbow_tol`.
        // 2. "ADA-HEALTH automatically selects K … that corresponds to
        //    the best overall classification results" *within* that
        //    window. Ties break to smaller K (fewer, more significant
        //    clusters — the paper's stated preference in medicine).
        let mut sorted: Vec<&KEvaluation> = evaluations.iter().collect();
        sorted.sort_by_key(|e| e.k);
        let mut sse_window_start = sorted[0].k;
        for pair in sorted.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let per_unit = (a.sse - b.sse) / a.sse / (b.k - a.k) as f64;
            if per_unit < self.sse_elbow_tol {
                sse_window_start = a.k;
                break;
            }
            sse_window_start = b.k; // window collapses to the largest K
        }
        let viable: Vec<&KEvaluation> = sorted
            .iter()
            .copied()
            .filter(|e| e.k >= sse_window_start)
            .collect();
        let selected_k = viable
            .iter()
            .max_by(|a, b| {
                a.classification_score()
                    .partial_cmp(&b.classification_score())
                    .expect("finite scores")
                    .then_with(|| b.k.cmp(&a.k))
            })
            .expect("window always contains the largest K")
            .k;

        Ok(OptimizerReport {
            evaluations,
            selected_k,
            sse_window_start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_dataset::synthetic::{generate, SyntheticConfig};
    use ada_vsm::VsmBuilder;

    fn small_matrix() -> DenseMatrix {
        let log = generate(&SyntheticConfig::small(), 17);
        VsmBuilder::new().build(&log).matrix
    }

    #[test]
    fn sse_decreases_with_k() {
        let m = small_matrix();
        let opt = Optimizer::quick(vec![4, 8, 16]);
        let report = opt.run(&m);
        let sses: Vec<f64> = report.evaluations.iter().map(|e| e.sse).collect();
        assert!(
            sses[0] > sses[1] && sses[1] > sses[2],
            "SSE must decrease with K: {sses:?}"
        );
    }

    #[test]
    fn metrics_are_percentages() {
        let m = small_matrix();
        let report = Optimizer::quick(vec![4, 6]).run(&m);
        for e in &report.evaluations {
            assert!((0.0..=100.0).contains(&e.accuracy), "{e:?}");
            assert!((0.0..=100.0).contains(&e.avg_precision), "{e:?}");
            assert!((0.0..=100.0).contains(&e.avg_recall), "{e:?}");
            // Separable synthetic clusters: the tree should re-predict
            // labels far above chance.
            assert!(e.accuracy > 50.0, "{e:?}");
        }
    }

    #[test]
    fn selected_k_has_best_classification_score_in_window() {
        let m = small_matrix();
        let report = Optimizer::quick(vec![4, 8, 12, 20]).run(&m);
        let best = report
            .evaluations
            .iter()
            .filter(|e| e.k >= report.sse_window_start)
            .map(KEvaluation::classification_score)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (report.selected().classification_score() - best).abs() < 1e-12,
            "selection must maximize the combined score within the SSE window"
        );
        assert!(report.selected_k >= report.sse_window_start);
    }

    #[test]
    fn sse_window_reproduces_paper_logic() {
        // Feed the optimizer's selection logic the paper's own Table I
        // SSE curve: the window must open at K = 8 ("good values for K
        // are in the range from 8 to 20").
        let paper = [
            (6, 3098.32),
            (7, 2805.00),
            (8, 2550.00),
            (9, 2482.36),
            (10, 2205.00),
            (12, 2101.60),
            (15, 1917.20),
            (20, 1534.00),
        ];
        let tol = Optimizer::paper().sse_elbow_tol;
        let mut window_start = paper[0].0;
        for pair in paper.windows(2) {
            let ((ka, sa), (kb, sb)) = (pair[0], pair[1]);
            let per_unit = (sa - sb) / sa / (kb - ka) as f64;
            if per_unit < tol {
                window_start = ka;
                break;
            }
            window_start = kb;
        }
        assert_eq!(window_start, 8);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let m = small_matrix();
        let mut opt = Optimizer::quick(vec![3, 5, 7]);
        let serial = opt.run(&m);
        opt.parallel = true;
        let parallel = opt.run(&m);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn thread_budget_values_are_byte_identical() {
        let m = small_matrix();
        let base = Optimizer::quick(vec![3, 5]);
        let serial = base.run(&m);
        for budget in [1usize, 2, 5, 0] {
            let mut opt = base.clone();
            opt.parallel = true;
            opt.thread_budget = budget;
            assert_eq!(serial, opt.run(&m), "budget = {budget}");
        }
    }

    #[test]
    fn knn_classifier_recovers_labels_best() {
        // k-NN directly reuses the clustering geometry, so its accuracy
        // should match or beat the tree's on the same partition.
        let m = small_matrix();
        let mut knn_opt = Optimizer::quick(vec![6]);
        knn_opt.classifier = RobustnessClassifier::Knn(5);
        let knn = knn_opt.run(&m);
        let tree = Optimizer::quick(vec![6]).run(&m);
        assert!(
            knn.evaluations[0].accuracy >= tree.evaluations[0].accuracy - 5.0,
            "knn {} vs tree {}",
            knn.evaluations[0].accuracy,
            tree.evaluations[0].accuracy
        );
    }

    #[test]
    fn random_forest_classifier_works() {
        let m = small_matrix();
        let mut opt = Optimizer::quick(vec![4]);
        opt.classifier = RobustnessClassifier::RandomForest(ada_mining::forest::ForestConfig {
            num_trees: 10,
            ..Default::default()
        });
        let report = opt.run(&m);
        assert!(report.evaluations[0].accuracy > 50.0);
    }

    #[test]
    fn naive_bayes_classifier_works() {
        let m = small_matrix();
        let mut opt = Optimizer::quick(vec![4]);
        opt.classifier = RobustnessClassifier::NaiveBayes;
        let report = opt.run(&m);
        assert!(report.evaluations[0].accuracy > 30.0);
    }

    #[test]
    fn table_formatting_contains_all_rows() {
        let m = small_matrix();
        let report = Optimizer::quick(vec![4, 6]).run(&m);
        let table = report.format_table();
        assert!(table.contains("SSE"));
        assert!(table.contains("AVG Precision"));
        assert!(table.contains("<= selected"));
        assert_eq!(table.lines().count(), 3);
    }

    #[test]
    fn filtering_backend_matches_lloyd_metrics() {
        let m = small_matrix();
        let lloyd = Optimizer::quick(vec![6]).run(&m);
        let mut cfg = Optimizer::quick(vec![6]);
        cfg.backend = KMeansBackend::Filtering;
        let filtering = cfg.run(&m);
        // Same trajectory -> same assignments -> identical metrics (SSE
        // within float tolerance).
        let (a, b) = (&lloyd.evaluations[0], &filtering.evaluations[0]);
        assert!((a.sse - b.sse).abs() < 1e-6 * (1.0 + a.sse));
        assert_eq!(a.accuracy, b.accuracy);
    }
}
