//! Adaptive partial mining strategies.
//!
//! "To avoid the expensive and resource-consuming procedure of mining
//! the entire dataset when not necessary, adaptive partial mining
//! strategies need to be designed." The paper's preliminary
//! implementation — and its Section IV-B experiment — is the
//! [`HorizontalPartialMiner`]: K-means runs on incrementally larger
//! subsets of the *examination types*, chosen in decreasing frequency
//! order (20% → 40% → 100% of types, covering ≈ 70% / 85% / 100% of the
//! raw records), and the smallest subset whose overall similarity is
//! within ε (5%) of the full-data value is selected.
//!
//! The paper also names a second axis ("partial mining can reduce the
//! dataset along any dimension (vertical mining)"): the
//! [`VerticalPartialMiner`] grows a *patient* sample instead.
//!
//! Both miners can run their steps as a **warm-started ladder**
//! (`warm_start: true`): the growth steps are nested (feature prefixes
//! horizontally, patient-sample prefixes vertically), so each
//! `(K, restart)` chain seeds the next step's K-means from the previous
//! step's settled centroids — zero-padded into the wider feature space
//! on the horizontal axis — instead of re-initializing from scratch.
//! The full-data run becomes the last rung of the chain, and the total
//! Lloyd iterations typically drop substantially (the cheap subsets
//! pre-position the centroids).
//!
//! Warm starting is **off by default**: chaining initializations
//! correlates consecutive rungs' partitions, which biases the
//! similarity-vs-full estimate slightly upward and can admit a subset
//! that an *independent* clustering would reject. The cold default
//! reproduces the paper's experiment faithfully; enable `warm_start`
//! when throughput matters and validate that the selection is
//! unchanged (the `warm_start` integration tests assert exactly this
//! property). Every K-means run is driven through the row-parallel
//! Lloyd kernel (`threads`; 0 = one per core, byte-identical output
//! either way).

use ada_dataset::ExamLog;
use ada_metrics::cluster;
use ada_mining::kmeans::{pad_centroids, KMeans, KernelStats};
use ada_vsm::{DenseMatrix, VsmBuilder, Weighting};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::control::{PipelineError, PipelineStage, RunControl};

/// Result of one partial-mining step (one subset size).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepResult {
    /// Fraction of the growth axis included (exam types or patients).
    pub fraction: f64,
    /// Absolute number of included exam types (horizontal) or patients
    /// (vertical).
    pub included: usize,
    /// Fraction of raw records retained by this subset.
    pub row_coverage: f64,
    /// Per-K overall similarity: `(k, overall_similarity)`.
    pub per_k: Vec<(usize, f64)>,
    /// Per-K adjusted Rand index between this step's partition and the
    /// full-data partition at the same K (restart-paired mean); 1.0 on
    /// the full step by construction. Empty when not computed (the
    /// vertical miner's samples have incomparable supports).
    pub agreement_vs_full: Vec<(usize, f64)>,
    /// Total K-means iterations spent on this step, summed over every
    /// `(K, restart)` run — the cost side of the warm-start ledger.
    pub kmeans_iterations: usize,
}

impl StepResult {
    /// Mean overall similarity across the probed K values.
    pub fn mean_similarity(&self) -> f64 {
        if self.per_k.is_empty() {
            return 0.0;
        }
        self.per_k.iter().map(|&(_, s)| s).sum::<f64>() / self.per_k.len() as f64
    }

    /// Mean adjusted Rand agreement with the full-data partition, or
    /// `None` when agreement was not computed.
    pub fn mean_agreement(&self) -> Option<f64> {
        if self.agreement_vs_full.is_empty() {
            None
        } else {
            Some(
                self.agreement_vs_full.iter().map(|&(_, a)| a).sum::<f64>()
                    / self.agreement_vs_full.len() as f64,
            )
        }
    }
}

/// The report of an adaptive partial-mining run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialMiningReport {
    /// One entry per step, in growth order (last step = full data).
    pub steps: Vec<StepResult>,
    /// Index into `steps` of the selected (smallest acceptable) subset.
    pub selected: usize,
    /// The ε tolerance used (paper: 0.05).
    pub epsilon: f64,
}

impl PartialMiningReport {
    /// The selected step.
    pub fn selected_step(&self) -> &StepResult {
        &self.steps[self.selected]
    }

    /// Percentage difference of a step's mean similarity vs. full data.
    pub fn difference_vs_full(&self, step: usize) -> f64 {
        let full = self
            .steps
            .last()
            .expect("at least the full step exists")
            .mean_similarity();
        if full == 0.0 {
            return 0.0;
        }
        (full - self.steps[step].mean_similarity()).abs() / full
    }
}

/// Selects the smallest step whose mean similarity is within `epsilon`
/// (relative) of the final, full-data step.
fn select_step(steps: &[StepResult], epsilon: f64) -> usize {
    let full = steps.last().expect("non-empty steps").mean_similarity();
    if full == 0.0 {
        return steps.len() - 1;
    }
    steps
        .iter()
        .position(|s| (full - s.mean_similarity()).abs() / full <= epsilon)
        .unwrap_or(steps.len() - 1)
}

/// The paper's horizontal partial miner: grows the examination-type
/// subset along decreasing record frequency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HorizontalPartialMiner {
    /// Exam-type fractions to probe, ascending; 1.0 is appended when
    /// missing (the full-data reference run).
    pub fractions: Vec<f64>,
    /// K values each step is clustered at.
    pub ks: Vec<usize>,
    /// Relative similarity tolerance (paper: 0.05).
    pub epsilon: f64,
    /// VSM weighting (paper: raw counts).
    pub weighting: Weighting,
    /// L2-normalize patient rows before clustering, so the partition
    /// keys on the *mix* of examinations rather than raw visit volume.
    pub normalize: bool,
    /// K-means restarts per (step, K); the reported similarity is the
    /// restart mean, damping local-optimum noise so the ε comparison
    /// reflects the subset, not one lucky initialization.
    pub restarts: usize,
    /// Clustering seed.
    pub seed: u64,
    /// Seed each step's K-means from the previous step's settled
    /// centroids (zero-padded into the wider feature space) instead of
    /// re-initializing; the full-data run becomes the last rung of the
    /// chain. Off by default — see the module docs for the estimator
    /// bias this trades away.
    pub warm_start: bool,
    /// Row-level worker threads for every K-means run (0 = one per
    /// available core); output is byte-identical for every value.
    pub threads: usize,
}

impl Default for HorizontalPartialMiner {
    fn default() -> Self {
        Self {
            fractions: vec![0.2, 0.4, 1.0],
            ks: vec![8, 12, 16],
            epsilon: 0.05,
            weighting: Weighting::Count,
            normalize: true,
            restarts: 3,
            seed: 0,
            warm_start: false,
            threads: 0,
        }
    }
}

impl HorizontalPartialMiner {
    /// Runs the adaptive strategy.
    ///
    /// # Panics
    /// Panics when the log has no records or `ks` is empty/exceeds the
    /// patient count.
    pub fn run(&self, log: &ExamLog) -> PartialMiningReport {
        self.run_with_control(log, &RunControl::new())
            .expect("a default RunControl never cancels or expires")
    }

    /// Runs the adaptive strategy under `control`, polling the cancel
    /// flag and deadline before the reference clustering and before
    /// each growth step (the expensive units of work).
    ///
    /// # Panics
    /// Panics when the log has no records or `ks` is empty/exceeds the
    /// patient count.
    #[allow(clippy::needless_range_loop)] // restart-paired reference partitions
    pub fn run_with_control(
        &self,
        log: &ExamLog,
        control: &RunControl,
    ) -> Result<PartialMiningReport, PipelineError> {
        assert!(log.num_records() > 0, "cannot partial-mine an empty log");
        assert!(!self.ks.is_empty(), "need at least one K to probe");
        let mut fractions = self.fractions.clone();
        fractions.sort_by(|a, b| a.partial_cmp(b).expect("finite fractions"));
        if fractions.last().copied().unwrap_or(0.0) < 1.0 {
            fractions.push(1.0);
        }

        let order = log.exams_by_frequency();
        let freq = log.exam_frequencies();
        let total_records: usize = freq.iter().sum();
        let n_types = order.len();

        // The reference representation: every partition — whichever
        // feature subset it was *computed* on — is scored by its overall
        // similarity in the complete feature space. Scoring each subset
        // in its own space would inflate low-dimensional cosines and
        // make subsets incomparable; scoring in the full space directly
        // measures how well the cheap clustering approximates the
        // full-data structure (and yields the paper's observation that
        // similarity decreases as exam types are dropped).
        let full = VsmBuilder::new()
            .weighting(self.weighting)
            .normalize(self.normalize)
            .build(log);

        // The ladder: steps run in ascending-fraction order. With warm
        // starting, each (K, restart) chain seeds the next step from the
        // previous step's settled centroids — feature subsets are
        // frequency-order prefixes of one another, so prior centroid
        // coordinates keep their columns and newly added exam types
        // enter at zero. Assignments are collected per step so
        // agreement can be scored against the full-data partition once
        // the ladder tops out.
        let restarts = self.restarts.max(1);
        let mut carried: Vec<Vec<Option<DenseMatrix>>> = vec![vec![None; restarts]; self.ks.len()];
        struct RawStep {
            fraction: f64,
            included: usize,
            covered: usize,
            kmeans_iterations: usize,
            per_k: Vec<(usize, f64)>,
            /// `[ki][restart]` -> assignments.
            partitions: Vec<Vec<Vec<usize>>>,
        }
        let mut raw: Vec<RawStep> = Vec::with_capacity(fractions.len());
        for &fraction in &fractions {
            control.checkpoint(PipelineStage::PartialMining)?;
            // Each rung is a sub-span; rung names are unique within the
            // run (fractions are sorted and deduplicated by growth), so
            // an observer can pair start/end events by name. Kernel
            // counters aggregate over every (K, restart) run of the rung
            // and are emitted while the rung span is still open.
            let step = control.span(
                PipelineStage::PartialMining,
                &format!("rung:{fraction:.2}"),
                || -> Result<RawStep, PipelineError> {
                    let included = ((fraction * n_types as f64).ceil() as usize).clamp(1, n_types);
                    let features = order[..included].to_vec();
                    let covered: usize = features.iter().map(|e| freq[e.index()]).sum();
                    let is_full = included == n_types;
                    // A cold full step reuses the id-order reference
                    // matrix; a warm chain needs the frequency-order
                    // build so the carried centroids stay column-aligned.
                    // Similarity scoring is column-permutation invariant
                    // either way.
                    let owned_pv;
                    let matrix: &DenseMatrix = if is_full && !self.warm_start {
                        &full.matrix
                    } else {
                        owned_pv = VsmBuilder::new()
                            .weighting(self.weighting)
                            .normalize(self.normalize)
                            .features(features)
                            .build(log);
                        &owned_pv.matrix
                    };
                    let mut per_k = Vec::with_capacity(self.ks.len());
                    let mut partitions = Vec::with_capacity(self.ks.len());
                    let mut kmeans_iterations = 0usize;
                    let mut rung_stats = KernelStats::default();
                    for (ki, &k) in self.ks.iter().enumerate() {
                        let mut sim_acc = 0.0;
                        let mut k_parts = Vec::with_capacity(restarts);
                        for r in 0..restarts {
                            control.checkpoint(PipelineStage::PartialMining)?;
                            let seed = self.seed.wrapping_add(1_000 * r as u64);
                            let config = KMeans::new(k).seed(seed).threads(self.threads);
                            let (result, stats) = match carried[ki][r].take() {
                                Some(prev) => config.fit_from_with_stats(
                                    matrix,
                                    pad_centroids(&prev, matrix.num_cols()),
                                ),
                                None => config.fit_with_stats(matrix),
                            };
                            rung_stats.merge(&stats);
                            kmeans_iterations += result.iterations;
                            sim_acc +=
                                cluster::overall_similarity(&full.matrix, &result.assignments, k);
                            if self.warm_start {
                                carried[ki][r] = Some(result.centroids);
                            }
                            k_parts.push(result.assignments);
                        }
                        per_k.push((k, sim_acc / restarts as f64));
                        partitions.push(k_parts);
                    }
                    control.counters(PipelineStage::PartialMining, &rung_stats.as_pairs());
                    Ok(RawStep {
                        fraction,
                        included,
                        covered,
                        kmeans_iterations,
                        per_k,
                        partitions,
                    })
                },
            )?;
            raw.push(step);
        }

        // Agreement: restart-paired adjusted Rand index against the
        // ladder's own full-data partitions (the last rung).
        let full_partitions = &raw.last().expect("full step always runs").partitions;
        let steps: Vec<StepResult> = raw
            .iter()
            .map(|step| {
                let agreement = self
                    .ks
                    .iter()
                    .enumerate()
                    .map(|(ki, &k)| {
                        let mean = (0..restarts)
                            .map(|r| {
                                ada_metrics::adjusted_rand_index(
                                    &step.partitions[ki][r],
                                    &full_partitions[ki][r],
                                )
                            })
                            .sum::<f64>()
                            / restarts as f64;
                        (k, mean)
                    })
                    .collect();
                StepResult {
                    fraction: step.fraction,
                    included: step.included,
                    row_coverage: step.covered as f64 / total_records as f64,
                    per_k: step.per_k.clone(),
                    agreement_vs_full: agreement,
                    kmeans_iterations: step.kmeans_iterations,
                }
            })
            .collect();

        let selected = select_step(&steps, self.epsilon);
        Ok(PartialMiningReport {
            steps,
            selected,
            epsilon: self.epsilon,
        })
    }
}

/// Vertical partial miner: grows a seeded random *patient* sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerticalPartialMiner {
    /// Patient fractions to probe, ascending; 1.0 appended when missing.
    pub fractions: Vec<f64>,
    /// K values each step is clustered at.
    pub ks: Vec<usize>,
    /// Relative similarity tolerance.
    pub epsilon: f64,
    /// VSM weighting.
    pub weighting: Weighting,
    /// Sampling + clustering seed.
    pub seed: u64,
    /// Seed each step's K-means from the previous step's settled
    /// centroids (the feature space is constant along the patient axis,
    /// so no padding is needed). Off by default — see the module docs
    /// for the estimator bias this trades away.
    pub warm_start: bool,
    /// Row-level worker threads for every K-means run (0 = one per
    /// available core); output is byte-identical for every value.
    pub threads: usize,
}

impl Default for VerticalPartialMiner {
    fn default() -> Self {
        Self {
            fractions: vec![0.25, 0.5, 1.0],
            ks: vec![6, 8, 10],
            epsilon: 0.05,
            weighting: Weighting::Count,
            seed: 0,
            warm_start: false,
            threads: 0,
        }
    }
}

impl VerticalPartialMiner {
    /// Runs the adaptive strategy over patient samples.
    ///
    /// # Panics
    /// Panics when the log has no records or patients, or `ks` is empty.
    pub fn run(&self, log: &ExamLog) -> PartialMiningReport {
        assert!(log.num_records() > 0, "cannot partial-mine an empty log");
        assert!(log.num_patients() > 0, "no patients");
        assert!(!self.ks.is_empty(), "need at least one K to probe");
        let mut fractions = self.fractions.clone();
        fractions.sort_by(|a, b| a.partial_cmp(b).expect("finite fractions"));
        if fractions.last().copied().unwrap_or(0.0) < 1.0 {
            fractions.push(1.0);
        }

        // One seeded permutation; each step takes a prefix, so samples
        // are nested exactly like the horizontal miner's feature sets.
        let mut permutation: Vec<usize> = (0..log.num_patients()).collect();
        permutation.shuffle(&mut StdRng::seed_from_u64(self.seed));

        let pv = VsmBuilder::new().weighting(self.weighting).build(log);
        let per_patient_records: Vec<f64> = pv
            .matrix
            .rows_iter()
            .map(|row| row.iter().sum::<f64>())
            .collect();
        let total_records: f64 = match self.weighting {
            Weighting::Count => per_patient_records.iter().sum(),
            _ => log.num_records() as f64,
        };

        // Warm-start carry per probed K: samples are nested prefixes of
        // one permutation, so a smaller sample's centroids pre-position
        // the next rung (the feature space never changes on this axis).
        let mut carried: Vec<Option<DenseMatrix>> = vec![None; self.ks.len()];
        let steps: Vec<StepResult> = fractions
            .iter()
            .map(|&fraction| {
                let included = ((fraction * log.num_patients() as f64).ceil() as usize)
                    .clamp(1, log.num_patients());
                let sample = &permutation[..included];
                let matrix = pv.matrix.select_rows(sample);
                let row_coverage = match self.weighting {
                    Weighting::Count => {
                        sample.iter().map(|&p| per_patient_records[p]).sum::<f64>()
                            / total_records.max(1.0)
                    }
                    _ => included as f64 / log.num_patients() as f64,
                };
                let mut kmeans_iterations = 0usize;
                let per_k = self
                    .ks
                    .iter()
                    .enumerate()
                    .filter(|&(_, &k)| k <= matrix.num_rows())
                    .map(|(ki, &k)| {
                        let config = KMeans::new(k).seed(self.seed).threads(self.threads);
                        let result = match carried[ki].take() {
                            Some(prev) => config.fit_from(&matrix, prev),
                            None => config.fit(&matrix),
                        };
                        kmeans_iterations += result.iterations;
                        let sim = cluster::overall_similarity(&matrix, &result.assignments, k);
                        if self.warm_start {
                            carried[ki] = Some(result.centroids);
                        }
                        (k, sim)
                    })
                    .collect();
                StepResult {
                    fraction,
                    included,
                    row_coverage,
                    per_k,
                    agreement_vs_full: Vec::new(),
                    kmeans_iterations,
                }
            })
            .collect();

        let selected = select_step(&steps, self.epsilon);
        PartialMiningReport {
            steps,
            selected,
            epsilon: self.epsilon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_dataset::synthetic::{generate, SyntheticConfig};

    fn small_log() -> ExamLog {
        generate(&SyntheticConfig::small(), 11)
    }

    #[test]
    fn horizontal_steps_cover_paper_points() {
        let log = small_log();
        let report = HorizontalPartialMiner::default().run(&log);
        assert_eq!(report.steps.len(), 3);
        // Row coverage grows with the feature fraction and matches the
        // synthetic generator's calibration (~70% / ~85% / 100%).
        let cov: Vec<f64> = report.steps.iter().map(|s| s.row_coverage).collect();
        assert!(cov[0] < cov[1] && cov[1] < cov[2]);
        assert!((0.50..=0.72).contains(&cov[0]), "cov20 = {}", cov[0]);
        assert!((0.75..=0.90).contains(&cov[1]), "cov40 = {}", cov[1]);
        assert!((cov[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn horizontal_selects_within_epsilon() {
        let log = small_log();
        let report = HorizontalPartialMiner::default().run(&log);
        // The selected step must actually satisfy the tolerance.
        assert!(report.difference_vs_full(report.selected) <= report.epsilon + 1e-12);
        // And every earlier step must violate it (smallest acceptable).
        for earlier in 0..report.selected {
            assert!(report.difference_vs_full(earlier) > report.epsilon);
        }
    }

    #[test]
    fn similarity_decreases_with_fewer_exams_at_fixed_k() {
        // The paper: "For a fixed number of clusters, the overall
        // similarity decreases as the number of exams is reduced."
        let log = small_log();
        let report = HorizontalPartialMiner::default().run(&log);
        let sims: Vec<f64> = report.steps.iter().map(|s| s.mean_similarity()).collect();
        assert!(
            sims[0] < sims[2],
            "20% subset must not beat full data: {sims:?}"
        );
        assert!(
            sims[1] <= sims[2] + 0.01,
            "40% subset must not beat full data: {sims:?}"
        );
        // The paper's crossover: the 40%-of-types step is within the 5%
        // tolerance, the 20% step is not.
        assert!(report.difference_vs_full(0) > report.epsilon);
        assert!(report.difference_vs_full(1) <= report.epsilon);
        assert_eq!(report.selected, 1);
    }

    #[test]
    fn full_step_appended_when_missing() {
        let log = small_log();
        let report = HorizontalPartialMiner {
            fractions: vec![0.3],
            ks: vec![4],
            ..Default::default()
        }
        .run(&log);
        assert_eq!(report.steps.len(), 2);
        assert!((report.steps[1].fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vertical_miner_runs_and_selects() {
        let log = small_log();
        let report = VerticalPartialMiner::default().run(&log);
        assert_eq!(report.steps.len(), 3);
        assert!(report.selected < report.steps.len());
        let last = report.steps.last().unwrap();
        assert_eq!(last.included, log.num_patients());
        assert!((last.row_coverage - 1.0).abs() < 1e-9);
        // Nested samples: included counts strictly increase.
        assert!(report.steps[0].included < report.steps[1].included);
    }

    #[test]
    fn deterministic_given_seed() {
        let log = small_log();
        let a = HorizontalPartialMiner::default().run(&log);
        let b = HorizontalPartialMiner::default().run(&log);
        assert_eq!(a, b);
        let va = VerticalPartialMiner::default().run(&log);
        let vb = VerticalPartialMiner::default().run(&log);
        assert_eq!(va, vb);
    }

    #[test]
    #[should_panic(expected = "empty log")]
    fn rejects_empty_log() {
        let log = ExamLog::new(vec![], vec![]).unwrap();
        let _ = HorizontalPartialMiner::default().run(&log);
    }
}

#[cfg(test)]
mod agreement_tests {
    use super::*;
    use ada_dataset::synthetic::{generate, SyntheticConfig};

    #[test]
    fn agreement_is_one_on_full_step_and_grows_with_subset_size() {
        let log = generate(&SyntheticConfig::small(), 11);
        let report = HorizontalPartialMiner::default().run(&log);
        let agreements: Vec<f64> = report
            .steps
            .iter()
            .map(|s| s.mean_agreement().expect("horizontal miner computes ARI"))
            .collect();
        let full = *agreements.last().unwrap();
        assert!(
            (full - 1.0).abs() < 1e-9,
            "full step must agree with itself"
        );
        // The selected (acceptable) step approximates the full partition
        // substantially better than chance.
        assert!(
            agreements[report.selected] > 0.2,
            "selected-step agreement too low: {agreements:?}"
        );
        // Bigger subsets approximate the reference at least as well.
        assert!(
            agreements[0] <= agreements[report.selected] + 0.05,
            "agreement should not degrade with more features: {agreements:?}"
        );
    }

    #[test]
    fn vertical_miner_reports_no_agreement() {
        let log = generate(&SyntheticConfig::small(), 11);
        let report = VerticalPartialMiner::default().run(&log);
        assert!(report.steps.iter().all(|s| s.mean_agreement().is_none()));
    }
}
