//! Identification of viable end-goals.
//!
//! "The core and one of the most innovative contributions of the
//! ADA-HEALTH architecture": (i) a knowledge database of past sessions,
//! (ii) an algorithm to identify *viable* end-goals for a dataset, and
//! (iii) an algorithm to select end-goals *of interest* to a specific
//! user — "addressed again as a classification problem, thus, the model
//! is trained by previous user interactions".
//!
//! [`viability`] implements (ii) as a rule set over the
//! [`DatasetDescriptor`] ("a set of formal rules able to predict the
//! feasible analysis end-goals on a given dataset"); [`GoalInterestModel`]
//! implements (iii) as a decision tree over descriptor features trained
//! on past (dataset → chosen goal) interactions.

use ada_mining::tree::{DecisionTree, TreeConfig};
use ada_vsm::DenseMatrix;
use serde::{Deserialize, Serialize};

use crate::characterize::DatasetDescriptor;

/// The analysis end-goals of the paper's introduction: discovering
/// patient groups, commonly prescribed examinations, compliance/outcome
/// signals, drug/condition interactions, and resource planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EndGoal {
    /// "Discover groups of patients with similar clinical history"
    /// (clustering).
    ClusterPatients,
    /// "Identify medical examinations commonly prescribed by physicians"
    /// (frequent patterns).
    FrequentExamPatterns,
    /// "Identify which examinations/treatments have the highest patients
    /// compliance" (longitudinal pattern analysis).
    TreatmentCompliance,
    /// "Discover previously unknown interaction between drugs or medical
    /// conditions" (cross-group association rules).
    InteractionDiscovery,
    /// "Predicting and assessing the outcome of medical treatments"
    /// (supervised; needs outcome labels).
    OutcomePrediction,
    /// "Planning resource allocation and reduce costs" (volume
    /// statistics).
    ResourcePlanning,
}

impl EndGoal {
    /// All end-goals, in a stable order.
    pub const ALL: [EndGoal; 6] = [
        EndGoal::ClusterPatients,
        EndGoal::FrequentExamPatterns,
        EndGoal::TreatmentCompliance,
        EndGoal::InteractionDiscovery,
        EndGoal::OutcomePrediction,
        EndGoal::ResourcePlanning,
    ];

    /// Stable dense index within [`EndGoal::ALL`].
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|g| *g == self)
            .expect("every variant listed in ALL")
    }

    /// Parses the canonical [`EndGoal::name`] form.
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|g| g.name() == name)
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            EndGoal::ClusterPatients => "cluster-patients",
            EndGoal::FrequentExamPatterns => "frequent-exam-patterns",
            EndGoal::TreatmentCompliance => "treatment-compliance",
            EndGoal::InteractionDiscovery => "interaction-discovery",
            EndGoal::OutcomePrediction => "outcome-prediction",
            EndGoal::ResourcePlanning => "resource-planning",
        }
    }
}

impl std::fmt::Display for EndGoal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One goal's viability verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoalViability {
    /// The goal under test.
    pub goal: EndGoal,
    /// Whether the dataset supports the goal.
    pub viable: bool,
    /// Human-readable justification.
    pub reason: String,
}

/// Applies the formal viability rules to a dataset descriptor.
pub fn viability(d: &DatasetDescriptor) -> Vec<GoalViability> {
    let verdict = |goal, viable, reason: String| GoalViability {
        goal,
        viable,
        reason,
    };
    let s = &d.summary;
    EndGoal::ALL
        .iter()
        .map(|&goal| match goal {
            EndGoal::ClusterPatients => {
                let ok = s.num_patients >= 30 && s.distinct_exams_per_patient_mean >= 1.5;
                verdict(
                    goal,
                    ok,
                    format!(
                        "{} patients with {:.1} distinct exams each (needs ≥30 / ≥1.5)",
                        s.num_patients, s.distinct_exams_per_patient_mean
                    ),
                )
            }
            EndGoal::FrequentExamPatterns => {
                let ok =
                    s.distinct_exams_per_patient_mean >= 2.0 && d.frequent_pair_density >= 0.01;
                verdict(
                    goal,
                    ok,
                    format!(
                        "frequent-pair density {:.3} (needs ≥0.01 with ≥2 distinct exams/patient)",
                        d.frequent_pair_density
                    ),
                )
            }
            EndGoal::TreatmentCompliance => {
                let ok = s.records_per_patient_mean >= 5.0;
                verdict(
                    goal,
                    ok,
                    format!(
                        "{:.1} records/patient (longitudinal signal needs ≥5)",
                        s.records_per_patient_mean
                    ),
                )
            }
            EndGoal::InteractionDiscovery => {
                let ok = s.num_records >= 1_000 && s.exam_frequency_entropy >= 1.0;
                verdict(
                    goal,
                    ok,
                    format!(
                        "{} records, exam entropy {:.2} (needs ≥1000 / ≥1.0)",
                        s.num_records, s.exam_frequency_entropy
                    ),
                )
            }
            EndGoal::OutcomePrediction => verdict(
                goal,
                false,
                "examination logs carry no outcome labels; supervised goals need them".into(),
            ),
            EndGoal::ResourcePlanning => {
                let ok = s.num_records >= 500;
                verdict(
                    goal,
                    ok,
                    format!("{} records (volume statistics need ≥500)", s.num_records),
                )
            }
        })
        .collect()
}

/// A past interaction: descriptor features of a dataset and the goal the
/// user ultimately pursued (read back from K-DB feedback in the
/// pipeline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionExample {
    /// [`DatasetDescriptor::feature_vector`] of the session's dataset.
    pub features: Vec<f64>,
    /// The goal the user chose.
    pub goal: EndGoal,
}

/// The end-goal interest model: a decision tree over descriptor features
/// predicting which goal a user will choose.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoalInterestModel {
    tree: DecisionTree,
    num_features: usize,
}

impl GoalInterestModel {
    /// Minimum number of examples before training is allowed.
    pub const MIN_EXAMPLES: usize = 8;

    /// Trains the model from session history.
    ///
    /// Returns `None` with fewer than [`Self::MIN_EXAMPLES`] examples —
    /// "the larger the number of previous user interactions, the more
    /// accurate the classification model will be".
    pub fn train(examples: &[SessionExample]) -> Option<Self> {
        if examples.len() < Self::MIN_EXAMPLES {
            return None;
        }
        let num_features = examples[0].features.len();
        assert!(
            examples.iter().all(|e| e.features.len() == num_features),
            "inconsistent feature vectors"
        );
        let rows: Vec<Vec<f64>> = examples.iter().map(|e| e.features.clone()).collect();
        let labels: Vec<usize> = examples.iter().map(|e| e.goal.index()).collect();
        let matrix = DenseMatrix::from_rows(&rows);
        let tree = DecisionTree::fit(
            &matrix,
            &labels,
            EndGoal::ALL.len(),
            &TreeConfig {
                max_depth: 6,
                min_samples_leaf: 2,
                ..TreeConfig::default()
            },
        );
        Some(Self { tree, num_features })
    }

    /// Predicts the goal of interest for a dataset.
    ///
    /// # Panics
    /// Panics when the descriptor features have a different length than
    /// the training features.
    pub fn predict(&self, descriptor: &DatasetDescriptor) -> EndGoal {
        let features = descriptor.feature_vector();
        assert_eq!(features.len(), self.num_features, "feature mismatch");
        EndGoal::ALL[self.tree.predict_row(&features)]
    }
}

/// Ranks goals for a dataset: viable goals first, the model's predicted
/// goal (when a model exists) promoted to the top, non-viable goals
/// last with score 0.
pub fn rank_goals(
    descriptor: &DatasetDescriptor,
    model: Option<&GoalInterestModel>,
) -> Vec<(EndGoal, f64, GoalViability)> {
    let verdicts = viability(descriptor);
    let predicted = model.map(|m| m.predict(descriptor));
    let mut ranked: Vec<(EndGoal, f64, GoalViability)> = verdicts
        .into_iter()
        .map(|v| {
            let mut score = if v.viable { 0.5 } else { 0.0 };
            if v.viable {
                // Heuristic priors mirroring the paper's exploratory
                // preference: unsupervised exploratory goals first.
                score += match v.goal {
                    EndGoal::ClusterPatients => 0.3,
                    EndGoal::FrequentExamPatterns => 0.25,
                    EndGoal::InteractionDiscovery => 0.2,
                    EndGoal::TreatmentCompliance => 0.15,
                    EndGoal::ResourcePlanning => 0.1,
                    EndGoal::OutcomePrediction => 0.05,
                };
                if predicted == Some(v.goal) {
                    score += 1.0;
                }
            }
            (v.goal, score, v)
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite scores")
            .then_with(|| a.0.index().cmp(&b.0.index()))
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_dataset::synthetic::{generate, SyntheticConfig};

    fn descriptor() -> DatasetDescriptor {
        DatasetDescriptor::compute(&generate(&SyntheticConfig::small(), 5))
    }

    #[test]
    fn synthetic_cohort_supports_exploratory_goals() {
        let v = viability(&descriptor());
        let get = |goal: EndGoal| v.iter().find(|x| x.goal == goal).unwrap();
        assert!(get(EndGoal::ClusterPatients).viable);
        assert!(get(EndGoal::FrequentExamPatterns).viable);
        assert!(get(EndGoal::InteractionDiscovery).viable);
        assert!(
            !get(EndGoal::OutcomePrediction).viable,
            "no outcome labels in an exam log"
        );
    }

    #[test]
    fn tiny_dataset_blocks_clustering() {
        let log = generate(
            &SyntheticConfig {
                num_patients: 10,
                num_exam_types: 12,
                target_records: 60,
                ..SyntheticConfig::small()
            },
            1,
        );
        let d = DatasetDescriptor::compute(&log);
        let v = viability(&d);
        assert!(
            !v.iter()
                .find(|x| x.goal == EndGoal::ClusterPatients)
                .unwrap()
                .viable
        );
    }

    /// Synthetic session history: two archetypes with cleanly different
    /// descriptor features.
    fn history(n: usize) -> Vec<SessionExample> {
        let dims = DatasetDescriptor::feature_names().len();
        (0..n)
            .map(|i| {
                let mut features = vec![0.1; dims];
                if i % 2 == 0 {
                    features[5] = 0.9; // high sparsity -> clustering users
                    SessionExample {
                        features,
                        goal: EndGoal::ClusterPatients,
                    }
                } else {
                    features[5] = 0.2;
                    SessionExample {
                        features,
                        goal: EndGoal::FrequentExamPatterns,
                    }
                }
            })
            .collect()
    }

    #[test]
    fn model_needs_enough_history() {
        assert!(GoalInterestModel::train(&history(4)).is_none());
        assert!(GoalInterestModel::train(&history(10)).is_some());
    }

    #[test]
    fn model_learns_the_archetypes() {
        let model = GoalInterestModel::train(&history(20)).unwrap();
        let d = descriptor(); // sparse synthetic data -> clustering archetype
        assert!(d.sparsity() > 0.5);
        assert_eq!(model.predict(&d), EndGoal::ClusterPatients);
    }

    #[test]
    fn rank_puts_predicted_goal_first_and_nonviable_last() {
        let model = GoalInterestModel::train(&history(20)).unwrap();
        let d = descriptor();
        let ranked = rank_goals(&d, Some(&model));
        assert_eq!(ranked[0].0, EndGoal::ClusterPatients);
        assert!(ranked[0].1 > 1.0);
        let last = ranked.last().unwrap();
        assert!(!last.2.viable);
        assert_eq!(last.1, 0.0);
        // Without a model, ranking still works on viability + priors.
        let unranked = rank_goals(&d, None);
        assert!(unranked[0].2.viable);
    }

    #[test]
    fn goal_indices_stable() {
        for (i, g) in EndGoal::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
    }

    #[test]
    fn goal_name_round_trip() {
        for g in EndGoal::ALL {
            assert_eq!(EndGoal::parse(g.name()), Some(g));
        }
        assert_eq!(EndGoal::parse("bogus"), None);
    }
}
