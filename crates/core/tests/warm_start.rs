//! Warm-started partial-mining ladders: same selection, fewer Lloyd
//! iterations than the cold default (the ISSUE's acceptance property
//! for centroid carrying across nested subsets).

use ada_core::partial::{HorizontalPartialMiner, VerticalPartialMiner};
use ada_dataset::synthetic::{generate, SyntheticConfig};

#[test]
fn horizontal_warm_ladder_spends_fewer_total_iterations_with_same_selection() {
    let log = generate(&SyntheticConfig::small(), 11);
    let warm = HorizontalPartialMiner {
        warm_start: true,
        ..Default::default()
    }
    .run(&log);
    let cold = HorizontalPartialMiner::default().run(&log);

    // Same adaptive outcome under the same 5% ε: the warm ladder must
    // not change which subset the strategy settles on.
    assert_eq!(warm.epsilon, 0.05);
    assert_eq!(warm.selected, cold.selected, "subset selection changed");
    assert_eq!(warm.selected_step().included, cold.selected_step().included);

    // The first rung is cold in both ladders (nothing to carry yet).
    assert_eq!(
        warm.steps[0].kmeans_iterations,
        cold.steps[0].kmeans_iterations
    );

    // Carried centroids must pay for themselves: strictly fewer Lloyd
    // iterations over the whole ladder.
    let total = |r: &ada_core::partial::PartialMiningReport| -> usize {
        r.steps.iter().map(|s| s.kmeans_iterations).sum()
    };
    let (warm_iters, cold_iters) = (total(&warm), total(&cold));
    assert!(
        warm_iters < cold_iters,
        "warm ladder must converge in fewer total iterations: warm = {warm_iters}, cold = {cold_iters}"
    );

    // And the cheap runs must still honour the ε guarantee.
    assert!(warm.difference_vs_full(warm.selected) <= warm.epsilon + 1e-12);
}

#[test]
fn vertical_warm_ladder_spends_fewer_total_iterations() {
    let log = generate(&SyntheticConfig::small(), 11);
    let warm = VerticalPartialMiner {
        warm_start: true,
        ..Default::default()
    }
    .run(&log);
    let cold = VerticalPartialMiner::default().run(&log);
    let total = |r: &ada_core::partial::PartialMiningReport| -> usize {
        r.steps.iter().map(|s| s.kmeans_iterations).sum()
    };
    assert!(
        total(&warm) < total(&cold),
        "warm = {}, cold = {}",
        total(&warm),
        total(&cold)
    );
}
