//! Property tests: engine-layer invariants.

use ada_core::annotator::SimulatedPhysician;
use ada_core::goals::{self, GoalInterestModel, SessionExample};
use ada_core::rank::{KnowledgeItem, KnowledgeRanker};
use ada_kdb::schema::Interestingness;
use proptest::prelude::*;

fn knowledge_items() -> impl Strategy<Value = Vec<KnowledgeItem>> {
    prop::collection::vec(
        (
            0u64..10_000,
            prop::bool::ANY,
            0.0f64..1.0,
            0.0f64..1.0,
            0.0f64..8.0,
        )
            .prop_map(|(id, is_cluster, a, b, c)| {
                if is_cluster {
                    KnowledgeItem::cluster(id, format!("c{id}"), a, b)
                } else {
                    KnowledgeItem::pattern(id, format!("p{id}"), a, b, c)
                }
            }),
        1..20,
    )
}

proptest! {
    #[test]
    fn ranking_is_a_permutation_with_finite_scores(items in knowledge_items()) {
        let ranker = KnowledgeRanker::new();
        let ranked = ranker.rank(&items);
        prop_assert_eq!(ranked.len(), items.len());
        // Every input item appears exactly once.
        let mut seen: Vec<u64> = ranked.iter().map(|i| i.id).collect();
        seen.sort_unstable();
        let mut expected: Vec<u64> = items.iter().map(|i| i.id).collect();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected);
        // Scores are finite and non-increasing along the ranking.
        let scores: Vec<f64> = ranked.iter().map(|i| ranker.score(i)).collect();
        prop_assert!(scores.iter().all(|s| s.is_finite()));
        for w in scores.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn feedback_never_breaks_ranking(
        items in knowledge_items(),
        labels in prop::collection::vec(0u8..3, 0..30),
    ) {
        let mut ranker = KnowledgeRanker::new();
        for (i, &l) in labels.iter().enumerate() {
            let item = &items[i % items.len()];
            let label = match l {
                0 => Interestingness::Low,
                1 => Interestingness::Medium,
                _ => Interestingness::High,
            };
            ranker.record_feedback(item, label);
        }
        prop_assert_eq!(ranker.feedback_count(), labels.len());
        let ranked = ranker.rank(&items);
        prop_assert_eq!(ranked.len(), items.len());
        prop_assert!(items.iter().all(|i| ranker.score(i).is_finite()));
    }

    #[test]
    fn annotator_is_deterministic_and_total(
        seed in 0u64..1000,
        noise in 0.0f64..1.0,
        support in 0.0f64..1.0,
        confidence in 0.0f64..1.0,
        lift in 0.0f64..10.0,
    ) {
        let mut a = SimulatedPhysician::new(seed, noise, None);
        let mut b = SimulatedPhysician::new(seed, noise, None);
        let la = a.label_pattern(support, confidence, lift, &[]);
        let lb = b.label_pattern(support, confidence, lift, &[]);
        prop_assert_eq!(la, lb);
        // Cluster labels are total too.
        let _ = a.label_cluster(support, confidence, &[]);
    }

    #[test]
    fn goal_model_predictions_stay_in_catalogue(
        examples in prop::collection::vec(
            (
                prop::collection::vec(0.0f64..1.0, 21),
                0usize..goals::EndGoal::ALL.len(),
            )
                .prop_map(|(features, g)| SessionExample {
                    features,
                    goal: goals::EndGoal::ALL[g],
                }),
            8..24,
        ),
    ) {
        // 21 = descriptor feature count (11 scalars + 10 group shares).
        if let Some(model) = GoalInterestModel::train(&examples) {
            // Predict on a real descriptor: must be a catalogue goal and
            // must not panic.
            use ada_core::characterize::DatasetDescriptor;
            use ada_dataset::synthetic::{generate, SyntheticConfig};
            let log = generate(
                &SyntheticConfig {
                    num_patients: 40,
                    num_exam_types: 12,
                    target_records: 300,
                    ..SyntheticConfig::small()
                },
                1,
            );
            let d = DatasetDescriptor::compute(&log);
            let predicted = model.predict(&d);
            prop_assert!(goals::EndGoal::ALL.contains(&predicted));
        }
    }

    #[test]
    fn viability_reasons_are_always_given(
        patients in 1usize..60,
        exams in 10usize..20,
        records in 10usize..500,
    ) {
        use ada_core::characterize::DatasetDescriptor;
        use ada_dataset::synthetic::{generate, SyntheticConfig};
        let log = generate(
            &SyntheticConfig {
                num_patients: patients,
                num_exam_types: exams,
                target_records: records,
                ..SyntheticConfig::small()
            },
            7,
        );
        let d = DatasetDescriptor::compute(&log);
        let verdicts = goals::viability(&d);
        prop_assert_eq!(verdicts.len(), goals::EndGoal::ALL.len());
        for v in &verdicts {
            prop_assert!(!v.reason.is_empty());
        }
        // Ranking respects viability: non-viable goals score 0.
        let ranked = goals::rank_goals(&d, None);
        for (_, score, verdict) in &ranked {
            if !verdict.viable {
                prop_assert_eq!(*score, 0.0);
            } else {
                prop_assert!(*score > 0.0);
            }
        }
    }
}
