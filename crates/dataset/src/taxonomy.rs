//! Three-level examination taxonomy.
//!
//! The paper's pattern-mining component builds on MeTA (Antonelli et al.,
//! ACM TIST 2015), which characterizes medical treatments *at different
//! abstraction levels*. We model the standard three-level hierarchy:
//!
//! ```text
//! level 0: examination type   (leaf, e.g. "Glycated hemoglobin")
//! level 1: condition group    (e.g. GlycemicControl, Cardiovascular)
//! level 2: clinical domain    (e.g. Laboratory, Specialist)
//! ```
//!
//! `ada-mining`'s taxonomy-aware itemset miner generalizes items upward
//! through this hierarchy when leaf-level support is too low.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::record::{ExamType, ExamTypeId};

/// Mid-level taxonomy node: the medical condition a group of exams
/// monitors or diagnoses. The variants mirror the complication spectrum
/// the paper mentions for overt diabetes (regular checkups plus specific
/// diagnostic tests for complications of varying severity, e.g.
/// cardiovascular complications and blindness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ConditionGroup {
    /// Routine diabetes follow-up: glucose, HbA1c, standard visits.
    GlycemicControl,
    /// General blood work and biochemistry panels.
    GeneralLab,
    /// Heart and vessel complications (ECG, echo, stress tests…).
    Cardiovascular,
    /// Diabetic retinopathy and vision loss work-ups.
    Ophthalmic,
    /// Diabetic nephropathy: renal function monitoring.
    Renal,
    /// Peripheral and autonomic neuropathy assessments.
    Neurological,
    /// Diabetic foot: vascular and wound care exams.
    Podiatric,
    /// Dyslipidemia monitoring.
    Lipid,
    /// General imaging (ultrasound, radiography…).
    Imaging,
    /// Other specialist referrals and rare diagnostics.
    Specialist,
}

impl ConditionGroup {
    /// All condition groups, in a stable order.
    pub const ALL: [ConditionGroup; 10] = [
        ConditionGroup::GlycemicControl,
        ConditionGroup::GeneralLab,
        ConditionGroup::Cardiovascular,
        ConditionGroup::Ophthalmic,
        ConditionGroup::Renal,
        ConditionGroup::Neurological,
        ConditionGroup::Podiatric,
        ConditionGroup::Lipid,
        ConditionGroup::Imaging,
        ConditionGroup::Specialist,
    ];

    /// The top-level clinical domain this group belongs to.
    pub fn domain(self) -> Domain {
        match self {
            ConditionGroup::GlycemicControl => Domain::Routine,
            ConditionGroup::GeneralLab | ConditionGroup::Lipid | ConditionGroup::Renal => {
                Domain::Laboratory
            }
            ConditionGroup::Imaging => Domain::Imaging,
            ConditionGroup::Cardiovascular
            | ConditionGroup::Ophthalmic
            | ConditionGroup::Neurological
            | ConditionGroup::Podiatric
            | ConditionGroup::Specialist => Domain::Specialist,
        }
    }

    /// Stable dense index of this group within [`ConditionGroup::ALL`].
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|g| *g == self)
            .expect("every variant is listed in ALL")
    }
}

impl fmt::Display for ConditionGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConditionGroup::GlycemicControl => "glycemic-control",
            ConditionGroup::GeneralLab => "general-lab",
            ConditionGroup::Cardiovascular => "cardiovascular",
            ConditionGroup::Ophthalmic => "ophthalmic",
            ConditionGroup::Renal => "renal",
            ConditionGroup::Neurological => "neurological",
            ConditionGroup::Podiatric => "podiatric",
            ConditionGroup::Lipid => "lipid",
            ConditionGroup::Imaging => "imaging",
            ConditionGroup::Specialist => "specialist",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for ConditionGroup {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::ALL
            .iter()
            .copied()
            .find(|g| g.to_string() == s)
            .ok_or_else(|| format!("unknown condition group {s:?}"))
    }
}

/// Top-level taxonomy node: the broad clinical domain of an exam.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Scheduled diabetes follow-up activity.
    Routine,
    /// Laboratory tests on biological samples.
    Laboratory,
    /// Diagnostic imaging.
    Imaging,
    /// Specialist consultations and instrumental exams.
    Specialist,
}

impl Domain {
    /// All domains, in a stable order.
    pub const ALL: [Domain; 4] = [
        Domain::Routine,
        Domain::Laboratory,
        Domain::Imaging,
        Domain::Specialist,
    ];

    /// Stable dense index of this domain within [`Domain::ALL`].
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|d| *d == self)
            .expect("every variant is listed in ALL")
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Domain::Routine => "routine",
            Domain::Laboratory => "laboratory",
            Domain::Imaging => "imaging",
            Domain::Specialist => "specialist",
        };
        f.write_str(s)
    }
}

/// A materialized taxonomy over a concrete exam catalog: maps every
/// exam-type id to its condition group and clinical domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Taxonomy {
    groups: Vec<ConditionGroup>,
}

impl Taxonomy {
    /// Builds the taxonomy from an exam catalog (indexed by exam-type id).
    pub fn from_catalog(catalog: &[ExamType]) -> Self {
        Self {
            groups: catalog.iter().map(|e| e.group).collect(),
        }
    }

    /// Number of leaf exam types covered.
    pub fn num_exams(&self) -> usize {
        self.groups.len()
    }

    /// The condition group of an exam type, or `None` for out-of-range ids.
    pub fn group_of(&self, exam: ExamTypeId) -> Option<ConditionGroup> {
        self.groups.get(exam.index()).copied()
    }

    /// The clinical domain of an exam type, or `None` for out-of-range ids.
    pub fn domain_of(&self, exam: ExamTypeId) -> Option<Domain> {
        self.group_of(exam).map(ConditionGroup::domain)
    }

    /// All exam-type ids belonging to the given condition group.
    pub fn exams_in_group(&self, group: ConditionGroup) -> Vec<ExamTypeId> {
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, g)| **g == group)
            .map(|(i, _)| ExamTypeId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_group_has_a_domain() {
        for g in ConditionGroup::ALL {
            let _ = g.domain(); // must not panic
        }
    }

    #[test]
    fn group_indices_are_dense_and_stable() {
        for (i, g) in ConditionGroup::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
        for (i, d) in Domain::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
    }

    #[test]
    fn group_display_parse_round_trip() {
        for g in ConditionGroup::ALL {
            let parsed: ConditionGroup = g.to_string().parse().unwrap();
            assert_eq!(parsed, g);
        }
        assert!("bogus".parse::<ConditionGroup>().is_err());
    }

    #[test]
    fn taxonomy_lookups() {
        let catalog = vec![
            ExamType::new(ExamTypeId(0), "HbA1c", ConditionGroup::GlycemicControl),
            ExamType::new(ExamTypeId(1), "ECG", ConditionGroup::Cardiovascular),
            ExamType::new(ExamTypeId(2), "Fundus exam", ConditionGroup::Ophthalmic),
        ];
        let tax = Taxonomy::from_catalog(&catalog);
        assert_eq!(tax.num_exams(), 3);
        assert_eq!(
            tax.group_of(ExamTypeId(1)),
            Some(ConditionGroup::Cardiovascular)
        );
        assert_eq!(tax.domain_of(ExamTypeId(0)), Some(Domain::Routine));
        assert_eq!(tax.group_of(ExamTypeId(9)), None);
        assert_eq!(
            tax.exams_in_group(ConditionGroup::Ophthalmic),
            vec![ExamTypeId(2)]
        );
    }
}
