//! Raw summary statistics over an [`ExamLog`].
//!
//! These are the building blocks of ADA-HEALTH's *data characterization*
//! component: the paper argues that medical logs are inherently sparse
//! with long-tailed, variable distributions, and that such descriptors
//! must drive transformation selection and partial mining. The
//! higher-level descriptor object lives in `ada-core::characterize`; this
//! module computes the underlying numbers.

use serde::{Deserialize, Serialize};

use crate::dataset::ExamLog;

/// Aggregate statistics of an examination log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogSummary {
    /// Number of patients in the registry.
    pub num_patients: usize,
    /// Number of exam types in the catalog.
    pub num_exam_types: usize,
    /// Number of examination records.
    pub num_records: usize,
    /// Mean records per patient.
    pub records_per_patient_mean: f64,
    /// Standard deviation of records per patient.
    pub records_per_patient_std: f64,
    /// Mean number of *distinct* exam types per patient.
    pub distinct_exams_per_patient_mean: f64,
    /// Fraction of zero cells in the patient × exam-type count matrix —
    /// the "inherent sparseness" the paper calls out.
    pub sparsity: f64,
    /// Gini coefficient of the exam-type frequency distribution
    /// (0 = uniform usage, → 1 = extremely long-tailed).
    pub exam_frequency_gini: f64,
    /// Shannon entropy (nats) of the exam-type frequency distribution.
    pub exam_frequency_entropy: f64,
    /// Minimum and maximum patient age, when patients exist.
    pub age_range: Option<(u16, u16)>,
}

/// Computes the full [`LogSummary`] for a log.
pub fn summarize(log: &ExamLog) -> LogSummary {
    let n_p = log.num_patients();
    let n_e = log.num_exam_types();
    let n_r = log.num_records();

    let mut per_patient = vec![0usize; n_p];
    let mut distinct = vec![0usize; n_p];
    {
        let counts = log.patient_exam_counts();
        for (p, row) in counts.iter().enumerate() {
            per_patient[p] = row.iter().map(|&c| c as usize).sum();
            distinct[p] = row.iter().filter(|&&c| c > 0).count();
        }
    }

    let freq = log.exam_frequencies();
    let nonzero_cells: usize = distinct.iter().sum();
    let cells = n_p * n_e;

    LogSummary {
        num_patients: n_p,
        num_exam_types: n_e,
        num_records: n_r,
        records_per_patient_mean: mean_usize(&per_patient),
        records_per_patient_std: std_usize(&per_patient),
        distinct_exams_per_patient_mean: mean_usize(&distinct),
        sparsity: if cells == 0 {
            0.0
        } else {
            1.0 - nonzero_cells as f64 / cells as f64
        },
        exam_frequency_gini: gini(&freq),
        exam_frequency_entropy: entropy(&freq),
        age_range: log
            .patients()
            .iter()
            .map(|p| p.age)
            .fold(None, |acc, age| match acc {
                None => Some((age, age)),
                Some((lo, hi)) => Some((lo.min(age), hi.max(age))),
            }),
    }
}

/// Cumulative record coverage of the top-`k` most frequent exam types,
/// for every `k` from 0 to the catalog size.
///
/// `coverage_curve(log)[k]` is the fraction of raw records explained by
/// the `k` most frequent exam types. The paper's headline observation —
/// 20% of exam types ≈ 70% of rows, 40% ≈ 85% — is read directly off this
/// curve, and the adaptive horizontal partial miner walks along it.
pub fn coverage_curve(log: &ExamLog) -> Vec<f64> {
    let freq = log.exam_frequencies();
    let total: usize = freq.iter().sum();
    let mut sorted = freq;
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut curve = Vec::with_capacity(sorted.len() + 1);
    curve.push(0.0);
    let mut acc = 0usize;
    for f in sorted {
        acc += f;
        curve.push(if total == 0 {
            0.0
        } else {
            acc as f64 / total as f64
        });
    }
    curve
}

/// Fraction of records covered by the top `fraction` (0..=1) of exam
/// types, interpolating the integer coverage curve at the nearest rank.
pub fn coverage_at_fraction(log: &ExamLog, fraction: f64) -> f64 {
    let curve = coverage_curve(log);
    let n = curve.len() - 1;
    if n == 0 {
        return 0.0;
    }
    let k = (fraction.clamp(0.0, 1.0) * n as f64).round() as usize;
    curve[k.min(n)]
}

/// Gini coefficient of a non-negative count vector. Returns 0 for empty
/// or all-zero input.
pub fn gini(counts: &[usize]) -> f64 {
    let n = counts.len();
    let total: usize = counts.iter().sum();
    if n == 0 || total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("counts are finite"));
    // G = (2 * sum_i i*x_(i) / (n * sum x)) - (n + 1)/n, with 1-based i.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Shannon entropy (nats) of a count vector, treating counts as an
/// unnormalized probability distribution. Returns 0 for empty/all-zero.
pub fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / t;
            -p * p.ln()
        })
        .sum()
}

fn mean_usize(v: &[usize]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<usize>() as f64 / v.len() as f64
    }
}

fn std_usize(v: &[usize]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean_usize(v);
    let var = v.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / v.len() as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Date;
    use crate::record::{ExamRecord, ExamType, ExamTypeId, Patient, PatientId};
    use crate::taxonomy::ConditionGroup;

    fn log_with(rows: &[(u32, u32)]) -> ExamLog {
        let np = rows.iter().map(|r| r.0).max().unwrap_or(0) + 1;
        let ne = rows.iter().map(|r| r.1).max().unwrap_or(0) + 1;
        let patients = (0..np)
            .map(|i| Patient::new(PatientId(i), 50).unwrap())
            .collect();
        let catalog = (0..ne)
            .map(|i| {
                ExamType::new(
                    ExamTypeId(i),
                    format!("exam-{i}"),
                    ConditionGroup::GeneralLab,
                )
            })
            .collect();
        let mut log = ExamLog::new(patients, catalog).unwrap();
        let d = Date::new(2015, 1, 1).unwrap();
        for &(p, e) in rows {
            log.push_record(ExamRecord::new(PatientId(p), ExamTypeId(e), d))
                .unwrap();
        }
        log
    }

    #[test]
    fn summary_basic_counts() {
        let log = log_with(&[(0, 0), (0, 0), (0, 1), (1, 0)]);
        let s = summarize(&log);
        assert_eq!(s.num_patients, 2);
        assert_eq!(s.num_exam_types, 2);
        assert_eq!(s.num_records, 4);
        assert!((s.records_per_patient_mean - 2.0).abs() < 1e-12);
        assert!((s.distinct_exams_per_patient_mean - 1.5).abs() < 1e-12);
        // Non-zero cells: (0,0),(0,1),(1,0) => 3 of 4.
        assert!((s.sparsity - 0.25).abs() < 1e-12);
        assert_eq!(s.age_range, Some((50, 50)));
    }

    #[test]
    fn gini_uniform_is_zero() {
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-12);
    }

    #[test]
    fn gini_concentrated_is_high() {
        let g = gini(&[100, 0, 0, 0]);
        assert!(g > 0.7, "gini = {g}");
    }

    #[test]
    fn gini_edge_cases() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
    }

    #[test]
    fn entropy_uniform_is_log_n() {
        let h = entropy(&[10, 10, 10, 10]);
        assert!((h - 4f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn entropy_degenerate_is_zero() {
        assert_eq!(entropy(&[42]), 0.0);
        assert_eq!(entropy(&[]), 0.0);
    }

    #[test]
    fn coverage_curve_monotone_and_normalized() {
        let log = log_with(&[(0, 0), (0, 0), (0, 0), (0, 1), (1, 2)]);
        let curve = coverage_curve(&log);
        assert_eq!(curve.len(), 4); // 3 exam types + the leading 0
        assert_eq!(curve[0], 0.0);
        assert!((curve[3] - 1.0).abs() < 1e-12);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // Top-1 of 3 exam types covers 3/5 of records.
        assert!((curve[1] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn coverage_at_fraction_interpolates_rank() {
        let log = log_with(&[(0, 0), (0, 0), (0, 0), (0, 1), (1, 2)]);
        assert!((coverage_at_fraction(&log, 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(coverage_at_fraction(&log, 0.0), 0.0);
        // 1/3 of exam types -> rank 1 -> 60% of rows.
        assert!((coverage_at_fraction(&log, 0.334) - 0.6).abs() < 1e-12);
    }
}
