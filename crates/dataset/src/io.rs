//! CSV import/export of examination logs.
//!
//! A log is persisted as three CSV files — `patients.csv`, `catalog.csv`
//! and `records.csv` — mirroring one way hospital extracts are
//! delivered: as periodic whole-cohort snapshot dumps. The writer/reader
//! pair is round-trip tested; a minimal CSV quoting scheme (RFC-4180
//! style double quotes) is implemented by hand to keep the crate
//! dependency-free.
//!
//! Snapshot loading is *not* the only ingestion path any more. Live
//! feeds that deliver exam records one at a time (or in small batches,
//! possibly out of timestamp order) enter through the streaming layer
//! instead: [`timeline::StreamOrder`](crate::timeline::StreamOrder)
//! models such a feed from an existing log, and the `ada-stream` crate
//! ingests it incrementally — bounded reorder buffer, watermark-driven
//! window closes, per-patient vectors updated in place — without ever
//! materializing a whole-cohort snapshot. Use this module for bulk
//! import/export and archival; use `ada-stream` when records arrive
//! continuously.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::dataset::ExamLog;
use crate::date::Date;
use crate::error::DatasetError;
use crate::record::{ExamRecord, ExamType, ExamTypeId, Patient, PatientId};
use crate::taxonomy::ConditionGroup;

/// Quotes a CSV field when needed (commas, quotes, newlines).
fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Splits one CSV line into fields, honouring double-quote escaping.
fn split_line(line: &str, line_no: usize) -> Result<Vec<String>, DatasetError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cur.push(c),
            }
        } else {
            match c {
                '"' if cur.is_empty() => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                '"' => {
                    return Err(DatasetError::Csv(
                        line_no,
                        "stray quote inside unquoted field".to_owned(),
                    ))
                }
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(DatasetError::Csv(line_no, "unterminated quote".to_owned()));
    }
    fields.push(cur);
    Ok(fields)
}

/// Writes `patients.csv` content (`id,age` with a header).
pub fn write_patients<W: Write>(w: &mut W, patients: &[Patient]) -> Result<(), DatasetError> {
    writeln!(w, "patient_id,age")?;
    for p in patients {
        writeln!(w, "{},{}", p.id.0, p.age)?;
    }
    Ok(())
}

/// Reads `patients.csv` content.
pub fn read_patients<R: Read>(r: R) -> Result<Vec<Patient>, DatasetError> {
    let reader = BufReader::new(r);
    let mut patients = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 || line.is_empty() {
            continue; // header / trailing newline
        }
        let line_no = i + 1;
        let fields = split_line(&line, line_no)?;
        if fields.len() != 2 {
            return Err(DatasetError::Csv(
                line_no,
                format!("expected 2 fields, got {}", fields.len()),
            ));
        }
        let id: u32 = fields[0]
            .parse()
            .map_err(|_| DatasetError::Csv(line_no, format!("bad patient id {:?}", fields[0])))?;
        let age: u16 = fields[1]
            .parse()
            .map_err(|_| DatasetError::Csv(line_no, format!("bad age {:?}", fields[1])))?;
        patients.push(Patient::new(PatientId(id), age)?);
    }
    Ok(patients)
}

/// Writes `catalog.csv` content (`id,name,group` with a header).
pub fn write_catalog<W: Write>(w: &mut W, catalog: &[ExamType]) -> Result<(), DatasetError> {
    writeln!(w, "exam_id,name,group")?;
    for e in catalog {
        writeln!(w, "{},{},{}", e.id.0, quote(&e.name), e.group)?;
    }
    Ok(())
}

/// Reads `catalog.csv` content.
pub fn read_catalog<R: Read>(r: R) -> Result<Vec<ExamType>, DatasetError> {
    let reader = BufReader::new(r);
    let mut catalog = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 || line.is_empty() {
            continue;
        }
        let line_no = i + 1;
        let fields = split_line(&line, line_no)?;
        if fields.len() != 3 {
            return Err(DatasetError::Csv(
                line_no,
                format!("expected 3 fields, got {}", fields.len()),
            ));
        }
        let id: u32 = fields[0]
            .parse()
            .map_err(|_| DatasetError::Csv(line_no, format!("bad exam id {:?}", fields[0])))?;
        let group: ConditionGroup = fields[2]
            .parse()
            .map_err(|e: String| DatasetError::Csv(line_no, e))?;
        catalog.push(ExamType::new(ExamTypeId(id), fields[1].clone(), group));
    }
    Ok(catalog)
}

/// Writes `records.csv` content (`patient_id,exam_id,date` with a header).
pub fn write_records<W: Write>(w: &mut W, records: &[ExamRecord]) -> Result<(), DatasetError> {
    writeln!(w, "patient_id,exam_id,date")?;
    for r in records {
        writeln!(w, "{},{},{}", r.patient.0, r.exam.0, r.date)?;
    }
    Ok(())
}

/// Reads `records.csv` content.
pub fn read_records<R: Read>(r: R) -> Result<Vec<ExamRecord>, DatasetError> {
    let reader = BufReader::new(r);
    let mut records = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 || line.is_empty() {
            continue;
        }
        let line_no = i + 1;
        let fields = split_line(&line, line_no)?;
        if fields.len() != 3 {
            return Err(DatasetError::Csv(
                line_no,
                format!("expected 3 fields, got {}", fields.len()),
            ));
        }
        let patient: u32 = fields[0]
            .parse()
            .map_err(|_| DatasetError::Csv(line_no, format!("bad patient id {:?}", fields[0])))?;
        let exam: u32 = fields[1]
            .parse()
            .map_err(|_| DatasetError::Csv(line_no, format!("bad exam id {:?}", fields[1])))?;
        let date: Date = fields[2]
            .parse()
            .map_err(|_| DatasetError::Csv(line_no, format!("bad date {:?}", fields[2])))?;
        records.push(ExamRecord::new(PatientId(patient), ExamTypeId(exam), date));
    }
    Ok(records)
}

/// Saves a log to `dir/patients.csv`, `dir/catalog.csv`,
/// `dir/records.csv`, creating the directory when missing.
pub fn save_dir(log: &ExamLog, dir: &Path) -> Result<(), DatasetError> {
    std::fs::create_dir_all(dir)?;
    let mut pw = BufWriter::new(File::create(dir.join("patients.csv"))?);
    write_patients(&mut pw, log.patients())?;
    pw.flush()?;
    let mut cw = BufWriter::new(File::create(dir.join("catalog.csv"))?);
    write_catalog(&mut cw, log.catalog())?;
    cw.flush()?;
    let mut rw = BufWriter::new(File::create(dir.join("records.csv"))?);
    write_records(&mut rw, log.records())?;
    rw.flush()?;
    Ok(())
}

/// Loads a log previously written by [`save_dir`], re-validating
/// referential integrity.
pub fn load_dir(dir: &Path) -> Result<ExamLog, DatasetError> {
    let patients = read_patients(File::open(dir.join("patients.csv"))?)?;
    let catalog = read_catalog(File::open(dir.join("catalog.csv"))?)?;
    let records = read_records(File::open(dir.join("records.csv"))?)?;
    let mut log = ExamLog::new(patients, catalog)?;
    log.extend_records(records)?;
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, SyntheticConfig};

    #[test]
    fn quote_and_split_round_trip() {
        let cases = [
            "plain",
            "with,comma",
            "with \"quote\"",
            "multi,\"both\"",
            "",
        ];
        for original in cases {
            let line = format!("{},tail", quote(original));
            let fields = split_line(&line, 1).unwrap();
            assert_eq!(fields, vec![original.to_owned(), "tail".to_owned()]);
        }
    }

    #[test]
    fn split_rejects_malformed() {
        assert!(split_line("\"unterminated", 1).is_err());
        assert!(split_line("stray\"quote", 1).is_err());
    }

    #[test]
    fn patients_round_trip() {
        let patients = vec![
            Patient::new(PatientId(0), 4).unwrap(),
            Patient::new(PatientId(1), 95).unwrap(),
        ];
        let mut buf = Vec::new();
        write_patients(&mut buf, &patients).unwrap();
        let back = read_patients(&buf[..]).unwrap();
        assert_eq!(back, patients);
    }

    #[test]
    fn catalog_round_trip_with_quoting() {
        let catalog = vec![
            ExamType::new(
                ExamTypeId(0),
                "Lipoprotein(a), fasting",
                ConditionGroup::Lipid,
            ),
            ExamType::new(ExamTypeId(1), "Plain name", ConditionGroup::Imaging),
        ];
        let mut buf = Vec::new();
        write_catalog(&mut buf, &catalog).unwrap();
        let back = read_catalog(&buf[..]).unwrap();
        assert_eq!(back, catalog);
    }

    #[test]
    fn full_log_round_trip_via_dir() {
        let cfg = SyntheticConfig {
            num_patients: 50,
            num_exam_types: 20,
            target_records: 600,
            ..SyntheticConfig::small()
        };
        let log = generate(&cfg, 11);
        let dir = std::env::temp_dir().join(format!("ada_io_test_{}", std::process::id()));
        save_dir(&log, &dir).unwrap();
        let back = load_dir(&dir).unwrap();
        assert_eq!(back, log);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_records_rejects_bad_rows() {
        let data = "patient_id,exam_id,date\n1,2\n";
        assert!(matches!(
            read_records(data.as_bytes()),
            Err(DatasetError::Csv(2, _))
        ));
        let data = "patient_id,exam_id,date\n1,2,not-a-date\n";
        assert!(matches!(
            read_records(data.as_bytes()),
            Err(DatasetError::Csv(2, _))
        ));
    }

    #[test]
    fn load_dir_validates_integrity() {
        let dir = std::env::temp_dir().join(format!("ada_io_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("patients.csv"), "patient_id,age\n0,50\n").unwrap();
        std::fs::write(dir.join("catalog.csv"), "exam_id,name,group\n0,X,lipid\n").unwrap();
        // Record references exam 7, which is not in the catalog.
        std::fs::write(
            dir.join("records.csv"),
            "patient_id,exam_id,date\n0,7,2015-01-01\n",
        )
        .unwrap();
        assert!(matches!(
            load_dir(&dir),
            Err(DatasetError::UnknownExamType(7))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
