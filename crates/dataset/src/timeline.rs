//! Per-patient timelines and temporal statistics.
//!
//! The examination log is longitudinal ("covering the time period of
//! one year"); compliance assessment and sequential-pattern mining both
//! consume the per-patient visit order, and resource planning consumes
//! the volume-over-time profile.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dataset::{ExamLog, Visit};
use crate::date::Date;
use crate::record::{ExamRecord, PatientId};

/// One patient's visits in chronological order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// The patient.
    pub patient: PatientId,
    /// Visits, sorted by date.
    pub visits: Vec<Visit>,
}

impl Timeline {
    /// Number of visits.
    pub fn num_visits(&self) -> usize {
        self.visits.len()
    }

    /// Day gaps between consecutive visits (empty for < 2 visits).
    pub fn gaps_days(&self) -> Vec<i64> {
        self.visits
            .windows(2)
            .map(|w| w[1].date.days_between(w[0].date))
            .collect()
    }

    /// The dates the given exam type was performed, in order.
    pub fn dates_of(&self, exam: crate::record::ExamTypeId) -> Vec<Date> {
        self.visits
            .iter()
            .filter(|v| v.exams.binary_search(&exam).is_ok())
            .map(|v| v.date)
            .collect()
    }
}

/// Builds every patient's timeline (index = patient id). Patients with
/// no records get an empty timeline.
pub fn timelines(log: &ExamLog) -> Vec<Timeline> {
    let mut out: Vec<Timeline> = (0..log.num_patients())
        .map(|i| Timeline {
            patient: PatientId(i as u32),
            visits: Vec::new(),
        })
        .collect();
    for visit in log.visits() {
        out[visit.patient.index()].visits.push(visit);
    }
    // `ExamLog::visits` is sorted by (patient, date), so each patient's
    // slice is already chronological; assert in debug builds.
    debug_assert!(out
        .iter()
        .all(|t| t.visits.windows(2).all(|w| w[0].date <= w[1].date)));
    out
}

/// Record volume per calendar month of a given year: `counts[m - 1]` is
/// the number of records in month `m`. Records outside `year` are
/// ignored.
pub fn monthly_volume(log: &ExamLog, year: u16) -> [usize; 12] {
    let mut counts = [0usize; 12];
    for r in log.records() {
        if r.date.year() == year {
            counts[(r.date.month() - 1) as usize] += 1;
        }
    }
    counts
}

/// Summary of inter-visit gaps across the whole cohort.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GapSummary {
    /// Number of gaps measured.
    pub count: usize,
    /// Mean gap in days.
    pub mean_days: f64,
    /// Median gap in days.
    pub median_days: f64,
    /// Maximum gap in days.
    pub max_days: i64,
}

/// Computes the cohort-wide inter-visit gap summary; `None` when no
/// patient has two visits.
pub fn gap_summary(log: &ExamLog) -> Option<GapSummary> {
    let mut gaps: Vec<i64> = timelines(log)
        .iter()
        .flat_map(Timeline::gaps_days)
        .collect();
    if gaps.is_empty() {
        return None;
    }
    gaps.sort_unstable();
    let count = gaps.len();
    Some(GapSummary {
        count,
        mean_days: gaps.iter().sum::<i64>() as f64 / count as f64,
        median_days: if count % 2 == 1 {
            gaps[count / 2] as f64
        } else {
            (gaps[count / 2 - 1] + gaps[count / 2]) as f64 / 2.0
        },
        max_days: *gaps.last().expect("non-empty"),
    })
}

/// Replays a log's records the way a hospital feed would deliver them:
/// globally in timestamp order, but locally jumbled.
///
/// The records are first put into *canonical stream order* — sorted by
/// `(date, patient, exam)`, the order every streaming consumer treats
/// as the reference sequence — and then perturbed by a seeded bounded
/// shuffle: consecutive blocks of `disorder` records are each
/// Fisher–Yates-shuffled, so no record moves more than `disorder - 1`
/// positions from its canonical slot. `disorder <= 1` yields the
/// canonical order unchanged; larger values simulate out-of-order
/// arrival within a bounded horizon, which is exactly what a
/// watermarking ingester (`ada-stream`) must tolerate. Ingestion tests
/// and the `stream_smoke` bench share this one source so they exercise
/// the same delivery model.
#[derive(Debug, Clone)]
pub struct StreamOrder {
    records: Vec<ExamRecord>,
    pos: usize,
}

impl StreamOrder {
    /// Builds the delivery sequence for `log` (see the type docs).
    pub fn new(log: &ExamLog, seed: u64, disorder: usize) -> Self {
        let mut records = log.records().to_vec();
        records.sort_by_key(|r| (r.date, r.patient.0, r.exam.0));
        if disorder > 1 {
            let mut rng = StdRng::seed_from_u64(seed);
            for block in records.chunks_mut(disorder) {
                block.shuffle(&mut rng);
            }
        }
        Self { records, pos: 0 }
    }

    /// The records not yet yielded, in delivery order.
    pub fn remaining(&self) -> &[ExamRecord] {
        &self.records[self.pos..]
    }

    /// Total number of records in the feed (yielded or not).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the feed holds no records at all.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl Iterator for StreamOrder {
    type Item = ExamRecord;

    fn next(&mut self) -> Option<ExamRecord> {
        let r = self.records.get(self.pos).copied();
        self.pos += usize::from(r.is_some());
        r
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.records.len() - self.pos;
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ExamRecord, ExamType, ExamTypeId, Patient};
    use crate::taxonomy::ConditionGroup;

    fn log_with_dates(rows: &[(u32, u32, u16, u8, u8)]) -> ExamLog {
        let np = rows.iter().map(|r| r.0).max().unwrap_or(0) + 1;
        let ne = rows.iter().map(|r| r.1).max().unwrap_or(0) + 1;
        let patients = (0..np)
            .map(|i| Patient::new(PatientId(i), 50).unwrap())
            .collect();
        let catalog = (0..ne)
            .map(|i| ExamType::new(ExamTypeId(i), format!("e{i}"), ConditionGroup::GeneralLab))
            .collect();
        let mut log = ExamLog::new(patients, catalog).unwrap();
        for &(p, e, y, m, d) in rows {
            log.push_record(ExamRecord::new(
                PatientId(p),
                ExamTypeId(e),
                Date::new(y, m, d).unwrap(),
            ))
            .unwrap();
        }
        log
    }

    #[test]
    fn timelines_are_chronological_per_patient() {
        let log = log_with_dates(&[
            (0, 0, 2015, 6, 1),
            (0, 1, 2015, 1, 15),
            (0, 0, 2015, 9, 3),
            (1, 0, 2015, 3, 1),
        ]);
        let ts = timelines(&log);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].num_visits(), 3);
        assert_eq!(ts[0].visits[0].date, Date::new(2015, 1, 15).unwrap());
        assert_eq!(ts[1].num_visits(), 1);
    }

    #[test]
    fn gaps_and_dates_of() {
        let log = log_with_dates(&[(0, 0, 2015, 1, 1), (0, 0, 2015, 1, 31), (0, 1, 2015, 3, 2)]);
        let t = &timelines(&log)[0];
        assert_eq!(t.gaps_days(), vec![30, 30]);
        assert_eq!(t.dates_of(ExamTypeId(0)).len(), 2);
        assert_eq!(t.dates_of(ExamTypeId(1)).len(), 1);
        assert!(t.dates_of(ExamTypeId(9)).is_empty());
    }

    #[test]
    fn monthly_volume_buckets() {
        let log = log_with_dates(&[
            (0, 0, 2015, 1, 1),
            (0, 0, 2015, 1, 20),
            (0, 0, 2015, 12, 31),
            (0, 0, 2014, 6, 1), // outside year, ignored
        ]);
        let v = monthly_volume(&log, 2015);
        assert_eq!(v[0], 2);
        assert_eq!(v[11], 1);
        assert_eq!(v.iter().sum::<usize>(), 3);
    }

    #[test]
    fn gap_summary_statistics() {
        let log = log_with_dates(&[
            (0, 0, 2015, 1, 1),
            (0, 0, 2015, 1, 11), // gap 10
            (0, 0, 2015, 1, 31), // gap 20
            (1, 0, 2015, 2, 1),
            (1, 0, 2015, 3, 3), // gap 30
        ]);
        let s = gap_summary(&log).unwrap();
        assert_eq!(s.count, 3);
        assert!((s.mean_days - 20.0).abs() < 1e-12);
        assert_eq!(s.median_days, 20.0);
        assert_eq!(s.max_days, 30);
    }

    #[test]
    fn gap_summary_none_without_repeat_visits() {
        let log = log_with_dates(&[(0, 0, 2015, 1, 1), (1, 0, 2015, 2, 1)]);
        assert!(gap_summary(&log).is_none());
    }

    fn canonical_key(r: &ExamRecord) -> (Date, u32, u32) {
        (r.date, r.patient.0, r.exam.0)
    }

    #[test]
    fn stream_order_without_disorder_is_canonical() {
        let log = log_with_dates(&[
            (1, 0, 2015, 3, 1),
            (0, 1, 2015, 1, 15),
            (0, 0, 2015, 1, 15),
            (0, 0, 2015, 9, 3),
        ]);
        let got: Vec<_> = StreamOrder::new(&log, 7, 1).collect();
        let mut want = log.records().to_vec();
        want.sort_by_key(canonical_key);
        assert_eq!(got, want);
    }

    #[test]
    fn stream_order_is_a_bounded_permutation() {
        let rows: Vec<(u32, u32, u16, u8, u8)> = (0..60)
            .map(|i| (i % 7, i % 5, 2015, 1 + (i % 12) as u8, 1 + (i % 28) as u8))
            .collect();
        let log = log_with_dates(&rows);
        let disorder = 8;
        let feed: Vec<_> = StreamOrder::new(&log, 42, disorder).collect();
        let mut canonical = log.records().to_vec();
        canonical.sort_by_key(canonical_key);
        // Same multiset...
        let mut sorted_feed = feed.clone();
        sorted_feed.sort_by_key(canonical_key);
        assert_eq!(sorted_feed, canonical);
        // ...and no record strays outside its disorder block.
        for (pos, r) in feed.iter().enumerate() {
            let canon_pos = canonical
                .iter()
                .position(|c| canonical_key(c) == canonical_key(r))
                .unwrap();
            assert!(
                pos.abs_diff(canon_pos) < disorder,
                "record displaced {} > bound {}",
                pos.abs_diff(canon_pos),
                disorder - 1
            );
        }
        // Seeded: same seed reproduces, different seed perturbs.
        let again: Vec<_> = StreamOrder::new(&log, 42, disorder).collect();
        assert_eq!(feed, again);
        let other: Vec<_> = StreamOrder::new(&log, 43, disorder).collect();
        assert_ne!(feed, other);
    }

    #[test]
    fn stream_order_remaining_tracks_iteration() {
        let log = log_with_dates(&[(0, 0, 2015, 1, 1), (0, 1, 2015, 2, 1)]);
        let mut feed = StreamOrder::new(&log, 0, 1);
        assert_eq!(feed.len(), 2);
        assert_eq!(feed.remaining().len(), 2);
        feed.next().unwrap();
        assert_eq!(feed.remaining().len(), 1);
        feed.next().unwrap();
        assert!(feed.next().is_none());
        assert!(feed.remaining().is_empty());
    }
}
