//! The [`ExamLog`] container: an in-memory examination log with validated
//! referential integrity and the per-patient / per-exam views every
//! downstream component consumes.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::date::Date;
use crate::error::DatasetError;
use crate::record::{ExamRecord, ExamType, ExamTypeId, Patient, PatientId};
use crate::taxonomy::Taxonomy;

/// An anonymized medical examination log.
///
/// Holds the patient registry, the examination-type catalog, and the
/// record list, with referential integrity enforced at insertion time:
/// every record must reference a registered patient and a cataloged exam
/// type. Ids are dense (patient `k` has id `k`), which lets downstream
/// code use plain arrays for per-patient and per-exam aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExamLog {
    patients: Vec<Patient>,
    catalog: Vec<ExamType>,
    records: Vec<ExamRecord>,
}

impl ExamLog {
    /// Creates an empty log over the given patient registry and exam
    /// catalog.
    ///
    /// # Errors
    /// Returns [`DatasetError::DuplicateId`] if patient or exam ids are
    /// not exactly the dense sequence `0..len`.
    pub fn new(patients: Vec<Patient>, catalog: Vec<ExamType>) -> Result<Self, DatasetError> {
        for (i, p) in patients.iter().enumerate() {
            if p.id.index() != i {
                return Err(DatasetError::DuplicateId(p.id.0));
            }
        }
        for (i, e) in catalog.iter().enumerate() {
            if e.id.index() != i {
                return Err(DatasetError::DuplicateId(e.id.0));
            }
        }
        Ok(Self {
            patients,
            catalog,
            records: Vec::new(),
        })
    }

    /// Appends a record after validating its references.
    ///
    /// # Errors
    /// Returns [`DatasetError::UnknownPatient`] or
    /// [`DatasetError::UnknownExamType`] on dangling references.
    pub fn push_record(&mut self, record: ExamRecord) -> Result<(), DatasetError> {
        if record.patient.index() >= self.patients.len() {
            return Err(DatasetError::UnknownPatient(record.patient.0));
        }
        if record.exam.index() >= self.catalog.len() {
            return Err(DatasetError::UnknownExamType(record.exam.0));
        }
        self.records.push(record);
        Ok(())
    }

    /// Appends many records, validating each.
    ///
    /// # Errors
    /// Fails on the first invalid record; earlier records remain appended.
    pub fn extend_records(
        &mut self,
        records: impl IntoIterator<Item = ExamRecord>,
    ) -> Result<(), DatasetError> {
        for r in records {
            self.push_record(r)?;
        }
        Ok(())
    }

    /// Number of patients in the registry.
    pub fn num_patients(&self) -> usize {
        self.patients.len()
    }

    /// Number of examination types in the catalog.
    pub fn num_exam_types(&self) -> usize {
        self.catalog.len()
    }

    /// Number of examination records.
    pub fn num_records(&self) -> usize {
        self.records.len()
    }

    /// The patient registry, indexed by [`PatientId`].
    pub fn patients(&self) -> &[Patient] {
        &self.patients
    }

    /// The exam-type catalog, indexed by [`ExamTypeId`].
    pub fn catalog(&self) -> &[ExamType] {
        &self.catalog
    }

    /// All records, in insertion order.
    pub fn records(&self) -> &[ExamRecord] {
        &self.records
    }

    /// The taxonomy induced by the catalog's condition-group annotations.
    pub fn taxonomy(&self) -> Taxonomy {
        Taxonomy::from_catalog(&self.catalog)
    }

    /// Per-exam-type record counts (the raw frequency each downstream
    /// "mine the most frequent exams first" strategy ranks by).
    pub fn exam_frequencies(&self) -> Vec<usize> {
        let mut freq = vec![0usize; self.catalog.len()];
        for r in &self.records {
            freq[r.exam.index()] += 1;
        }
        freq
    }

    /// Exam-type ids sorted by decreasing record frequency (ties broken by
    /// id for determinism). This is the ordering the paper's horizontal
    /// partial-mining strategy grows its feature subset along.
    pub fn exams_by_frequency(&self) -> Vec<ExamTypeId> {
        let freq = self.exam_frequencies();
        let mut ids: Vec<ExamTypeId> = (0..self.catalog.len() as u32).map(ExamTypeId).collect();
        ids.sort_by_key(|id| (std::cmp::Reverse(freq[id.index()]), id.0));
        ids
    }

    /// Per-patient exam-count rows: `counts[p][e]` is how many times
    /// patient `p` underwent exam type `e`. This is the raw material of
    /// the paper's Vector Space Model transformation.
    pub fn patient_exam_counts(&self) -> Vec<Vec<u32>> {
        let mut counts = vec![vec![0u32; self.catalog.len()]; self.patients.len()];
        for r in &self.records {
            counts[r.patient.index()][r.exam.index()] += 1;
        }
        counts
    }

    /// Per-patient *sets* of distinct exam types, as sorted id vectors.
    /// These are the transactions the pattern-mining component consumes
    /// ("medical examinations commonly prescribed to patients").
    pub fn patient_exam_sets(&self) -> Vec<Vec<ExamTypeId>> {
        let mut sets = vec![Vec::new(); self.patients.len()];
        for r in &self.records {
            sets[r.patient.index()].push(r.exam);
        }
        for s in &mut sets {
            s.sort_unstable();
            s.dedup();
        }
        sets
    }

    /// Groups records into *visits*: the set of distinct exams a patient
    /// underwent on one calendar day, sorted by (patient, date). Visits
    /// are the finer-grained transactions used for co-prescription
    /// pattern mining.
    pub fn visits(&self) -> Vec<Visit> {
        let mut by_key: BTreeMap<(PatientId, Date), Vec<ExamTypeId>> = BTreeMap::new();
        for r in &self.records {
            by_key.entry((r.patient, r.date)).or_default().push(r.exam);
        }
        by_key
            .into_iter()
            .map(|((patient, date), mut exams)| {
                exams.sort_unstable();
                exams.dedup();
                Visit {
                    patient,
                    date,
                    exams,
                }
            })
            .collect()
    }

    /// The (min, max) record dates, or `None` when the log is empty.
    pub fn date_range(&self) -> Option<(Date, Date)> {
        let first = self.records.first()?.date;
        let (mut lo, mut hi) = (first, first);
        for r in &self.records {
            if r.date < lo {
                lo = r.date;
            }
            if r.date > hi {
                hi = r.date;
            }
        }
        Some((lo, hi))
    }

    /// A new log containing only records within `[from, to]` (inclusive).
    /// The patient registry and catalog are preserved unchanged.
    pub fn filter_by_date(&self, from: Date, to: Date) -> ExamLog {
        ExamLog {
            patients: self.patients.clone(),
            catalog: self.catalog.clone(),
            records: self
                .records
                .iter()
                .copied()
                .filter(|r| r.date >= from && r.date <= to)
                .collect(),
        }
    }

    /// A new log restricted to the given exam types (a *horizontal*
    /// partial-mining view in the paper's terminology: fewer feature
    /// dimensions, fewer raw rows, all patients kept). The catalog keeps
    /// its full width so exam ids remain stable.
    pub fn filter_by_exams(&self, keep: &[ExamTypeId]) -> ExamLog {
        let mut mask = vec![false; self.catalog.len()];
        for id in keep {
            if id.index() < mask.len() {
                mask[id.index()] = true;
            }
        }
        ExamLog {
            patients: self.patients.clone(),
            catalog: self.catalog.clone(),
            records: self
                .records
                .iter()
                .copied()
                .filter(|r| mask[r.exam.index()])
                .collect(),
        }
    }

    /// A new log restricted to the given patients (a *vertical*
    /// partial-mining view: fewer input objects). The registry keeps its
    /// full width so patient ids remain stable.
    pub fn filter_by_patients(&self, keep: &[PatientId]) -> ExamLog {
        let mut mask = vec![false; self.patients.len()];
        for id in keep {
            if id.index() < mask.len() {
                mask[id.index()] = true;
            }
        }
        ExamLog {
            patients: self.patients.clone(),
            catalog: self.catalog.clone(),
            records: self
                .records
                .iter()
                .copied()
                .filter(|r| mask[r.patient.index()])
                .collect(),
        }
    }
}

/// All distinct exams one patient underwent on one calendar day.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Visit {
    /// The patient.
    pub patient: PatientId,
    /// The calendar day.
    pub date: Date,
    /// Distinct exam types performed that day, sorted by id.
    pub exams: Vec<ExamTypeId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::ConditionGroup;

    fn tiny_log() -> ExamLog {
        let patients = (0..3)
            .map(|i| Patient::new(PatientId(i), 40 + i as u16).unwrap())
            .collect();
        let catalog = vec![
            ExamType::new(ExamTypeId(0), "HbA1c", ConditionGroup::GlycemicControl),
            ExamType::new(ExamTypeId(1), "ECG", ConditionGroup::Cardiovascular),
            ExamType::new(ExamTypeId(2), "Fundus", ConditionGroup::Ophthalmic),
        ];
        let mut log = ExamLog::new(patients, catalog).unwrap();
        let d = |m, day| Date::new(2015, m, day).unwrap();
        log.extend_records([
            ExamRecord::new(PatientId(0), ExamTypeId(0), d(1, 10)),
            ExamRecord::new(PatientId(0), ExamTypeId(1), d(1, 10)),
            ExamRecord::new(PatientId(0), ExamTypeId(0), d(6, 2)),
            ExamRecord::new(PatientId(1), ExamTypeId(0), d(3, 5)),
            ExamRecord::new(PatientId(2), ExamTypeId(2), d(12, 30)),
        ])
        .unwrap();
        log
    }

    #[test]
    fn rejects_non_dense_ids() {
        let patients = vec![Patient::new(PatientId(1), 30).unwrap()];
        assert!(ExamLog::new(patients, vec![]).is_err());
    }

    #[test]
    fn rejects_dangling_references() {
        let mut log = tiny_log();
        let d = Date::new(2015, 1, 1).unwrap();
        assert_eq!(
            log.push_record(ExamRecord::new(PatientId(9), ExamTypeId(0), d)),
            Err(DatasetError::UnknownPatient(9))
        );
        assert_eq!(
            log.push_record(ExamRecord::new(PatientId(0), ExamTypeId(9), d)),
            Err(DatasetError::UnknownExamType(9))
        );
    }

    #[test]
    fn frequency_views() {
        let log = tiny_log();
        assert_eq!(log.exam_frequencies(), vec![3, 1, 1]);
        let order = log.exams_by_frequency();
        assert_eq!(order[0], ExamTypeId(0));
        // Tie between exams 1 and 2 broken by id.
        assert_eq!(order[1], ExamTypeId(1));
        assert_eq!(order[2], ExamTypeId(2));
    }

    #[test]
    fn count_matrix() {
        let log = tiny_log();
        let counts = log.patient_exam_counts();
        assert_eq!(counts[0], vec![2, 1, 0]);
        assert_eq!(counts[1], vec![1, 0, 0]);
        assert_eq!(counts[2], vec![0, 0, 1]);
    }

    #[test]
    fn exam_sets_dedupe() {
        let log = tiny_log();
        let sets = log.patient_exam_sets();
        assert_eq!(sets[0], vec![ExamTypeId(0), ExamTypeId(1)]);
        assert_eq!(sets[1], vec![ExamTypeId(0)]);
    }

    #[test]
    fn visits_group_by_patient_day() {
        let log = tiny_log();
        let visits = log.visits();
        assert_eq!(visits.len(), 4);
        assert_eq!(visits[0].exams, vec![ExamTypeId(0), ExamTypeId(1)]);
    }

    #[test]
    fn date_range_and_filter() {
        let log = tiny_log();
        let (lo, hi) = log.date_range().unwrap();
        assert_eq!(lo, Date::new(2015, 1, 10).unwrap());
        assert_eq!(hi, Date::new(2015, 12, 30).unwrap());
        let h1 = log.filter_by_date(
            Date::new(2015, 1, 1).unwrap(),
            Date::new(2015, 6, 30).unwrap(),
        );
        assert_eq!(h1.num_records(), 4);
        assert_eq!(h1.num_patients(), 3); // registry preserved
    }

    #[test]
    fn horizontal_filter_keeps_patients_drops_rows() {
        let log = tiny_log();
        let sub = log.filter_by_exams(&[ExamTypeId(0)]);
        assert_eq!(sub.num_records(), 3);
        assert_eq!(sub.num_patients(), 3);
        assert_eq!(sub.num_exam_types(), 3); // catalog width stable
    }

    #[test]
    fn vertical_filter_drops_patient_rows() {
        let log = tiny_log();
        let sub = log.filter_by_patients(&[PatientId(0)]);
        assert_eq!(sub.num_records(), 3);
    }

    #[test]
    fn empty_log_has_no_date_range() {
        let log = ExamLog::new(vec![], vec![]).unwrap();
        assert!(log.date_range().is_none());
    }
}
