//! Error type for the dataset crate.

use std::fmt;

/// Errors produced while constructing or loading examination-log data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A year/month/day combination that does not name a calendar day.
    InvalidDate {
        /// The offending year (0 when unknown).
        year: u16,
        /// The offending month (0 when unknown).
        month: u8,
        /// The offending day (0 when unknown).
        day: u8,
    },
    /// A textual date that could not be parsed as `YYYY-MM-DD`.
    DateParse(String),
    /// A record referenced a patient id absent from the patient registry.
    UnknownPatient(u32),
    /// A record referenced an exam-type id absent from the catalog.
    UnknownExamType(u32),
    /// A duplicate id was registered.
    DuplicateId(u32),
    /// A patient age outside the plausible 0–130 range.
    InvalidAge(u16),
    /// A malformed CSV line: (1-based line number, reason).
    Csv(usize, String),
    /// An underlying I/O failure, carried as a string to keep the error
    /// type `Clone + PartialEq` for tests.
    Io(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidDate { year, month, day } => {
                write!(f, "invalid date {year:04}-{month:02}-{day:02}")
            }
            Self::DateParse(s) => write!(f, "cannot parse date {s:?} (expected YYYY-MM-DD)"),
            Self::UnknownPatient(id) => write!(f, "unknown patient id {id}"),
            Self::UnknownExamType(id) => write!(f, "unknown exam-type id {id}"),
            Self::DuplicateId(id) => write!(f, "duplicate id {id}"),
            Self::InvalidAge(age) => write!(f, "implausible patient age {age}"),
            Self::Csv(line, reason) => write!(f, "CSV error at line {line}: {reason}"),
            Self::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}
