//! Core record types: patients, examination types, and exam-log records.
//!
//! The paper states that each record of the diabetic-patient dataset
//! "contains at least a unique patient identifier, and the type and date
//! of every exam"; patients additionally carry an age (range 4–95 in the
//! paper's cohort).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::date::Date;
use crate::error::DatasetError;
use crate::taxonomy::ConditionGroup;

/// Dense, zero-based identifier of a patient within an [`crate::ExamLog`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PatientId(pub u32);

/// Dense, zero-based identifier of an examination type within the catalog.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ExamTypeId(pub u32);

impl PatientId {
    /// The raw index, usable to address per-patient arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ExamTypeId {
    /// The raw index, usable to address per-exam-type arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PatientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:05}", self.0)
    }
}

impl fmt::Display for ExamTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{:03}", self.0)
    }
}

/// A patient in the anonymized cohort.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Patient {
    /// Dense identifier of this patient.
    pub id: PatientId,
    /// Age in years at the start of the observation window.
    pub age: u16,
}

impl Patient {
    /// Creates a patient, validating the age.
    ///
    /// # Errors
    /// Returns [`DatasetError::InvalidAge`] for ages above 130.
    pub fn new(id: PatientId, age: u16) -> Result<Self, DatasetError> {
        if age > 130 {
            return Err(DatasetError::InvalidAge(age));
        }
        Ok(Self { id, age })
    }
}

/// An examination type from the hospital's catalog (159 types in the
/// paper's cohort), annotated with the condition group it belongs to so
/// that multi-level pattern mining can generalize items.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExamType {
    /// Dense identifier of this exam type.
    pub id: ExamTypeId,
    /// Human-readable name, e.g. `"Glycated hemoglobin (HbA1c)"`.
    pub name: String,
    /// Mid-level taxonomy node: the condition group this exam monitors.
    pub group: ConditionGroup,
}

impl ExamType {
    /// Creates an exam type.
    pub fn new(id: ExamTypeId, name: impl Into<String>, group: ConditionGroup) -> Self {
        Self {
            id,
            name: name.into(),
            group,
        }
    }
}

/// One row of the examination log: patient `patient` underwent an exam of
/// type `exam` on day `date`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExamRecord {
    /// The patient who underwent the exam.
    pub patient: PatientId,
    /// The type of examination performed.
    pub exam: ExamTypeId,
    /// The calendar day the exam was performed.
    pub date: Date,
}

impl ExamRecord {
    /// Creates an exam record.
    pub fn new(patient: PatientId, exam: ExamTypeId, date: Date) -> Self {
        Self {
            patient,
            exam,
            date,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patient_age_validation() {
        assert!(Patient::new(PatientId(0), 95).is_ok());
        assert!(Patient::new(PatientId(0), 4).is_ok());
        assert!(Patient::new(PatientId(0), 131).is_err());
    }

    #[test]
    fn id_display_is_stable() {
        assert_eq!(PatientId(7).to_string(), "P00007");
        assert_eq!(ExamTypeId(12).to_string(), "E012");
    }

    #[test]
    fn ids_index_arrays() {
        let v = [10, 20, 30];
        assert_eq!(v[PatientId(1).index()], 20);
        assert_eq!(v[ExamTypeId(2).index()], 30);
    }

    #[test]
    fn record_equality() {
        let d = Date::new(2015, 5, 1).unwrap();
        let a = ExamRecord::new(PatientId(1), ExamTypeId(2), d);
        let b = ExamRecord::new(PatientId(1), ExamTypeId(2), d);
        assert_eq!(a, b);
    }
}
