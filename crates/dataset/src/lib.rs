//! # ada-dataset
//!
//! Medical examination-log data model for the ADA-HEALTH reproduction.
//!
//! The ADA-HEALTH paper (Cerquitelli et al., ICDEW 2016) evaluates its
//! pipeline on a proprietary, anonymized examination log of diabetic
//! patients: **6,380 patients**, **159 examination types**, **95,788
//! records** over one year, ages 4–95. That dataset is not public, so this
//! crate provides:
//!
//! * the data model the paper describes — each record carries *at least a
//!   unique patient identifier, and the type and date of every exam*
//!   ([`ExamRecord`], [`Patient`], [`ExamType`], [`ExamLog`]);
//! * a three-level examination taxonomy ([`taxonomy`]) used by the
//!   MeTA-style multi-level pattern mining in `ada-mining`;
//! * a **seeded synthetic generator** ([`synthetic`]) calibrated to every
//!   aggregate statistic the paper publishes (counts, age range, long-tail
//!   exam-type frequency driving the 20/40/100% → ~70/85/100% row-coverage
//!   mapping, correlated exam bundles, latent patient condition profiles);
//! * CSV import/export ([`io`]) and summary statistics ([`stats`]).
//!
//! ## Quick example
//!
//! ```
//! use ada_dataset::synthetic::{SyntheticConfig, generate};
//!
//! // Small dataset for doc-test speed; `SyntheticConfig::paper()` yields
//! // the full paper-scale dataset.
//! let cfg = SyntheticConfig::small();
//! let log = generate(&cfg, 42);
//! assert_eq!(log.num_patients(), cfg.num_patients);
//! assert!(log.num_records() > 0);
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod date;
pub mod io;
pub mod record;
pub mod sampling;
pub mod stats;
pub mod synthetic;
pub mod taxonomy;
pub mod timeline;

mod error;

pub use dataset::ExamLog;
pub use date::Date;
pub use error::DatasetError;
pub use record::{ExamRecord, ExamType, ExamTypeId, Patient, PatientId};
pub use taxonomy::{ConditionGroup, Domain, Taxonomy};
pub use timeline::StreamOrder;
