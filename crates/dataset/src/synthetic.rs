//! Seeded synthetic generator for the paper's diabetic-patient cohort.
//!
//! The real dataset behind the paper's Section IV (6,380 patients, 159
//! examination types, 95,788 records over one year, ages 4–95) is
//! proprietary. Every experiment in the paper, however, depends only on
//! aggregate properties of that log, which this generator reproduces:
//!
//! * **scale** — the exact patient/exam-type counts and the record count
//!   within a small tolerance (per-patient volumes are Poisson draws);
//! * **long-tail exam frequency** — a Zipf-like popularity profile,
//!   calibrated so the top ~20% of exam types cover ≈70% of raw records
//!   and the top ~40% cover ≈85%, the two coverage points the paper
//!   publishes for its horizontal partial-mining experiment;
//! * **latent cluster structure** — each patient is drawn from one of
//!   eight condition *profiles* (well-controlled, cardiovascular,
//!   retinopathy, nephropathy, neuropathy, foot care, multi-morbid
//!   elderly, early-onset) that boost the exam groups monitoring that
//!   condition; the paper's optimizer auto-selects K = 8 on its data,
//!   and the synthetic cohort plants a matching number of latent groups;
//! * **correlated exams** — panel partners co-occur within the same
//!   visit day, producing the co-prescription association rules the
//!   pattern-mining component looks for, and explaining (as the paper
//!   conjectures) why clustering quality survives dropping the rare
//!   exam-type tail.
//!
//! Everything is deterministic given `(config, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dataset::ExamLog;
use crate::date::Date;
use crate::record::{ExamRecord, ExamType, ExamTypeId, Patient, PatientId};
use crate::sampling::{normal, poisson, AliasTable};
use crate::taxonomy::ConditionGroup;

/// A latent patient condition profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Human-readable profile name.
    pub name: String,
    /// Mixture weight of this profile in the cohort (weights are
    /// normalized internally).
    pub weight: f64,
    /// Mean number of exam records for a patient of this profile, before
    /// global rescaling toward `target_records`.
    pub mean_records: f64,
    /// Condition groups whose exams this profile over-prescribes.
    pub focus: Vec<ConditionGroup>,
    /// Mean patient age for this profile.
    pub age_mean: f64,
    /// Age standard deviation for this profile.
    pub age_std: f64,
}

/// The eight default condition profiles planted in the synthetic cohort.
pub fn default_profiles() -> Vec<Profile> {
    use ConditionGroup::*;
    let p =
        |name: &str, weight, mean_records, focus: &[ConditionGroup], age_mean, age_std| Profile {
            name: name.to_owned(),
            weight,
            mean_records,
            focus: focus.to_vec(),
            age_mean,
            age_std,
        };
    vec![
        p("well-controlled", 0.30, 9.0, &[GlycemicControl], 58.0, 12.0),
        p(
            "cardiovascular-risk",
            0.12,
            17.0,
            &[Cardiovascular, Lipid],
            66.0,
            10.0,
        ),
        p("retinopathy", 0.10, 15.0, &[Ophthalmic], 62.0, 11.0),
        p("nephropathy", 0.10, 16.0, &[Renal, GeneralLab], 64.0, 10.0),
        p("neuropathy", 0.08, 14.0, &[Neurological], 61.0, 11.0),
        p("foot-care", 0.08, 15.0, &[Podiatric, Imaging], 63.0, 10.0),
        p(
            "multi-morbid-elderly",
            0.12,
            26.0,
            &[Cardiovascular, Renal, Imaging],
            78.0,
            7.0,
        ),
        p(
            "early-onset",
            0.10,
            18.0,
            &[GlycemicControl, Specialist],
            16.0,
            6.0,
        ),
    ]
}

/// Configuration of the synthetic cohort generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of patients (paper: 6,380).
    pub num_patients: usize,
    /// Number of examination types in the catalog (paper: 159).
    pub num_exam_types: usize,
    /// Target total record count (paper: 95,788); realized totals are
    /// Poisson-distributed around this value.
    pub target_records: usize,
    /// Calendar year the one-year observation window covers.
    pub year: u16,
    /// Exponent of the global exam-type popularity profile, a *shifted*
    /// Zipf `1/(rank + shift)^s`: the shift flattens the head (no single
    /// ubiquitous exam dominates every patient vector, as in real
    /// hospital logs) while the exponent keeps the tail long.
    pub zipf_exponent: f64,
    /// Head-flattening shift, as a fraction of the catalog size.
    pub zipf_shift_fraction: f64,
    /// Multiplicative boost a profile applies to exams in its focus
    /// condition groups. The boost only applies *outside* the generic
    /// head (see `generic_head_fraction`): routine exams are prescribed
    /// uniformly to every profile, and condition profiles express
    /// themselves through specialist exams further down the catalog.
    pub bundle_boost: f64,
    /// Fraction of top catalog ranks treated as the generic head, where
    /// no profile boost applies.
    pub generic_head_fraction: f64,
    /// Extra boost for a profile's *signature* exams: focus-group exams
    /// whose catalog rank falls inside the signature band. Signatures
    /// are what make condition profiles separable — and the band is
    /// placed so that their *realized* frequency ranks land between the
    /// 20% and 40% cuts of the paper's partial-mining experiment:
    /// retained by a top-40% feature subset, lost by a top-20% one.
    pub signature_boost: f64,
    /// Signature band start, as a fraction of the catalog size (on base
    /// catalog ranks).
    pub signature_band_lo: f64,
    /// Signature band end (exclusive), as a fraction of the catalog
    /// size.
    pub signature_band_hi: f64,
    /// Probability that drawing a panel-leader exam also emits its panel
    /// partner within the same visit.
    pub panel_prob: f64,
    /// Fraction of patients that are *episodic*: followed elsewhere for
    /// routine care, they only appear in this log for specific
    /// specialist work-ups and therefore draw exclusively from the rare
    /// tail of the catalog. Under a top-frequency feature restriction
    /// their VSM vectors vanish — the property that makes the paper's
    /// overall similarity *decrease* as exam types are dropped.
    pub episodic_fraction: f64,
    /// Fraction of top catalog ranks masked out for episodic patients.
    pub episodic_mask: f64,
    /// The latent condition profiles.
    pub profiles: Vec<Profile>,
}

impl SyntheticConfig {
    /// The paper-scale cohort: 6,380 patients, 159 exam types, ~95,788
    /// records over the year 2015, ages 4–95.
    pub fn paper() -> Self {
        Self {
            num_patients: 6_380,
            num_exam_types: 159,
            target_records: 95_788,
            year: 2015,
            zipf_exponent: 2.5,
            zipf_shift_fraction: 0.06,
            bundle_boost: 6.0,
            generic_head_fraction: 0.20,
            signature_boost: 60.0,
            signature_band_lo: 0.28,
            signature_band_hi: 0.50,
            panel_prob: 0.5,
            episodic_fraction: 0.25,
            episodic_mask: 0.28,
            profiles: default_profiles(),
        }
    }

    /// A down-scaled cohort (~400 patients) for fast tests and doc
    /// examples; preserves the distributional shape of [`paper`].
    ///
    /// [`paper`]: SyntheticConfig::paper
    pub fn small() -> Self {
        Self {
            num_patients: 400,
            num_exam_types: 60,
            target_records: 6_000,
            ..Self::paper()
        }
    }
}

/// A generated cohort together with its latent ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The examination log.
    pub log: ExamLog,
    /// For each patient, the index (into `profile_names`) of the latent
    /// profile the patient was drawn from. Useful for validating that
    /// clustering recovers planted structure.
    pub true_profile: Vec<usize>,
    /// Names of the latent profiles, aligned with `true_profile` values.
    pub profile_names: Vec<String>,
    /// For each patient, whether they are an episodic (specialist-only)
    /// patient drawing exclusively from the rare exam tail.
    pub episodic: Vec<bool>,
}

/// Generates an examination log (see module docs). Deterministic in
/// `(config, seed)`.
pub fn generate(config: &SyntheticConfig, seed: u64) -> ExamLog {
    generate_with_truth(config, seed).log
}

/// Generates an examination log plus its latent profile assignment.
///
/// # Panics
/// Panics when the configuration is degenerate (no patients, fewer exam
/// types than condition groups, empty or zero-weight profile list).
pub fn generate_with_truth(config: &SyntheticConfig, seed: u64) -> SyntheticDataset {
    assert!(config.num_patients > 0, "cohort needs at least one patient");
    assert!(
        config.num_exam_types >= ConditionGroup::ALL.len(),
        "catalog needs at least one exam per condition group"
    );
    assert!(!config.profiles.is_empty(), "need at least one profile");

    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = build_catalog(config.num_exam_types);
    let popularity = global_popularity(&catalog, config.zipf_exponent, config.zipf_shift_fraction);
    let panel_partner = panel_partners(&catalog);

    // Per-profile exam-type samplers: global popularity, boosted on the
    // profile's focus groups. The episodic variant masks out the top
    // catalog ranks (episodic patients never undergo routine exams in
    // this log).
    let mask_count = ((config.episodic_mask * catalog.len() as f64) as usize)
        .min(catalog.len().saturating_sub(1));
    // Signature band: focus exams in the configured catalog-rank band
    // get the strong signature boost (see `SyntheticConfig`).
    let sig_lo = (config.signature_band_lo * catalog.len() as f64) as usize;
    let sig_hi = (config.signature_band_hi * catalog.len() as f64) as usize;
    let head_cut = (config.generic_head_fraction * catalog.len() as f64) as usize;
    let build_tables = |masked: bool| -> Vec<AliasTable> {
        config
            .profiles
            .iter()
            .map(|profile| {
                let weights: Vec<f64> = catalog
                    .iter()
                    .zip(&popularity)
                    .enumerate()
                    .map(|(rank, (exam, &w))| {
                        if masked && rank < mask_count {
                            0.0
                        } else if rank >= head_cut && profile.focus.contains(&exam.group) {
                            if (sig_lo..sig_hi).contains(&rank) {
                                w * config.signature_boost
                            } else {
                                w * config.bundle_boost
                            }
                        } else {
                            w
                        }
                    })
                    .collect();
                AliasTable::new(&weights)
            })
            .collect()
    };
    let profile_tables = build_tables(false);
    let episodic_tables = if config.episodic_fraction > 0.0 {
        Some(build_tables(true))
    } else {
        None
    };

    let profile_weights: Vec<f64> = config.profiles.iter().map(|p| p.weight).collect();
    let profile_picker = AliasTable::new(&profile_weights);

    // Rescale per-profile record means so the expected total matches
    // `target_records`.
    let total_weight: f64 = profile_weights.iter().sum();
    let weighted_mean: f64 = config
        .profiles
        .iter()
        .map(|p| p.weight / total_weight * p.mean_records)
        .sum();
    // Episodic patients contribute half volume on average; fold that
    // into the rescaling so the realized total still hits the target.
    let episodic_volume = 1.0 - config.episodic_fraction * 0.5;
    let scale = config.target_records as f64
        / (config.num_patients as f64 * weighted_mean * episodic_volume);

    let days_in_year = if crate::date::is_leap(config.year) {
        366u16
    } else {
        365
    };

    let mut patients = Vec::with_capacity(config.num_patients);
    let mut true_profile = Vec::with_capacity(config.num_patients);
    let mut episodic = Vec::with_capacity(config.num_patients);
    for i in 0..config.num_patients {
        let pi = profile_picker.sample(&mut rng);
        let profile = &config.profiles[pi];
        let age = normal(&mut rng, profile.age_mean, profile.age_std)
            .round()
            .clamp(4.0, 95.0) as u16;
        patients.push(Patient::new(PatientId(i as u32), age).expect("age clamped to valid range"));
        true_profile.push(pi);
        episodic.push(episodic_tables.is_some() && rng.gen::<f64>() < config.episodic_fraction);
    }

    let mut log = ExamLog::new(patients, catalog).expect("generator produces dense ids");

    for i in 0..config.num_patients {
        let pi = true_profile[i];
        let profile = &config.profiles[pi];
        // Episodic patients have roughly half the contact volume.
        let volume_factor = if episodic[i] { 0.5 } else { 1.0 };
        let target =
            poisson(&mut rng, profile.mean_records * scale * volume_factor).clamp(1, 250) as usize;

        // Visit days for this patient: roughly one visit per 3 records.
        let n_visits = (target / 3).clamp(1, 60);
        let mut visit_days: Vec<u16> = (0..n_visits)
            .map(|_| rng.gen_range(1..=days_in_year))
            .collect();
        visit_days.sort_unstable();
        visit_days.dedup();

        let table = if episodic[i] {
            &episodic_tables
                .as_ref()
                .expect("episodic flag implies tables")[pi]
        } else {
            &profile_tables[pi]
        };
        let mut emitted = 0usize;
        while emitted < target {
            let exam = ExamTypeId(table.sample(&mut rng) as u32);
            let day = visit_days[rng.gen_range(0..visit_days.len())];
            let date = Date::from_ordinal(config.year, day).expect("day within year");
            log.push_record(ExamRecord::new(PatientId(i as u32), exam, date))
                .expect("generated ids are valid");
            emitted += 1;
            // Panel co-prescription: the partner exam lands in the same
            // visit with probability `panel_prob`. Episodic patients
            // never receive masked (routine) partners.
            if emitted < target && rng.gen::<f64>() < config.panel_prob {
                if let Some(partner) = panel_partner[exam.index()] {
                    if !(episodic[i] && partner.index() < mask_count) {
                        log.push_record(ExamRecord::new(PatientId(i as u32), partner, date))
                            .expect("generated ids are valid");
                        emitted += 1;
                    }
                }
            }
        }
    }

    SyntheticDataset {
        log,
        true_profile,
        profile_names: config.profiles.iter().map(|p| p.name.clone()).collect(),
        episodic,
    }
}

/// Curated leading exam names per condition group; deeper exams get
/// generated panel names.
fn curated_names(group: ConditionGroup) -> &'static [&'static str] {
    use ConditionGroup::*;
    match group {
        GlycemicControl => &[
            "Glycated hemoglobin (HbA1c)",
            "Fasting plasma glucose",
            "Diabetologist visit",
            "Oral glucose tolerance test",
            "Self-monitoring review",
        ],
        GeneralLab => &[
            "Complete blood count",
            "Blood urea nitrogen",
            "Electrolyte panel",
            "Liver function panel",
            "C-reactive protein",
        ],
        Cardiovascular => &[
            "Electrocardiogram",
            "Blood pressure monitoring",
            "Echocardiography",
            "Cardiology consultation",
            "Exercise stress test",
        ],
        Ophthalmic => &[
            "Fundus examination",
            "Visual acuity test",
            "Fluorescein angiography",
            "Tonometry",
            "Retinal photography",
        ],
        Renal => &[
            "Serum creatinine",
            "Urine microalbumin",
            "Estimated GFR",
            "Urinalysis",
            "Nephrology consultation",
        ],
        Neurological => &[
            "Monofilament sensitivity test",
            "Nerve conduction study",
            "Vibration perception threshold",
            "Neurology consultation",
            "Autonomic function test",
        ],
        Podiatric => &[
            "Diabetic foot screening",
            "Podiatry consultation",
            "Ankle-brachial index",
            "Foot ulcer assessment",
            "Orthotic evaluation",
        ],
        Lipid => &[
            "Total cholesterol",
            "HDL cholesterol",
            "LDL cholesterol",
            "Triglycerides",
            "Lipoprotein(a)",
        ],
        Imaging => &[
            "Abdominal ultrasound",
            "Carotid doppler",
            "Chest radiography",
            "Lower-limb doppler",
            "Renal ultrasound",
        ],
        Specialist => &[
            "Dietetic consultation",
            "Endocrinology consultation",
            "Dermatology consultation",
            "Dental examination",
            "Psychological assessment",
        ],
    }
}

/// Paper-scale group sizes over a 159-type catalog; other catalog sizes
/// scale these proportionally.
const GROUP_SIZES_159: [usize; 10] = [12, 30, 22, 14, 16, 12, 10, 8, 15, 20];

/// Builds an examination catalog of `n` types distributed across the ten
/// condition groups proportionally to the paper-scale allocation.
///
/// # Panics
/// Panics when `n` is smaller than the number of condition groups.
pub fn build_catalog(n: usize) -> Vec<ExamType> {
    let groups = ConditionGroup::ALL;
    assert!(n >= groups.len(), "need at least one exam per group");
    // Largest-remainder apportionment of n over the reference sizes.
    let total: usize = GROUP_SIZES_159.iter().sum();
    let mut alloc = [0usize; 10];
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(10);
    let mut assigned = 0usize;
    for (g, &size) in GROUP_SIZES_159.iter().enumerate() {
        let exact = n as f64 * size as f64 / total as f64;
        let floor = (exact.floor() as usize).max(1);
        alloc[g] = floor;
        assigned += floor;
        remainders.push((g, exact - floor as f64));
    }
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite remainders"));
    let mut idx = 0usize;
    while assigned < n {
        alloc[remainders[idx % remainders.len()].0] += 1;
        assigned += 1;
        idx += 1;
    }
    while assigned > n {
        // Shave from the largest allocations (keeping ≥ 1 per group).
        let g = (0..10).max_by_key(|&g| alloc[g]).expect("ten groups exist");
        assert!(alloc[g] > 1, "cannot shrink catalog below one exam/group");
        alloc[g] -= 1;
        assigned -= 1;
    }

    // Interleave: the k-th exam of every group sits at depth k, so the
    // leading exam of each group is globally common and depth grows rare.
    let mut slots: Vec<(usize, usize)> = Vec::with_capacity(n); // (depth, group)
    for (g, &count) in alloc.iter().enumerate() {
        for depth in 0..count {
            slots.push((depth, g));
        }
    }
    slots.sort_unstable();

    slots
        .into_iter()
        .enumerate()
        .map(|(id, (depth, g))| {
            let group = groups[g];
            let curated = curated_names(group);
            let name = if depth < curated.len() {
                curated[depth].to_owned()
            } else {
                format!("{group} panel {}", depth + 1 - curated.len())
            };
            ExamType::new(ExamTypeId(id as u32), name, group)
        })
        .collect()
}

/// Global popularity weights: shifted Zipf `1/(rank + shift)^s` over
/// the catalog's id order (which [`build_catalog`] arranges from common
/// to rare). The shift flattens the head; see [`SyntheticConfig`].
fn global_popularity(catalog: &[ExamType], exponent: f64, shift_fraction: f64) -> Vec<f64> {
    let n = catalog.len();
    let shift = (shift_fraction * n as f64).max(0.0);
    (1..=n)
        .map(|rank| (rank as f64 + shift).powf(-exponent))
        .collect()
}

/// Panel-partner map: within each condition group, exams pair up in id
/// order (1st↔2nd, 3rd↔4th, …); a trailing odd exam has no partner. The
/// partner relation is symmetric.
fn panel_partners(catalog: &[ExamType]) -> Vec<Option<ExamTypeId>> {
    let mut partner = vec![None; catalog.len()];
    for group in ConditionGroup::ALL {
        let members: Vec<usize> = catalog
            .iter()
            .enumerate()
            .filter(|(_, e)| e.group == group)
            .map(|(i, _)| i)
            .collect();
        for pair in members.chunks_exact(2) {
            partner[pair[0]] = Some(ExamTypeId(pair[1] as u32));
            partner[pair[1]] = Some(ExamTypeId(pair[0] as u32));
        }
    }
    partner
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn catalog_paper_scale() {
        let catalog = build_catalog(159);
        assert_eq!(catalog.len(), 159);
        for (i, e) in catalog.iter().enumerate() {
            assert_eq!(e.id.index(), i);
        }
        // Every group represented.
        for g in ConditionGroup::ALL {
            assert!(catalog.iter().any(|e| e.group == g), "missing group {g}");
        }
        // Names unique.
        let mut names: Vec<&str> = catalog.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 159, "duplicate exam names");
    }

    #[test]
    fn catalog_small_sizes() {
        for n in [10, 23, 60, 159, 300] {
            let catalog = build_catalog(n);
            assert_eq!(catalog.len(), n, "size {n}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one exam per group")]
    fn catalog_rejects_tiny() {
        let _ = build_catalog(5);
    }

    #[test]
    fn panel_partner_symmetric() {
        let catalog = build_catalog(60);
        let partner = panel_partners(&catalog);
        for (i, p) in partner.iter().enumerate() {
            if let Some(j) = p {
                assert_eq!(partner[j.index()], Some(ExamTypeId(i as u32)));
                assert_eq!(catalog[i].group, catalog[j.index()].group);
            }
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let cfg = SyntheticConfig::small();
        let a = generate(&cfg, 7);
        let b = generate(&cfg, 7);
        assert_eq!(a, b);
        let c = generate(&cfg, 8);
        assert_ne!(a.records(), c.records());
    }

    #[test]
    fn small_cohort_shape() {
        let cfg = SyntheticConfig::small();
        let data = generate_with_truth(&cfg, 42);
        assert_eq!(data.log.num_patients(), cfg.num_patients);
        assert_eq!(data.log.num_exam_types(), cfg.num_exam_types);
        assert_eq!(data.true_profile.len(), cfg.num_patients);
        assert_eq!(data.profile_names.len(), cfg.profiles.len());
        let total = data.log.num_records() as f64;
        let target = cfg.target_records as f64;
        assert!(
            (total - target).abs() / target < 0.10,
            "records {total} vs target {target}"
        );
        // All ages in the paper's range.
        for p in data.log.patients() {
            assert!((4..=95).contains(&p.age));
        }
        // Dates confined to the configured year.
        let (lo, hi) = data.log.date_range().unwrap();
        assert_eq!(lo.year(), cfg.year);
        assert_eq!(hi.year(), cfg.year);
    }

    #[test]
    fn long_tail_coverage_points() {
        // The property the paper's partial-mining experiment rests on:
        // top 20% of exam types ≈ 70% of rows, top 40% ≈ 85%.
        let cfg = SyntheticConfig::small();
        let log = generate(&cfg, 1);
        let c20 = stats::coverage_at_fraction(&log, 0.20);
        let c40 = stats::coverage_at_fraction(&log, 0.40);
        assert!((0.50..=0.72).contains(&c20), "coverage@20% = {c20}");
        assert!((0.75..=0.90).contains(&c40), "coverage@40% = {c40}");
        assert!(c40 > c20);
    }

    #[test]
    fn profiles_boost_their_focus_groups() {
        let cfg = SyntheticConfig::small();
        let data = generate_with_truth(&cfg, 3);
        let taxonomy = data.log.taxonomy();
        // Compare cardiovascular share between cardiovascular-risk
        // patients and well-controlled patients.
        let mut share = vec![(0usize, 0usize); cfg.profiles.len()]; // (cardio, total)
        for r in data.log.records() {
            let pi = data.true_profile[r.patient.index()];
            share[pi].1 += 1;
            if taxonomy.group_of(r.exam) == Some(ConditionGroup::Cardiovascular) {
                share[pi].0 += 1;
            }
        }
        let frac = |pi: usize| share[pi].0 as f64 / share[pi].1.max(1) as f64;
        let cardio_profile = cfg
            .profiles
            .iter()
            .position(|p| p.name == "cardiovascular-risk")
            .unwrap();
        let well = cfg
            .profiles
            .iter()
            .position(|p| p.name == "well-controlled")
            .unwrap();
        assert!(
            frac(cardio_profile) > 1.5 * frac(well),
            "cardio share {} vs well-controlled {}",
            frac(cardio_profile),
            frac(well)
        );
    }

    #[test]
    fn sparsity_is_inherent() {
        // The paper stresses the log's "inherently sparse distribution".
        let cfg = SyntheticConfig::small();
        let log = generate(&cfg, 5);
        let s = stats::summarize(&log);
        assert!(s.sparsity > 0.5, "sparsity = {}", s.sparsity);
        assert!(
            s.exam_frequency_gini > 0.4,
            "gini = {}",
            s.exam_frequency_gini
        );
    }
}

#[cfg(test)]
mod slow_tests {
    use super::*;
    use crate::stats;

    /// Paper-scale calibration check; run explicitly with `--ignored`.
    #[test]
    #[ignore = "paper-scale generation (~100k records); run with --ignored"]
    fn paper_scale_calibration() {
        let cfg = SyntheticConfig::paper();
        let log = generate(&cfg, 42);
        assert_eq!(log.num_patients(), 6_380);
        assert_eq!(log.num_exam_types(), 159);
        let total = log.num_records() as f64;
        assert!(
            (total - 95_788.0).abs() / 95_788.0 < 0.05,
            "records {total}"
        );
        let c20 = stats::coverage_at_fraction(&log, 0.20);
        let c40 = stats::coverage_at_fraction(&log, 0.40);
        assert!((0.63..=0.77).contains(&c20), "coverage@20% = {c20}");
        assert!((0.85..=0.95).contains(&c40), "coverage@40% = {c40}");
        let s = stats::summarize(&log);
        assert_eq!(s.age_range, Some((4, 95)));
        assert!(s.sparsity > 0.8, "sparsity {}", s.sparsity);
    }
}
