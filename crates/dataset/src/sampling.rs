//! Small sampling toolkit used by the synthetic generator.
//!
//! The workspace deliberately depends only on `rand`'s core (no
//! `rand_distr`), so the handful of distributions the generator needs are
//! implemented here: Box–Muller normals, Poisson counts, Zipf weights and
//! an alias table for O(1) weighted sampling of exam types.

use rand::Rng;

/// Draws a standard normal via the Box–Muller transform.
pub fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws a normal with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * std_normal(rng)
}

/// Draws a Poisson-distributed count.
///
/// Uses Knuth's product method for small means and a normal approximation
/// (rounded, clamped at 0) for large ones, which is plenty for generating
/// per-patient record counts.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.gen::<f64>();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    } else {
        let x = normal(rng, mean, mean.sqrt());
        x.round().max(0.0) as u64
    }
}

/// Unnormalized Zipf weights `1 / rank^s` for ranks `1..=n`.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (1..=n).map(|rank| (rank as f64).powf(-s)).collect()
}

/// Walker alias table for O(1) sampling from a discrete distribution.
///
/// Construction is O(n); each draw costs one uniform index plus one
/// uniform accept test. The synthetic generator draws ~10⁵ exam types per
/// dataset, and the optimizer's stress benches scale that up further, so
/// constant-time draws matter.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table from non-negative weights.
    ///
    /// # Panics
    /// Panics when `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero — all programming errors in this crate.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "alias table weights must be finite with positive sum"
        );
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "negative or non-finite weight");
        }
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical residue: whatever remains gets probability 1.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no categories (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn std_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| std_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn poisson_mean_matches() {
        let mut rng = StdRng::seed_from_u64(2);
        for target in [0.5, 4.0, 15.0, 80.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| poisson(&mut rng, target)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - target).abs() < target.sqrt() * 0.1 + 0.05,
                "target {target}, mean {mean}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -3.0), 0);
    }

    #[test]
    fn zipf_weights_decreasing() {
        let w = zipf_weights(10, 1.0);
        assert_eq!(w.len(), 10);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn alias_table_matches_weights() {
        let weights = [0.1, 0.0, 0.4, 0.5];
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = [0usize; 4];
        let n = 200_000;
        for _ in 0..n {
            hits[table.sample(&mut rng)] += 1;
        }
        assert_eq!(hits[1], 0, "zero-weight category must never be drawn");
        for (i, &w) in weights.iter().enumerate() {
            let freq = hits[i] as f64 / n as f64;
            assert!((freq - w).abs() < 0.01, "category {i}: {freq} vs {w}");
        }
    }

    #[test]
    fn alias_table_single_category() {
        let table = AliasTable::new(&[3.0]);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn alias_table_rejects_empty() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn alias_table_rejects_all_zero() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }
}
