//! A minimal proleptic-Gregorian calendar date.
//!
//! Examination records in the paper carry "the type and date of every
//! exam". We only need day-level resolution, ordering, day arithmetic and
//! an ISO-8601 textual form for CSV round-trips, so a tiny hand-rolled
//! date type keeps the crate dependency-free.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::DatasetError;

/// Days in each month of a non-leap year.
const MONTH_DAYS: [u8; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// A calendar date (proleptic Gregorian), valid from year 1 to 9999.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    year: u16,
    month: u8,
    day: u8,
}

impl Date {
    /// Creates a date, validating the year/month/day combination.
    ///
    /// # Errors
    /// Returns [`DatasetError::InvalidDate`] when the combination does not
    /// name a real calendar day (e.g. 2015-02-29 or month 13).
    pub fn new(year: u16, month: u8, day: u8) -> Result<Self, DatasetError> {
        if year == 0
            || year > 9999
            || month == 0
            || month > 12
            || day == 0
            || day > days_in_month(year, month)
        {
            return Err(DatasetError::InvalidDate { year, month, day });
        }
        Ok(Self { year, month, day })
    }

    /// The calendar year.
    pub fn year(self) -> u16 {
        self.year
    }

    /// The calendar month (1–12).
    pub fn month(self) -> u8 {
        self.month
    }

    /// The day of the month (1–31).
    pub fn day(self) -> u8 {
        self.day
    }

    /// Day of year, 1-based (January 1st is 1).
    pub fn ordinal(self) -> u16 {
        let mut days = 0u16;
        for m in 1..self.month {
            days += u16::from(days_in_month(self.year, m));
        }
        days + u16::from(self.day)
    }

    /// Builds a date from a year and a 1-based day-of-year ordinal.
    ///
    /// # Errors
    /// Returns [`DatasetError::InvalidDate`] when `ordinal` is 0 or exceeds
    /// the number of days in `year`.
    pub fn from_ordinal(year: u16, ordinal: u16) -> Result<Self, DatasetError> {
        let total = if is_leap(year) { 366 } else { 365 };
        if year == 0 || year > 9999 || ordinal == 0 || ordinal > total {
            return Err(DatasetError::InvalidDate {
                year,
                month: 0,
                day: 0,
            });
        }
        let mut remaining = ordinal;
        for month in 1u8..=12 {
            let len = u16::from(days_in_month(year, month));
            if remaining <= len {
                return Date::new(year, month, remaining as u8);
            }
            remaining -= len;
        }
        unreachable!("ordinal bounds checked above")
    }

    /// Number of days since 0001-01-01 (which maps to 0). Useful as a
    /// total order and for day-difference arithmetic.
    pub fn days_since_epoch(self) -> i64 {
        let y = i64::from(self.year) - 1;
        // Whole years before this one, with Gregorian leap rules.
        let days_in_prior_years = y * 365 + y / 4 - y / 100 + y / 400;
        days_in_prior_years + i64::from(self.ordinal()) - 1
    }

    /// Adds (or subtracts, when negative) a number of days.
    ///
    /// # Errors
    /// Returns [`DatasetError::InvalidDate`] when the result falls outside
    /// the supported year range (1–9999).
    pub fn add_days(self, delta: i64) -> Result<Self, DatasetError> {
        let target = self.days_since_epoch() + delta;
        Date::from_days_since_epoch(target)
    }

    /// Inverse of [`Date::days_since_epoch`].
    ///
    /// # Errors
    /// Returns [`DatasetError::InvalidDate`] when `days` falls outside the
    /// supported year range.
    pub fn from_days_since_epoch(days: i64) -> Result<Self, DatasetError> {
        if days < 0 {
            return Err(DatasetError::InvalidDate {
                year: 0,
                month: 0,
                day: 0,
            });
        }
        // 400-year Gregorian cycle = 146_097 days.
        let mut year = 1u32 + (days / 146_097) as u32 * 400;
        let mut remaining = days % 146_097;
        loop {
            let len = if is_leap(year as u16) { 366 } else { 365 };
            if remaining < len {
                break;
            }
            remaining -= len;
            year += 1;
            if year > 9999 {
                return Err(DatasetError::InvalidDate {
                    year: 9999,
                    month: 0,
                    day: 0,
                });
            }
        }
        Date::from_ordinal(year as u16, remaining as u16 + 1)
    }

    /// Difference in days (`self - other`).
    pub fn days_between(self, other: Date) -> i64 {
        self.days_since_epoch() - other.days_since_epoch()
    }
}

/// True when `year` is a Gregorian leap year.
pub fn is_leap(year: u16) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

/// Number of days in the given month of the given year.
pub fn days_in_month(year: u16, month: u8) -> u8 {
    if month == 2 && is_leap(year) {
        29
    } else {
        MONTH_DAYS[(month - 1) as usize]
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl FromStr for Date {
    type Err = DatasetError;

    /// Parses an ISO-8601 `YYYY-MM-DD` date.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('-');
        let bad = || DatasetError::DateParse(s.to_owned());
        let year: u16 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let month: u8 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let day: u8 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if parts.next().is_some() {
            return Err(bad());
        }
        Date::new(year, month, day).map_err(|_| bad())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs_valid_dates() {
        let d = Date::new(2015, 6, 30).unwrap();
        assert_eq!((d.year(), d.month(), d.day()), (2015, 6, 30));
    }

    #[test]
    fn rejects_invalid_dates() {
        assert!(Date::new(2015, 2, 29).is_err()); // not a leap year
        assert!(Date::new(2016, 2, 29).is_ok()); // leap year
        assert!(Date::new(2015, 13, 1).is_err());
        assert!(Date::new(2015, 0, 1).is_err());
        assert!(Date::new(2015, 4, 31).is_err());
        assert!(Date::new(0, 1, 1).is_err());
    }

    #[test]
    fn ordinal_round_trip() {
        for year in [2015u16, 2016] {
            let total = if is_leap(year) { 366 } else { 365 };
            for ord in 1..=total {
                let d = Date::from_ordinal(year, ord).unwrap();
                assert_eq!(d.ordinal(), ord, "year {year} ordinal {ord}");
            }
        }
    }

    #[test]
    fn epoch_round_trip() {
        for (y, m, d) in [
            (1u16, 1u8, 1u8),
            (2015, 3, 14),
            (2016, 2, 29),
            (9999, 12, 31),
        ] {
            let date = Date::new(y, m, d).unwrap();
            let back = Date::from_days_since_epoch(date.days_since_epoch()).unwrap();
            assert_eq!(date, back);
        }
    }

    #[test]
    fn day_arithmetic() {
        let d = Date::new(2015, 12, 31).unwrap();
        assert_eq!(d.add_days(1).unwrap(), Date::new(2016, 1, 1).unwrap());
        assert_eq!(d.add_days(-365).unwrap(), Date::new(2014, 12, 31).unwrap());
        let a = Date::new(2016, 3, 1).unwrap();
        let b = Date::new(2016, 2, 28).unwrap();
        assert_eq!(a.days_between(b), 2); // leap day in between
    }

    #[test]
    fn ordering_follows_calendar() {
        let a = Date::new(2015, 1, 31).unwrap();
        let b = Date::new(2015, 2, 1).unwrap();
        let c = Date::new(2016, 1, 1).unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn display_and_parse_round_trip() {
        let d = Date::new(2015, 7, 4).unwrap();
        let s = d.to_string();
        assert_eq!(s, "2015-07-04");
        assert_eq!(s.parse::<Date>().unwrap(), d);
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "2015", "2015-1", "2015-02-30", "a-b-c", "2015-07-04-1"] {
            assert!(s.parse::<Date>().is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap(2016));
        assert!(!is_leap(2015));
        assert!(!is_leap(1900));
        assert!(is_leap(2000));
    }
}
