//! Property tests: calendar arithmetic, CSV round-trips, statistics
//! bounds.

use ada_dataset::record::{ExamRecord, ExamType, ExamTypeId, Patient, PatientId};
use ada_dataset::taxonomy::ConditionGroup;
use ada_dataset::{io, stats, Date, ExamLog};
use proptest::prelude::*;

fn valid_date() -> impl Strategy<Value = Date> {
    (1u16..=9999, 1u8..=12, 1u8..=31)
        .prop_filter_map("valid calendar day", |(y, m, d)| Date::new(y, m, d).ok())
}

proptest! {
    #[test]
    fn date_epoch_round_trip(date in valid_date()) {
        let days = date.days_since_epoch();
        prop_assert_eq!(Date::from_days_since_epoch(days).unwrap(), date);
    }

    #[test]
    fn date_ordinal_round_trip(date in valid_date()) {
        let back = Date::from_ordinal(date.year(), date.ordinal()).unwrap();
        prop_assert_eq!(back, date);
    }

    #[test]
    fn date_string_round_trip(date in valid_date()) {
        let parsed: Date = date.to_string().parse().unwrap();
        prop_assert_eq!(parsed, date);
    }

    #[test]
    fn date_add_days_inverts(date in valid_date(), delta in -3000i64..3000) {
        if let Ok(moved) = date.add_days(delta) {
            prop_assert_eq!(moved.days_between(date), delta);
            prop_assert_eq!(moved.add_days(-delta).unwrap(), date);
        }
    }

    #[test]
    fn date_ordering_matches_epoch(a in valid_date(), b in valid_date()) {
        prop_assert_eq!(
            a.cmp(&b),
            a.days_since_epoch().cmp(&b.days_since_epoch())
        );
    }

    #[test]
    fn gini_and_entropy_bounds(counts in prop::collection::vec(0usize..1000, 1..50)) {
        let g = stats::gini(&counts);
        prop_assert!((-1e-9..=1.0).contains(&g), "gini {}", g);
        let h = stats::entropy(&counts);
        let n = counts.iter().filter(|&&c| c > 0).count().max(1);
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (n as f64).ln() + 1e-9, "entropy {} exceeds ln({})", h, n);
    }

    #[test]
    fn coverage_curve_is_monotone_cdf(
        pairs in prop::collection::vec((0u32..8, 0u32..10), 1..60),
    ) {
        let np = pairs.iter().map(|p| p.0).max().unwrap() + 1;
        let ne = pairs.iter().map(|p| p.1).max().unwrap() + 1;
        let patients = (0..np).map(|i| Patient::new(PatientId(i), 50).unwrap()).collect();
        let catalog = (0..ne)
            .map(|i| ExamType::new(ExamTypeId(i), format!("e{i}"), ConditionGroup::GeneralLab))
            .collect();
        let mut log = ExamLog::new(patients, catalog).unwrap();
        let d = Date::new(2015, 6, 1).unwrap();
        for &(p, e) in &pairs {
            log.push_record(ExamRecord::new(PatientId(p), ExamTypeId(e), d)).unwrap();
        }
        let curve = stats::coverage_curve(&log);
        prop_assert_eq!(curve.len(), ne as usize + 1);
        prop_assert_eq!(curve[0], 0.0);
        prop_assert!((curve.last().unwrap() - 1.0).abs() < 1e-9);
        for w in curve.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn csv_round_trip_arbitrary_names(
        names in prop::collection::vec("[ -~]{1,20}", 1..10),
    ) {
        let catalog: Vec<ExamType> = names
            .iter()
            .enumerate()
            .map(|(i, n)| ExamType::new(ExamTypeId(i as u32), n.clone(), ConditionGroup::Imaging))
            .collect();
        let mut buf = Vec::new();
        io::write_catalog(&mut buf, &catalog).unwrap();
        let back = io::read_catalog(&buf[..]).unwrap();
        prop_assert_eq!(back, catalog);
    }

    #[test]
    fn records_csv_round_trip(
        rows in prop::collection::vec((0u32..50, 0u32..30), 0..40),
        date in valid_date(),
    ) {
        let records: Vec<ExamRecord> = rows
            .iter()
            .map(|&(p, e)| ExamRecord::new(PatientId(p), ExamTypeId(e), date))
            .collect();
        let mut buf = Vec::new();
        io::write_records(&mut buf, &records).unwrap();
        let back = io::read_records(&buf[..]).unwrap();
        prop_assert_eq!(back, records);
    }

    #[test]
    fn filters_partition_records(
        pairs in prop::collection::vec((0u32..6, 0u32..8), 1..50),
        keep_exam in 0u32..8,
    ) {
        let patients = (0..6).map(|i| Patient::new(PatientId(i), 40).unwrap()).collect();
        let catalog = (0..8)
            .map(|i| ExamType::new(ExamTypeId(i), format!("e{i}"), ConditionGroup::Lipid))
            .collect();
        let mut log = ExamLog::new(patients, catalog).unwrap();
        let d = Date::new(2015, 1, 1).unwrap();
        for &(p, e) in &pairs {
            log.push_record(ExamRecord::new(PatientId(p), ExamTypeId(e), d)).unwrap();
        }
        // Keeping one exam type + keeping the rest partitions the log.
        let kept = log.filter_by_exams(&[ExamTypeId(keep_exam)]);
        let rest: Vec<ExamTypeId> = (0..8)
            .filter(|&e| e != keep_exam)
            .map(ExamTypeId)
            .collect();
        let others = log.filter_by_exams(&rest);
        prop_assert_eq!(kept.num_records() + others.num_records(), log.num_records());
    }
}
