//! The signal workload's cross-execution determinism proof: the same
//! fleet of safety-signal jobs leaves FNV-identical `signal_knowledge`
//! state whether it runs serially in-process, 8-way concurrent, or
//! remotely over the wire protocol.
//!
//! Signal documents never embed K-DB document ids, so the per-session
//! document sequences are comparable across arms even though concurrent
//! sessions interleave id allocation.

use std::sync::Arc;
use std::time::Duration;

use ada_kdb::journal::Op;
use ada_kdb::schema::names;
use ada_kdb::{Filter, Kdb, SharedKdb, Value};
use ada_net::proto::{CohortSpec, Preset, Request, Response, WireJobSpec};
use ada_net::{Client, NetConfig, NetServer};
use ada_service::{AnalysisService, ServiceConfig, SessionState};

const DEADLINE: Duration = Duration::from_secs(120);
const FLEET: usize = 6;

fn signal_spec(i: usize) -> WireJobSpec {
    let mut spec = WireJobSpec::quick(
        format!("sig-{i}"),
        CohortSpec {
            patients: 120,
            exam_types: 20,
            records: 1_500,
            seed: 700 + i as u64,
        },
    );
    spec.preset = Preset::Signals;
    spec.seed = 40 + i as u64;
    spec
}

fn config(workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        queue_capacity: 16,
        ..ServiceConfig::default()
    }
}

fn fnv(hash: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *hash ^= u64::from(*b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// FNV-1a over every canonical state op except the `sessions`
/// collection (timing-bearing records). Id-sensitive: only comparable
/// between arms with deterministic execution order (1 worker).
fn fingerprint_excluding(kdb: &SharedKdb, skip: &str) -> u64 {
    let guard = kdb.read();
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut buf = String::new();
    for op in guard.state_ops() {
        let name = match &op {
            Op::CreateCollection { name }
            | Op::CreateIndex { name, .. }
            | Op::Insert { name, .. }
            | Op::Update { name, .. }
            | Op::Delete { name, .. } => name,
        };
        if name == skip {
            continue;
        }
        buf.clear();
        op.encode_into(&mut buf);
        fnv(&mut hash, buf.as_bytes());
    }
    hash
}

/// FNV-1a over the per-session `signal_knowledge` document sequences in
/// session order. The store-assigned `_id` field is stripped (document
/// id allocation interleaves across concurrent sessions); per-session
/// document order (the rank order they were persisted in) is preserved.
/// Interleaving-invariant, so it is the digest the concurrent arm is
/// held to.
fn signal_state_fingerprint(kdb: &SharedKdb) -> u64 {
    let guard = kdb.read();
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut buf = String::new();
    for i in 0..FLEET {
        let docs = guard
            .find(
                names::SIGNAL_KNOWLEDGE,
                &Filter::eq("session", format!("sig-{i}")),
            )
            .unwrap();
        assert!(!docs.is_empty(), "sig-{i} emitted no signals");
        for (_, mut doc) in docs {
            doc.remove("_id");
            buf.clear();
            Value::Doc(doc).encode_into(&mut buf);
            fnv(&mut hash, buf.as_bytes());
        }
    }
    hash
}

fn run_in_process(workers: usize) -> SharedKdb {
    let service = AnalysisService::with_kdb(config(workers), Kdb::in_memory());
    let ids: Vec<_> = (0..FLEET)
        .map(|i| service.submit(signal_spec(i).materialize()).unwrap())
        .collect();
    for id in ids {
        let state = service.wait(id).unwrap();
        match state {
            SessionState::Completed(outcome) => {
                let report = outcome.signals().expect("signals workload");
                assert!(!report.signals.is_empty());
            }
            other => panic!("expected Completed, got {other:?}"),
        }
    }
    let kdb = service.kdb();
    service.shutdown();
    kdb
}

#[test]
fn signal_state_is_identical_serial_concurrent_and_remote() {
    // Remote arm: one worker server-side, six wire clients.
    let remote_service = Arc::new(AnalysisService::with_kdb(config(1), Kdb::in_memory()));
    let server = NetServer::start(Arc::clone(&remote_service), NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut sessions = Vec::new();
    for i in 0..FLEET {
        let mut client = Client::connect(addr).unwrap();
        match client.call(Request::Submit(signal_spec(i))).unwrap() {
            Response::Submitted { session } => sessions.push((session, client)),
            other => panic!("expected Submitted, got {other:?}"),
        }
    }
    for (session, client) in &mut sessions {
        let (state, reason) = client.wait_terminal(*session, DEADLINE).unwrap();
        assert_eq!(state, "completed", "session {session}: {reason}");
        match client.call(Request::Results { session: *session }).unwrap() {
            Response::ResultSummary { summary, .. } => {
                assert!(summary.get("signals").and_then(Value::as_i64).unwrap() > 0);
                assert!(summary.get("tables_built").and_then(Value::as_i64).unwrap() > 0);
                assert!(!summary
                    .get("top_exposure")
                    .and_then(Value::as_str)
                    .unwrap()
                    .is_empty());
            }
            other => panic!("expected ResultSummary, got {other:?}"),
        }
    }
    // Signal sessions feed the service-level signal counters, and the
    // pinned Prometheus families travel in the wire exposition.
    let exposition = match sessions[0].1.call(Request::MetricsSnapshot).unwrap() {
        Response::Metrics { prometheus, .. } => prometheus,
        other => panic!("expected Metrics, got {other:?}"),
    };
    for family in [
        "ada_signals_tables_built_total",
        "ada_signals_zero_cell_corrections_total",
        "ada_signals_shrinkage_iterations_total",
        "ada_signals_emitted_total",
    ] {
        assert!(exposition.contains(family), "exposition missing {family}");
    }
    let snap = remote_service.metrics();
    assert!(snap.signals_tables_built > 0);
    assert!(snap.signals_emitted > 0);
    let net = server.shutdown();
    assert_eq!(net.protocol_errors, 0);
    let remote_kdb = remote_service.kdb();

    // Serial and 8-way concurrent in-process arms, same specs.
    let serial_kdb = run_in_process(1);
    let concurrent_kdb = run_in_process(8);

    // 1-worker arms execute in submission order on both sides of the
    // wire, so the whole store (ids included) must match byte-for-byte.
    assert_eq!(
        fingerprint_excluding(&remote_kdb, "sessions"),
        fingerprint_excluding(&serial_kdb, "sessions"),
        "remote and serial signal fleets diverged in K-DB state"
    );
    // The concurrent arm interleaves id allocation, so it is held to
    // the id-free signal-state digest — which must match exactly.
    let reference = signal_state_fingerprint(&serial_kdb);
    assert_eq!(
        signal_state_fingerprint(&concurrent_kdb),
        reference,
        "concurrency changed signal results"
    );
    assert_eq!(signal_state_fingerprint(&remote_kdb), reference);
}
