//! Property tests for the ADAN1 wire layer: frame round-trips under
//! arbitrary chunking, single-bit corruption detection, message codec
//! identity over every request/response variant, and no-panic on
//! adversarial byte streams.

use std::time::Duration;

use ada_kdb::{Document, Value};
use ada_net::proto::{CohortSpec, Preset, Request, Response, WireJobSpec};
use ada_net::{frame_bytes, Decoded, FrameDecoder, FrameError};
use ada_obs::TraceContext;
use ada_service::Priority;
use proptest::prelude::*;

/// Drains every complete frame the decoder currently holds.
fn drain(dec: &mut FrameDecoder) -> Result<Vec<Vec<u8>>, FrameError> {
    let mut out = Vec::new();
    loop {
        match dec.next_frame()? {
            Decoded::Frame(p) => out.push(p),
            Decoded::NeedMore => return Ok(out),
        }
    }
}

fn cohort_strategy() -> impl Strategy<Value = CohortSpec> {
    (10usize..200, 2usize..30, 50usize..2000, any::<u64>()).prop_map(
        |(patients, exam_types, records, seed)| CohortSpec {
            patients,
            exam_types,
            records,
            seed,
        },
    )
}

fn trace_strategy() -> impl Strategy<Value = TraceContext> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()).prop_map(
        |(trace_hi, trace_lo, span_id, sampled)| TraceContext {
            trace_hi,
            trace_lo,
            span_id,
            sampled,
        },
    )
}

fn spec_strategy() -> impl Strategy<Value = WireJobSpec> {
    (
        (
            "[a-z0-9-]{1,16}",
            prop_oneof![Just(Preset::Quick), Just(Preset::Paper)],
            any::<u64>(),
            cohort_strategy(),
        ),
        (
            prop_oneof![
                Just(Priority::Low),
                Just(Priority::Normal),
                Just(Priority::High)
            ],
            prop_oneof![Just(None::<u64>), (0u64..100_000).prop_map(Some)],
            0u32..5,
            0u32..3,
            prop_oneof![Just(None), trace_strategy().prop_map(Some)],
        ),
    )
        .prop_map(
            |(
                (session, preset, seed, cohort),
                (priority, timeout_ms, max_retries, inject, trace),
            )| {
                WireJobSpec {
                    session,
                    preset,
                    seed,
                    cohort,
                    priority,
                    timeout: timeout_ms.map(Duration::from_millis),
                    max_retries,
                    inject_failures: inject,
                    trace,
                }
            },
        )
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        spec_strategy().prop_map(Request::Submit),
        any::<u64>().prop_map(|session| Request::Status { session }),
        any::<u64>().prop_map(|session| Request::Cancel { session }),
        any::<u64>().prop_map(|session| Request::Results { session }),
        Just(Request::PastSessions),
        prop_oneof![Just(None), "[a-z0-9-]{1,16}".prop_map(Some)]
            .prop_map(|session| Request::TraceQuery { session }),
        Just(Request::Health),
        Just(Request::MetricsSnapshot),
    ]
}

fn document_strategy() -> impl Strategy<Value = Document> {
    prop::collection::btree_map(
        "[a-z_]{1,8}",
        prop_oneof![
            any::<i64>().prop_map(Value::I64),
            any::<bool>().prop_map(Value::Bool),
            "[ -~]{0,12}".prop_map(Value::Str),
        ],
        0..5,
    )
    .prop_map(|m| {
        let mut d = Document::new();
        for (k, v) in m {
            d.set(k, v);
        }
        d
    })
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        any::<u64>().prop_map(|session| Response::Submitted { session }),
        (any::<u64>(), "[a-z_]{1,10}", "[ -~]{0,24}").prop_map(|(session, state, reason)| {
            Response::State {
                session,
                state,
                reason,
            }
        }),
        any::<u64>().prop_map(|session| Response::Cancelled { session }),
        (any::<u64>(), "[a-z_]{1,10}", document_strategy()).prop_map(
            |(session, state, summary)| Response::ResultSummary {
                session,
                state,
                summary,
            }
        ),
        prop::collection::vec(document_strategy(), 0..4)
            .prop_map(|sessions| Response::PastSessions { sessions }),
        prop::collection::vec(document_strategy(), 0..4)
            .prop_map(|traces| Response::Traces { traces }),
        document_strategy().prop_map(|doc| Response::Health { doc }),
        (document_strategy(), "[ -~]{0,40}")
            .prop_map(|(doc, prometheus)| Response::Metrics { doc, prometheus }),
        // Decode clamps retry_after_ms fail-closed to MAX_RETRY_AFTER_MS,
        // so only in-range hints round-trip identically.
        (0u64..=ada_net::proto::MAX_RETRY_AFTER_MS as u64).prop_map(|ms| Response::Busy {
            retry_after: Duration::from_millis(ms)
        }),
        "[ -~]{0,24}".prop_map(|detail| Response::Degraded { detail }),
        ("[a-z_]{1,10}", "[ -~]{0,24}")
            .prop_map(|(code, message)| Response::Error { code, message }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Any frame sequence survives any chunking of the byte stream.
    #[test]
    fn frames_round_trip_under_arbitrary_chunking(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 1..6),
        chunk in 1usize..64,
    ) {
        let mut stream = Vec::new();
        for (seq, p) in payloads.iter().enumerate() {
            stream.extend_from_slice(&frame_bytes(p, seq as u64));
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.push(piece);
            got.extend(drain(&mut dec).unwrap());
        }
        prop_assert_eq!(got, payloads);
        prop_assert_eq!(dec.buffered(), 0);
    }

    // Flipping any single bit in a framed stream never yields an
    // altered payload: frames before the flip decode intact, the
    // flipped frame is rejected loudly or left torn (the lone benign
    // exception is a case-toggling flip inside the hex checksum field,
    // which leaves the payload byte-identical anyway).
    #[test]
    fn single_bit_corruption_never_yields_an_altered_frame(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..120), 1..5),
        flip_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut stream = Vec::new();
        let mut frame_starts = Vec::new();
        for (seq, p) in payloads.iter().enumerate() {
            frame_starts.push(stream.len());
            stream.extend_from_slice(&frame_bytes(p, seq as u64));
        }
        let pos = (flip_seed as usize) % stream.len();
        stream[pos] ^= 1 << bit;
        // Which frame did the flip land in?
        let corrupted = frame_starts
            .iter()
            .rposition(|&s| s <= pos)
            .expect("flip lands in some frame");

        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        let mut got = Vec::new();
        while let Ok(Decoded::Frame(p)) = dec.next_frame() {
            got.push(p);
        }
        // Frames before the flip always decode; nothing decodes altered.
        prop_assert!(got.len() >= corrupted, "lost pristine frames before the flip");
        prop_assert!(got.len() <= payloads.len());
        for (i, p) in got.iter().enumerate() {
            prop_assert_eq!(
                p,
                &payloads[i],
                "frame {} silently altered by flip at byte {}",
                i,
                pos
            );
        }
    }

    // The decoder never panics on adversarial input, and stays able to
    // decode a pristine frame that precedes the garbage.
    #[test]
    fn adversarial_streams_never_panic(
        garbage in prop::collection::vec(any::<u8>(), 0..300),
        chunk in 1usize..32,
    ) {
        let mut dec = FrameDecoder::new();
        for piece in garbage.chunks(chunk) {
            dec.push(piece);
            // Errors are fine (and sticky); panics are not.
            while let Ok(Decoded::Frame(_)) = dec.next_frame() {}
        }
        // Same bytes appended after a real frame: the real frame decodes.
        let mut dec = FrameDecoder::new();
        dec.push(&frame_bytes(b"real", 0));
        dec.push(&garbage);
        prop_assert_eq!(dec.next_frame().unwrap(), Decoded::Frame(b"real".to_vec()));
    }

    // Request messages survive encode → frame → deframe → decode.
    // (Ids ride the wire as I64, so the id domain is 1..=i64::MAX —
    // counters starting at 1 never leave it.)
    #[test]
    fn requests_round_trip_through_frames(req in request_strategy(), id in 1u64..i64::MAX as u64) {
        let framed = frame_bytes(&req.encode(id), 0);
        let mut dec = FrameDecoder::new();
        dec.push(&framed);
        let payload = match dec.next_frame().unwrap() {
            Decoded::Frame(p) => p,
            Decoded::NeedMore => panic!("complete frame did not decode"),
        };
        let (got_id, got) = Request::decode(&payload).unwrap();
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got, req);
    }

    // Response messages survive encode → frame → deframe → decode,
    // including deep into a connection's sequence space.
    #[test]
    fn responses_round_trip_through_frames(resp in response_strategy(), id in 1u64..i64::MAX as u64) {
        let mut dec = FrameDecoder::new();
        for seq in 0..7u64 {
            dec.push(&frame_bytes(b"pad", seq));
            prop_assert!(matches!(dec.next_frame().unwrap(), Decoded::Frame(_)));
        }
        dec.push(&frame_bytes(&resp.encode(id), 7));
        let payload = match dec.next_frame().unwrap() {
            Decoded::Frame(p) => p,
            Decoded::NeedMore => panic!("complete frame did not decode"),
        };
        let (got_id, got) = Response::decode(&payload).unwrap();
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got, resp);
    }

    // Arbitrary bytes fed to the message decoders are typed errors,
    // never panics.
    #[test]
    fn garbage_messages_are_typed_errors(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    // A trace context riding a submit survives any chunking of the
    // framed byte stream bit-for-bit: same 128-bit trace id, span id,
    // and sampling decision on the far side.
    #[test]
    fn trace_context_round_trips_under_arbitrary_chunking(
        spec in spec_strategy(),
        ctx in trace_strategy(),
        chunk in 1usize..48,
    ) {
        let sent = spec.with_trace(ctx);
        let framed = frame_bytes(&Request::Submit(sent.clone()).encode(1), 0);
        let mut dec = FrameDecoder::new();
        let mut payloads = Vec::new();
        for piece in framed.chunks(chunk) {
            dec.push(piece);
            payloads.extend(drain(&mut dec).unwrap());
        }
        prop_assert_eq!(payloads.len(), 1);
        let (_, got) = Request::decode(&payloads[0]).unwrap();
        match got {
            Request::Submit(got_spec) => {
                prop_assert_eq!(got_spec.trace, Some(ctx));
                prop_assert_eq!(got_spec, sent);
            }
            other => prop_assert!(false, "expected Submit, got {}", other.kind()),
        }
    }

    // Flipping any single bit in a traced submit's frame never yields
    // an *altered* trace context on the far side: the frame either
    // fails checksum/framing (or decodes byte-identically, the benign
    // checksum-hex case), so any context that does decode is exactly
    // the one that was sent. A flipped bit can reroute an analysis
    // request's identity only by being caught.
    #[test]
    fn single_bit_corruption_never_alters_a_trace_context(
        spec in spec_strategy(),
        ctx in trace_strategy(),
        flip_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let sent = spec.with_trace(ctx);
        let mut framed = frame_bytes(&Request::Submit(sent).encode(1), 0);
        let pos = (flip_seed as usize) % framed.len();
        framed[pos] ^= 1 << bit;
        let mut dec = FrameDecoder::new();
        dec.push(&framed);
        if let Ok(Decoded::Frame(payload)) = dec.next_frame() {
            // Survived the checksum: the payload must be byte-identical,
            // so a successfully decoded context is the one sent.
            if let Ok((_, Request::Submit(got_spec))) = Request::decode(&payload) {
                prop_assert_eq!(
                    got_spec.trace,
                    Some(ctx),
                    "bit flip at byte {} altered a trace context that still decoded",
                    pos
                );
            }
        }
    }
}
