//! Loopback integration: the wire must be semantically transparent.
//!
//! - A fleet submitted by remote clients leaves the K-DB in exactly the
//!   state the same fleet submitted in-process does (timing-bearing
//!   session records aside).
//! - Backpressure, cancellation, pool-capacity rejection, and sticky
//!   degraded mode all cross the wire as their typed responses — no
//!   client ever hangs on them.
//! - The combined Prometheus exposition keeps the service's stable
//!   series names and adds the `ada_net_*` family.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use ada_core::{PipelineObserver, PipelineStage};
use ada_kdb::journal::Op;
use ada_kdb::{
    DurabilityPolicy, FaultKind, FaultyStorage, Kdb, MemStorage, SharedKdb, StoreOptions, Value,
};
use ada_net::proto::{CohortSpec, Request, Response, WireJobSpec};
use ada_net::{AsyncClient, Client, NetConfig, NetError, NetServer};
use ada_service::{AnalysisService, ServiceConfig, DEFAULT_TRACE_SEED};

/// Overall deadline for any single wait in these tests: generous, but
/// finite — a hang is a failure, not a timeout of the harness.
const DEADLINE: Duration = Duration::from_secs(120);

fn quick_spec(i: usize) -> WireJobSpec {
    WireJobSpec::quick(format!("loop-{i}"), CohortSpec::small(400 + i as u64))
}

/// FNV-1a over the canonical encodings of `state_ops`, skipping the
/// named collections — the same digest as `Kdb::fingerprint`, minus the
/// timing-bearing session (and trace) records.
fn fingerprint_excluding(kdb: &SharedKdb, skip: &[&str]) -> u64 {
    let guard = kdb.read();
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut buf = String::new();
    for op in guard.state_ops() {
        let name = match &op {
            Op::CreateCollection { name }
            | Op::CreateIndex { name, .. }
            | Op::Insert { name, .. }
            | Op::Update { name, .. }
            | Op::Delete { name, .. } => name,
        };
        if skip.contains(&name.as_str()) {
            continue;
        }
        buf.clear();
        op.encode_into(&mut buf);
        for b in buf.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

/// `(session, state)` pairs from persisted session records, sorted —
/// the timing-free projection both fleets must agree on.
fn session_outcomes(docs: &[ada_kdb::Document]) -> Vec<(String, String)> {
    let mut rows: Vec<(String, String)> = docs
        .iter()
        .map(|d| {
            (
                d.get("session").and_then(Value::as_str).unwrap().to_owned(),
                d.get("state").and_then(Value::as_str).unwrap().to_owned(),
            )
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn remote_fleet_matches_in_process_fleet() {
    // Single worker on both sides: execution order is then a pure
    // function of submission order, so document ids line up and the
    // K-DB comparison can be exact.
    let config = || ServiceConfig {
        workers: 1,
        queue_capacity: 16,
        ..ServiceConfig::default()
    };

    // Remote arm: eight clients, one connection each.
    let remote_service = Arc::new(AnalysisService::with_kdb(config(), Kdb::in_memory()));
    let server = NetServer::start(Arc::clone(&remote_service), NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut remote_sessions = Vec::new();
    for i in 0..8 {
        let mut client = Client::connect(addr).unwrap();
        match client.call(Request::Submit(quick_spec(i))).unwrap() {
            Response::Submitted { session } => remote_sessions.push((session, client)),
            other => panic!("expected Submitted, got {other:?}"),
        }
    }
    for (session, client) in &mut remote_sessions {
        let (state, reason) = client.wait_terminal(*session, DEADLINE).unwrap();
        assert_eq!(state, "completed", "session {session}: {reason}");
        // Results carries a non-empty summary for completed sessions.
        match client.call(Request::Results { session: *session }).unwrap() {
            Response::ResultSummary { state, summary, .. } => {
                assert_eq!(state, "completed");
                assert!(summary.get("clusters").and_then(Value::as_i64).unwrap() > 0);
                assert!(summary.get("selected_k").and_then(Value::as_i64).unwrap() > 0);
            }
            other => panic!("expected ResultSummary, got {other:?}"),
        }
    }
    let remote_past = match remote_sessions[0].1.call(Request::PastSessions).unwrap() {
        Response::PastSessions { sessions } => sessions,
        other => panic!("expected PastSessions, got {other:?}"),
    };
    let net = server.shutdown();
    assert_eq!(
        net.protocol_errors, 0,
        "loopback fleet must be protocol-clean"
    );
    assert_eq!(net.accepts, 8);
    let remote_kdb = remote_service.kdb();

    // In-process arm: the same specs, materialized by the same code.
    let local_service = AnalysisService::with_kdb(config(), Kdb::in_memory());
    let ids: Vec<_> = (0..8)
        .map(|i| local_service.submit(quick_spec(i).materialize()).unwrap())
        .collect();
    for id in ids {
        assert!(matches!(
            local_service.wait(id).unwrap(),
            ada_service::SessionState::Completed(_)
        ));
    }
    let local_past = local_service.past_sessions();
    let local_kdb = local_service.kdb();
    local_service.shutdown();

    // Byte-identical knowledge state (session records excluded: they
    // embed wall-clock spans)...
    assert_eq!(
        fingerprint_excluding(&remote_kdb, &["sessions"]),
        fingerprint_excluding(&local_kdb, &["sessions"]),
        "remote and in-process fleets diverged in K-DB state"
    );
    // ...and structurally identical session records.
    assert_eq!(
        session_outcomes(&remote_past),
        session_outcomes(&local_past)
    );
    assert_eq!(remote_past.len(), 8);
}

/// Parks every session at its first stage until released, so the tests
/// can hold the lone worker busy while filling the queue behind it.
#[derive(Default)]
struct GateObserver {
    started: AtomicUsize,
    open: Mutex<bool>,
    bell: Condvar,
}

impl GateObserver {
    fn wait_for_start(&self) {
        while self.started.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
    }
    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.bell.notify_all();
    }
}

impl PipelineObserver for GateObserver {
    fn on_stage_start(&self, _session: &str, stage: PipelineStage) {
        if stage != PipelineStage::Characterize {
            return;
        }
        self.started.fetch_add(1, Ordering::Release);
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.bell.wait(open).unwrap();
        }
    }
}

#[test]
fn busy_cancel_and_unknown_session_cross_the_wire_typed() {
    let gate = Arc::new(GateObserver::default());
    let service = Arc::new(AnalysisService::with_kdb(
        ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            observer: Some(gate.clone()),
            ..ServiceConfig::default()
        },
        Kdb::in_memory(),
    ));
    let server = NetServer::start(Arc::clone(&service), NetConfig::default()).unwrap();
    // Retry disabled: this test asserts the *raw* Busy backpressure
    // signal; the auto-retry layer would otherwise keep re-submitting.
    let client = AsyncClient::connect(server.local_addr())
        .unwrap()
        .without_busy_retry();

    // One running (parked at the gate), one queued, and the third
    // submission bounces with typed retry guidance — all multiplexed
    // over a single connection.
    let running = match client
        .call(Request::Submit(quick_spec(0)), DEADLINE)
        .unwrap()
    {
        Response::Submitted { session } => session,
        other => panic!("expected Submitted, got {other:?}"),
    };
    gate.wait_for_start();
    let queued = match client
        .call(Request::Submit(quick_spec(1)), DEADLINE)
        .unwrap()
    {
        Response::Submitted { session } => session,
        other => panic!("expected Submitted, got {other:?}"),
    };
    match client
        .call(Request::Submit(quick_spec(2)), DEADLINE)
        .unwrap()
    {
        Response::Busy { retry_after } => {
            assert!(retry_after >= Duration::from_millis(25));
            assert!(retry_after <= Duration::from_secs(30));
        }
        other => panic!("expected Busy, got {other:?}"),
    }

    // Cancel the queued session remotely; in-flight status queries keep
    // answering while the first session is still parked.
    match client
        .call(Request::Cancel { session: queued }, DEADLINE)
        .unwrap()
    {
        Response::Cancelled { session } => assert_eq!(session, queued),
        other => panic!("expected Cancelled, got {other:?}"),
    }
    match client
        .call(Request::Status { session: running }, DEADLINE)
        .unwrap()
    {
        Response::State { state, .. } => assert_eq!(state, "running"),
        other => panic!("expected State, got {other:?}"),
    }
    match client
        .call(Request::Status { session: 99_999 }, DEADLINE)
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, "unknown_session"),
        other => panic!("expected Error, got {other:?}"),
    }

    gate.release();
    // Both sessions resolve; poll the multiplexed tickets to terminal.
    let mut done = false;
    let deadline = std::time::Instant::now() + DEADLINE;
    while !done {
        assert!(
            std::time::Instant::now() < deadline,
            "sessions never terminal"
        );
        let run = client
            .call(Request::Status { session: running }, DEADLINE)
            .unwrap();
        let q = client
            .call(Request::Status { session: queued }, DEADLINE)
            .unwrap();
        match (run, q) {
            (Response::State { state: s1, .. }, Response::State { state: s2, .. }) => {
                done = s1 == "completed" && s2 == "cancelled";
            }
            other => panic!("expected two States, got {other:?}"),
        }
        if !done {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    let net = server.shutdown();
    assert_eq!(net.protocol_errors, 0);
    drop(service);
}

#[test]
fn busy_auto_retry_rides_through_transient_backpressure() {
    let gate = Arc::new(GateObserver::default());
    let service = Arc::new(AnalysisService::with_kdb(
        ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            observer: Some(gate.clone()),
            ..ServiceConfig::default()
        },
        Kdb::in_memory(),
    ));
    let server = NetServer::start(Arc::clone(&service), NetConfig::default()).unwrap();
    let client = AsyncClient::connect(server.local_addr())
        .unwrap()
        .with_busy_retry(ada_net::BusyRetry {
            attempts: 40,
            base: Duration::from_millis(25),
            cap: Duration::from_millis(250),
            ..ada_net::BusyRetry::default()
        });

    // Hold the lone worker at the gate and fill the one queue slot.
    match client
        .call(Request::Submit(quick_spec(10)), DEADLINE)
        .unwrap()
    {
        Response::Submitted { .. } => {}
        other => panic!("expected Submitted, got {other:?}"),
    }
    gate.wait_for_start();
    match client
        .call(Request::Submit(quick_spec(11)), DEADLINE)
        .unwrap()
    {
        Response::Submitted { .. } => {}
        other => panic!("expected Submitted, got {other:?}"),
    }

    // Release the gate shortly; the retrying submit must outlast the
    // transient Busy window and land once the queue drains.
    let releaser = {
        let gate = Arc::clone(&gate);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            gate.release();
        })
    };
    let session = match client
        .call(Request::Submit(quick_spec(12)), DEADLINE)
        .unwrap()
    {
        Response::Submitted { session } => session,
        other => panic!("auto-retry did not absorb backpressure: got {other:?}"),
    };
    releaser.join().unwrap();
    let deadline = std::time::Instant::now() + DEADLINE;
    loop {
        match client.call(Request::Status { session }, DEADLINE).unwrap() {
            Response::State { state, reason, .. } => {
                if state == "completed" {
                    break;
                }
                assert!(
                    !matches!(state.as_str(), "failed" | "cancelled"),
                    "retried session ended {state}: {reason}"
                );
            }
            other => panic!("expected State, got {other:?}"),
        }
        assert!(
            std::time::Instant::now() < deadline,
            "session never terminal"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let net = server.shutdown();
    assert_eq!(net.protocol_errors, 0);
    drop(service);
}

#[test]
fn pool_capacity_rejection_is_a_typed_notification() {
    let service = Arc::new(AnalysisService::with_kdb(
        ServiceConfig::default(),
        Kdb::in_memory(),
    ));
    let server = NetServer::start(
        Arc::clone(&service),
        NetConfig {
            max_connections: 1,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut first = Client::connect(addr).unwrap();
    assert!(matches!(
        first.call(Request::Health).unwrap(),
        Response::Health { .. }
    ));

    // Second connection: the handshake completes, then the server sends
    // an unsolicited connection-level pool_full error and closes.
    let mut second = Client::connect(addr).unwrap();
    match second.call(Request::Health) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, "pool_full"),
        other => panic!("expected pool_full rejection, got {other:?}"),
    }

    // Freeing the slot lets a new connection in (the server reaps the
    // closed connection asynchronously — poll briefly).
    drop(first);
    let deadline = std::time::Instant::now() + DEADLINE;
    loop {
        let mut third = Client::connect(addr).unwrap();
        match third.call(Request::Health) {
            Ok(Response::Health { .. }) => break,
            Err(NetError::Remote { ref code, .. }) if code == "pool_full" => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "slot never freed after client disconnect"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("expected Health or pool_full, got {other:?}"),
        }
    }

    let net = server.shutdown();
    assert!(net.rejects >= 1);
}

#[test]
fn degraded_service_keeps_serving_reads_over_the_wire() {
    let mem: Arc<MemStorage> = Arc::new(MemStorage::new());
    let (storage, faults) = FaultyStorage::wrap(mem);
    let kdb = Kdb::open_with(
        Path::new("net_degraded.journal"),
        StoreOptions::with_storage(storage),
    )
    .unwrap();
    let service = Arc::new(AnalysisService::with_kdb(
        ServiceConfig {
            workers: 2,
            degrade_after: 2,
            ..ServiceConfig::default()
        },
        kdb,
    ));
    let server = NetServer::start(Arc::clone(&service), NetConfig::default()).unwrap();
    let client = AsyncClient::connect(server.local_addr()).unwrap();

    // Healthy fleet completes and persists.
    let mut healthy = Vec::new();
    for i in 0..2 {
        match client
            .call(Request::Submit(quick_spec(i)), DEADLINE)
            .unwrap()
        {
            Response::Submitted { session } => healthy.push(session),
            other => panic!("expected Submitted, got {other:?}"),
        }
    }
    for session in &healthy {
        wait_terminal_async(&client, *session, "completed");
    }

    // Storage starts rejecting every write mid-fleet.
    faults.fail_persistently(FaultKind::NoSpace);
    let mut doomed = Vec::new();
    for i in 10..13 {
        match client
            .call(Request::Submit(quick_spec(i)), DEADLINE)
            .unwrap()
        {
            Response::Submitted { session } => doomed.push(session),
            // The service may already have tripped degraded from an
            // earlier doomed session's faults — also a valid outcome.
            Response::Degraded { .. } => {}
            other => panic!("expected Submitted or Degraded, got {other:?}"),
        }
    }
    // Every accepted session still reaches a terminal state — no hangs.
    for session in &doomed {
        let deadline = std::time::Instant::now() + DEADLINE;
        loop {
            match client
                .call(Request::Status { session: *session }, DEADLINE)
                .unwrap()
            {
                Response::State { state, .. } => {
                    if matches!(state.as_str(), "completed" | "failed" | "cancelled") {
                        break;
                    }
                }
                other => panic!("expected State, got {other:?}"),
            }
            assert!(
                std::time::Instant::now() < deadline,
                "session {session} never reached a terminal state under faults"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    // The service is now degraded: new submissions bounce typed...
    assert!(
        service.is_degraded(),
        "faulted fleet did not trip degraded mode"
    );
    match client
        .call(Request::Submit(quick_spec(99)), DEADLINE)
        .unwrap()
    {
        Response::Degraded { detail } => assert!(detail.contains("read-only")),
        other => panic!("expected Degraded, got {other:?}"),
    }

    // ...while every read path keeps answering over the same wire.
    match client
        .call(
            Request::Status {
                session: healthy[0],
            },
            DEADLINE,
        )
        .unwrap()
    {
        Response::State { state, .. } => assert_eq!(state, "completed"),
        other => panic!("expected State, got {other:?}"),
    }
    match client
        .call(
            Request::Results {
                session: healthy[0],
            },
            DEADLINE,
        )
        .unwrap()
    {
        Response::ResultSummary { state, .. } => assert_eq!(state, "completed"),
        other => panic!("expected ResultSummary, got {other:?}"),
    }
    match client.call(Request::PastSessions, DEADLINE).unwrap() {
        Response::PastSessions { sessions } => {
            // The pre-fault records are still readable.
            assert!(sessions.len() >= healthy.len());
        }
        other => panic!("expected PastSessions, got {other:?}"),
    }
    match client.call(Request::Health, DEADLINE).unwrap() {
        Response::Health { doc } => {
            assert_eq!(doc.get("status"), Some(&Value::Str("degraded".into())));
            assert_eq!(doc.get("accepting_writes"), Some(&Value::Bool(false)));
        }
        other => panic!("expected Health, got {other:?}"),
    }

    let net = server.shutdown();
    assert_eq!(
        net.protocol_errors, 0,
        "degraded mode must not corrupt the protocol"
    );
    drop(service);
}

/// Polls a session to the expected terminal state via the async client.
fn wait_terminal_async(client: &AsyncClient, session: u64, expect: &str) {
    let deadline = std::time::Instant::now() + DEADLINE;
    loop {
        match client.call(Request::Status { session }, DEADLINE).unwrap() {
            Response::State { state, reason, .. } => {
                if state == expect {
                    return;
                }
                assert!(
                    !matches!(state.as_str(), "completed" | "failed" | "cancelled"),
                    "session {session}: expected {expect}, got terminal {state} ({reason})"
                );
            }
            other => panic!("expected State, got {other:?}"),
        }
        assert!(
            std::time::Instant::now() < deadline,
            "session {session} never reached {expect}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn remote_sampled_session_persists_a_linked_trace() {
    // Group-committed durable writes so fsync rounds actually happen
    // while the worker holds the session's trace scope.
    let mem: Arc<MemStorage> = Arc::new(MemStorage::new());
    let kdb = Kdb::open_with(
        Path::new("net_trace.journal"),
        StoreOptions::with_storage(mem).durability(DurabilityPolicy::Always),
    )
    .unwrap();
    let service = Arc::new(AnalysisService::with_kdb(
        ServiceConfig {
            workers: 1,
            sample_rate: 1.0,
            ..ServiceConfig::default()
        },
        kdb,
    ));
    let server = NetServer::start(Arc::clone(&service), NetConfig::default()).unwrap();
    // The client mints under the same seed the server is configured
    // with, so both sides agree on the request's identity.
    let mut client = Client::connect(server.local_addr())
        .unwrap()
        .with_sampling(1.0, DEFAULT_TRACE_SEED);

    let session = match client.call(Request::Submit(quick_spec(0))).unwrap() {
        Response::Submitted { session } => session,
        other => panic!("expected Submitted, got {other:?}"),
    };
    let (state, reason) = client.wait_terminal(session, DEADLINE).unwrap();
    assert_eq!(state, "completed", "{reason}");

    // The client's own latency histograms saw the traffic, per kind.
    let metrics = client.client_metrics();
    assert_eq!(metrics.kind("submit").unwrap().count, 1);
    assert!(metrics.kind("status").unwrap().count >= 1);
    assert_eq!(metrics.kind("trace_query").unwrap().count, 0);

    // One persisted trace, queryable over the wire by session name.
    let traces = match client
        .call(Request::TraceQuery {
            session: Some("loop-0".to_owned()),
        })
        .unwrap()
    {
        Response::Traces { traces } => traces,
        other => panic!("expected Traces, got {other:?}"),
    };
    assert_eq!(traces.len(), 1, "expected exactly one persisted trace");
    let trace = &traces[0];
    assert_eq!(trace.get("session").and_then(Value::as_str), Some("loop-0"));
    assert_eq!(trace.get("forced"), Some(&Value::Bool(false)));
    let trace_id = trace.get("trace_id").and_then(Value::as_str).unwrap();
    assert_eq!(trace_id.len(), 32, "trace id must be 128 bits of hex");
    let spans = trace.get("spans").and_then(Value::as_array).unwrap();

    // Every span links to a parent that precedes it in the pre-order
    // array (the root links to -1).
    for (i, span) in spans.iter().enumerate() {
        let span = span.as_doc().unwrap();
        let parent = span.get("parent").and_then(Value::as_i64).unwrap();
        if i == 0 {
            assert_eq!(parent, -1, "first span must be the root");
        } else {
            assert!(
                parent >= 0 && (parent as usize) < i,
                "span {i} has a dangling parent {parent}"
            );
        }
    }

    let names: Vec<&str> = spans
        .iter()
        .map(|s| {
            s.as_doc()
                .unwrap()
                .get("name")
                .and_then(Value::as_str)
                .unwrap()
        })
        .collect();
    // The full request path is linked into one tree: client submit,
    // server decode, queue wait, every executed pipeline stage.
    for required in ["client_submit", "server_decode", "queue_wait"] {
        assert!(
            names.contains(&required),
            "missing span {required}: {names:?}"
        );
    }
    for stage in PipelineStage::PIPELINE {
        assert!(
            names.contains(&stage.name()),
            "missing stage span {}: {names:?}",
            stage.name()
        );
    }
    // At least one fsync round was captured, with its batch size and
    // commit role attached.
    let fsync_rounds: Vec<&ada_kdb::Document> = spans
        .iter()
        .map(|s| s.as_doc().unwrap())
        .filter(|s| s.get("name").and_then(Value::as_str) == Some("fsync_round"))
        .collect();
    assert!(!fsync_rounds.is_empty(), "no fsync-round span: {names:?}");
    for round in fsync_rounds {
        let attrs = round.get("attrs").and_then(Value::as_doc).unwrap();
        assert!(attrs.get("batch").and_then(Value::as_i64).unwrap() >= 1);
        let leader = attrs.get("leader").and_then(Value::as_i64).unwrap();
        assert!(leader == 0 || leader == 1);
        assert!(attrs.get("wait_ns").and_then(Value::as_i64).is_some());
        assert!(attrs.get("fsync_ns").and_then(Value::as_i64).is_some());
    }
    // The server's trace counters agree.
    let service_metrics = service.metrics();
    assert_eq!(service_metrics.traces_persisted, 1);
    assert_eq!(service_metrics.traces_forced, 0);

    let net = server.shutdown();
    assert_eq!(net.protocol_errors, 0);
    drop(service);
}

#[test]
fn sampling_rate_zero_vs_one_differs_only_in_trace_records() {
    let run = |rate: f64| {
        let service = Arc::new(AnalysisService::with_kdb(
            ServiceConfig {
                workers: 1,
                sample_rate: rate,
                ..ServiceConfig::default()
            },
            Kdb::in_memory(),
        ));
        let server = NetServer::start(Arc::clone(&service), NetConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr())
            .unwrap()
            .with_sampling(rate, DEFAULT_TRACE_SEED);
        for i in 0..3 {
            let session = match client.call(Request::Submit(quick_spec(i))).unwrap() {
                Response::Submitted { session } => session,
                other => panic!("expected Submitted, got {other:?}"),
            };
            let (state, _) = client.wait_terminal(session, DEADLINE).unwrap();
            assert_eq!(state, "completed");
        }
        server.shutdown();
        let kdb = service.kdb();
        drop(service);
        kdb
    };
    let zero = run(0.0);
    let one = run(1.0);

    // Outside session and trace records, sampling must not perturb a
    // single byte of knowledge state.
    assert_eq!(
        fingerprint_excluding(&zero, &["sessions", "traces"]),
        fingerprint_excluding(&one, &["sessions", "traces"]),
        "sampling changed non-trace K-DB state"
    );
    // Rate 0 writes no trace ops at all: excluding the traces
    // collection removes nothing.
    assert_eq!(
        fingerprint_excluding(&zero, &["sessions"]),
        fingerprint_excluding(&zero, &["sessions", "traces"]),
        "rate 0 must not touch the traces collection"
    );
    // Rate 1 does write them.
    assert_ne!(
        fingerprint_excluding(&one, &["sessions"]),
        fingerprint_excluding(&one, &["sessions", "traces"]),
        "rate 1 should have persisted trace records"
    );
}

#[test]
fn prometheus_exposition_keeps_stable_names_and_adds_net_series() {
    let service = Arc::new(AnalysisService::with_kdb(
        ServiceConfig::default(),
        Kdb::in_memory(),
    ));
    let server = NetServer::start(Arc::clone(&service), NetConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let session = match client.call(Request::Submit(quick_spec(0))).unwrap() {
        Response::Submitted { session } => session,
        other => panic!("expected Submitted, got {other:?}"),
    };
    client.wait_terminal(session, DEADLINE).unwrap();
    // One trace query (empty at rate 0) so its request kind registers.
    match client.call(Request::TraceQuery { session: None }).unwrap() {
        Response::Traces { traces } => assert!(traces.is_empty()),
        other => panic!("expected Traces, got {other:?}"),
    }

    // Both surfaces must agree: the server-side accessor and the
    // MetricsSnapshot response carry the same combined exposition.
    let direct = server.snapshot_prometheus();
    let remote = match client.call(Request::MetricsSnapshot).unwrap() {
        Response::Metrics { doc, prometheus } => {
            // The document carries the net sub-document too.
            assert!(doc.get("net").and_then(Value::as_doc).is_some());
            prometheus
        }
        other => panic!("expected Metrics, got {other:?}"),
    };

    for exposition in [direct.as_str(), remote.as_str()] {
        // The full pinned family set, in exposition order. Dashboards
        // depend on these exact series names; a new exporter must not
        // silently reorder, rename, or drop any of them.
        let type_lines: Vec<&str> = exposition
            .lines()
            .filter(|l| l.starts_with("# TYPE "))
            .collect();
        assert_eq!(
            type_lines,
            vec![
                "# TYPE ada_jobs_total counter",
                "# TYPE ada_persist_failures_total counter",
                "# TYPE ada_journal_faults_total counter",
                "# TYPE ada_signals_tables_built_total counter",
                "# TYPE ada_signals_zero_cell_corrections_total counter",
                "# TYPE ada_signals_shrinkage_iterations_total counter",
                "# TYPE ada_signals_emitted_total counter",
                "# TYPE ada_service_degraded gauge",
                "# TYPE ada_kdb_journal_acked_ops_total counter",
                "# TYPE ada_kdb_journal_durable_ops_total counter",
                "# TYPE ada_kdb_group_commits_total counter",
                "# TYPE ada_kdb_group_commit_failures_total counter",
                "# TYPE ada_kdb_group_commit_batch_size summary",
                "# TYPE ada_kdb_group_commit_flush_ns summary",
                "# TYPE ada_queue_depth_max gauge",
                "# TYPE ada_queue_wait_ns summary",
                "# TYPE ada_session_latency_ns summary",
                "# TYPE ada_stage_latency_ns summary",
                "# TYPE ada_obs_dropped_spans_total counter",
                "# TYPE ada_obs_traces_persisted_total counter",
                "# TYPE ada_obs_traces_forced_total counter",
                "# TYPE ada_stream_ingested_total counter",
                "# TYPE ada_stream_reordered_total counter",
                "# TYPE ada_stream_dropped_total counter",
                "# TYPE ada_stream_windows_closed_total counter",
                "# TYPE ada_stream_refits_total counter",
                "# TYPE ada_stream_drift_score gauge",
                "# TYPE ada_net_accepts_total counter",
                "# TYPE ada_net_rejects_total counter",
                "# TYPE ada_net_protocol_errors_total counter",
                "# TYPE ada_net_connections_in_flight gauge",
                "# TYPE ada_net_requests_total counter",
                "# TYPE ada_net_request_latency_ns summary",
                "# TYPE ada_net_bytes_total counter",
            ],
            "pinned exposition family set changed"
        );
        // Pre-existing service series keep their exact sample lines.
        assert!(exposition.contains("\nada_service_degraded 0\n"));
        assert!(exposition.contains("ada_jobs_total{outcome=\"submitted\"} 1\n"));
        assert!(exposition.contains("ada_session_latency_ns_count 1\n"));
        // The new tracing counters render (all zero at rate 0)...
        assert!(exposition.contains("\nada_obs_dropped_spans_total 0\n"));
        assert!(exposition.contains("\nada_obs_traces_persisted_total 0\n"));
        assert!(exposition.contains("\nada_obs_traces_forced_total 0\n"));
        // ...and the net family keeps its full shape, every request
        // kind labelled (including the new trace_query).
        assert!(exposition.contains("ada_net_accepts_total 1\n"));
        assert!(exposition.contains("ada_net_requests_total{kind=\"submit\"} 1\n"));
        assert!(exposition.contains("ada_net_requests_total{kind=\"trace_query\"} 1\n"));
        for kind in [
            "status",
            "cancel",
            "results",
            "past_sessions",
            "health",
            "metrics",
        ] {
            assert!(
                exposition.contains(&format!("ada_net_requests_total{{kind=\"{kind}\"}} ")),
                "missing request-kind series {kind}"
            );
        }
        assert!(exposition.contains("ada_net_request_latency_ns{quantile=\"0.5\"}"));
        assert!(exposition.contains("ada_net_bytes_total{dir=\"in\"}"));
        assert!(exposition.contains("ada_net_bytes_total{dir=\"out\"}"));
        assert!(exposition.contains("ada_net_protocol_errors_total 0\n"));
    }

    // A fleet node appends the replication and fleet families after the
    // service + net set (`FleetNode::exposition`'s composition). Pin the
    // combined, ordered family list the same way: dashboards scraping a
    // fleet member depend on these exact names in this exact order.
    let combined = format!(
        "{direct}{}{}",
        ada_obs::ReplMetrics::new().snapshot().to_prometheus(),
        ada_obs::FleetMetrics::new().snapshot().to_prometheus(),
    );
    let combined_types: Vec<&str> = combined
        .lines()
        .filter(|l| l.starts_with("# TYPE "))
        .skip(34)
        .collect();
    assert_eq!(
        combined_types,
        vec![
            "# TYPE ada_repl_frames_shipped_total counter",
            "# TYPE ada_repl_bytes_shipped_total counter",
            "# TYPE ada_repl_snapshots_total counter",
            "# TYPE ada_repl_frames_applied_total counter",
            "# TYPE ada_repl_rejects_total counter",
            "# TYPE ada_repl_source_durable_ops gauge",
            "# TYPE ada_repl_follower_acked_ops gauge",
            "# TYPE ada_repl_lag_ops gauge",
            "# TYPE ada_fleet_members gauge",
            "# TYPE ada_fleet_routed_total counter",
            "# TYPE ada_fleet_busy_deferrals_total counter",
            "# TYPE ada_fleet_health_checks_total counter",
            "# TYPE ada_fleet_health_failures_total counter",
            "# TYPE ada_fleet_promotions_total counter",
        ],
        "pinned fleet-node exposition family set changed"
    );
    // Both reject reasons render as labelled series of one family.
    assert!(combined.contains("ada_repl_rejects_total{reason=\"gap\"} 0\n"));
    assert!(combined.contains("ada_repl_rejects_total{reason=\"corrupt\"} 0\n"));
    assert!(combined.contains("ada_fleet_routed_total{role=\"primary\"} 0\n"));
    assert!(combined.contains("ada_fleet_routed_total{role=\"follower\"} 0\n"));

    // The JSON snapshot surfaces the drop counter alongside the trace
    // counters (the document face of `ada_obs_dropped_spans_total`).
    let json = service.snapshot_json();
    assert!(
        json.contains("\"tracing\""),
        "snapshot_json lost tracing: {json}"
    );
    assert!(
        json.contains("\"dropped_spans\":0"),
        "snapshot_json lost dropped_spans: {json}"
    );

    server.shutdown();
    drop(service);
}
