//! `ada-net`: a framed wire protocol and front-end serving the
//! analysis service to remote clients.
//!
//! The paper's end state is analysis as a *service*: clinicians and
//! scheduled jobs submitting cohorts to a long-lived installation that
//! accumulates knowledge in the shared K-DB. `ada-service` provides
//! the in-process half; this crate puts it on the network:
//!
//! - [`frame`]: `ADAN1` length-prefixed, CRC32-checked frames — the
//!   same checksummed discipline as the K-DB's `ADAJ2` journal, so a
//!   flipped bit on the wire is a typed [`FrameError`], never a
//!   misparse. Torn tails (peer stalled mid-frame) are classified
//!   separately from corruption, exactly as journal replay does.
//! - [`proto`]: requests (`Submit`, `Status`, `Cancel`, `Results`,
//!   `PastSessions`, `TraceQuery`, `Health`, `MetricsSnapshot`) and
//!   typed responses, encoded as K-DB
//!   [`Document`](ada_kdb::Document)s — one canonical codec end to
//!   end. Submissions carry a [`WireJobSpec`] (preset + cohort shape +
//!   seed) that the server materializes deterministically, so remote
//!   and in-process submissions of the same spec produce
//!   byte-identical K-DB state. A spec may also carry a
//!   [`TraceContext`](ada_obs::TraceContext) as an optional envelope
//!   field — absent on the wire means unsampled, so untraced traffic
//!   is byte-identical to the pre-tracing protocol — and `TraceQuery`
//!   reads the persisted span trees back from the `traces` collection.
//! - [`server`]: [`NetServer`], a bounded-accept pool with
//!   per-connection deadlines and graceful drain. Queue-full
//!   backpressure crosses the wire as [`Response::Busy`] carrying the
//!   service's retry hint; sticky degraded mode as
//!   [`Response::Degraded`] with reads still served.
//! - [`client`]: a blocking [`Client`] and a runtime-free poll-based
//!   [`AsyncClient`] that multiplexes many logical requests over one
//!   connection via [`Pending`] tickets.
//!
//! Everything is observable: accepts, rejects, protocol errors,
//! per-kind request counts, and log2 latency/byte histograms through
//! [`NetMetrics`], exported alongside the service's series by
//! [`NetServer::snapshot_prometheus`], plus flight-recorder marks for
//! every network event.

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod metrics;
pub mod proto;
pub mod server;

pub use client::{
    AsyncClient, BusyRetry, Client, ClientKindLatency, ClientMetrics, NetError, Pending,
};
pub use frame::{encode_frame, frame_bytes, Decoded, FrameDecoder, FrameError, MAGIC};
pub use metrics::{NetMetrics, NetMetricsSnapshot};
pub use proto::{CohortSpec, Preset, ProtoError, Request, Response, WireJobSpec, CONNECTION_ID};
pub use server::{NetConfig, NetServer};
