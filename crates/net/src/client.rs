//! Clients for the ada-net wire protocol.
//!
//! Two flavours over the same framing:
//!
//! * [`Client`] — blocking, one request in flight at a time. Simple
//!   and right for scripts, smoke tests, and anything sequential.
//! * [`AsyncClient`] — a hand-rolled poll-based facade (no external
//!   runtime; the workspace is offline). One socket, one background
//!   reader thread, any number of logical requests in flight: each
//!   [`AsyncClient::submit`] returns a [`Pending`] ticket that can be
//!   [`poll`](Pending::poll)ed without blocking or
//!   [`wait`](Pending::wait)ed with a deadline. Responses are matched
//!   to tickets by request id, so slow sessions never head-of-line
//!   block fast status queries.
//!
//! Both flavours share two observability features:
//!
//! * **Trace minting** — [`Client::with_sampling`] /
//!   [`AsyncClient::with_sampling`] arm the client to mint a
//!   [`TraceContext`](ada_obs::TraceContext) for each submitted spec
//!   that does not already carry one. Minting is deterministic in
//!   `(seed, session, rate)`; unsampled submits put *nothing* on the
//!   wire, so a rate-0 client is byte-identical to an unarmed one.
//! * **Request-latency histograms** — every resolved response is
//!   recorded in a per-kind log2 histogram, readable through
//!   [`Client::client_metrics`] / [`AsyncClient::client_metrics`].

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ada_obs::{Log2Histogram, TraceContext};

use crate::frame::{frame_bytes, Decoded, FrameDecoder, MAGIC};
use crate::metrics::{kind_index, REQUEST_KINDS};
use crate::proto::{Request, Response, CONNECTION_ID};

/// Client-side request-latency histograms, one per request kind.
///
/// Recording is lock-free (the histograms are fixed-bucket atomics), so
/// an [`AsyncClient`]'s tickets can resolve on any thread without
/// contending.
#[derive(Debug, Default)]
pub struct ClientMetrics {
    latency: [Log2Histogram; REQUEST_KINDS.len()],
}

impl ClientMetrics {
    pub(crate) fn record(&self, kind: &str, latency: Duration) {
        if let Some(i) = kind_index(kind) {
            self.latency[i].record_duration(latency);
        }
    }

    /// Per-kind latency summaries, in the protocol's stable kind order.
    /// Kinds this client never issued report zero counts.
    pub fn snapshot(&self) -> Vec<ClientKindLatency> {
        REQUEST_KINDS
            .iter()
            .zip(&self.latency)
            .map(|(kind, hist)| ClientKindLatency {
                kind,
                count: hist.count(),
                p50: Duration::from_nanos(hist.quantile(0.5)),
                p99: Duration::from_nanos(hist.quantile(0.99)),
            })
            .collect()
    }

    /// The latency summary for one request kind, if the kind exists.
    pub fn kind(&self, kind: &str) -> Option<ClientKindLatency> {
        self.snapshot().into_iter().find(|k| k.kind == kind)
    }
}

/// One request kind's latency summary from [`ClientMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientKindLatency {
    /// The request kind label (matches [`Request::kind`]).
    pub kind: &'static str,
    /// Requests of this kind that resolved.
    pub count: u64,
    /// Median round-trip latency.
    pub p50: Duration,
    /// 99th-percentile round-trip latency.
    pub p99: Duration,
}

/// Automatic client-side retry of [`Response::Busy`] backpressure.
///
/// Both clients ship with this **on by default**: a `Busy` answer is
/// the server saying "come back in `retry_after`", and most callers
/// want that handled for them. Each retry re-sends the request (with a
/// fresh id) after sleeping `max(retry_after, base·2^(attempt−1))`,
/// capped at [`BusyRetry::cap`], plus deterministic SplitMix64 jitter
/// in `[0, base)` derived from `(seed, request id, attempt)` — the same
/// de-synchronization scheme the service's own `RetryPolicy` uses, so
/// a thundering herd of refused clients spreads out instead of
/// re-colliding. After [`BusyRetry::attempts`] retries the final
/// `Busy` is returned raw so the caller still sees honest
/// backpressure. Opt out with [`Client::without_busy_retry`] /
/// [`AsyncClient::without_busy_retry`].
///
/// The wire decode already clamps `retry_after` fail-closed (see
/// [`crate::proto::MAX_RETRY_AFTER_MS`]); `cap` bounds the client's
/// patience below even that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusyRetry {
    /// Maximum retries after the first attempt (0 = behave as if off).
    pub attempts: u32,
    /// Backoff base, and the jitter range.
    pub base: Duration,
    /// Upper bound on any single sleep, server hint included.
    pub cap: Duration,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for BusyRetry {
    fn default() -> Self {
        Self {
            attempts: 4,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(5),
            seed: 0xb5e5_0b5e_550f_f0ad,
        }
    }
}

impl BusyRetry {
    /// The sleep before retry number `attempt` (1-based) of the request
    /// last sent with `id`, given the server's `retry_after` hint.
    pub fn delay(&self, id: u64, attempt: u32, retry_after: Duration) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16).saturating_sub(1));
        let floor = exp.max(retry_after).min(self.cap);
        let mut z = self
            .seed
            .wrapping_add(id.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(u64::from(attempt));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let jitter_nanos = (self.base.as_nanos() as u64).max(1);
        floor + Duration::from_nanos(z % jitter_nanos)
    }
}

/// Shared minting rule: a submit without an explicit context gets one
/// drawn deterministically from `(seed, session, rate)`; everything
/// else passes through untouched.
fn maybe_mint(request: &mut Request, sampling: Option<(f64, u64)>) {
    let (Request::Submit(spec), Some((rate, seed))) = (request, sampling) else {
        return;
    };
    if spec.trace.is_none() {
        spec.trace = TraceContext::mint(seed, &spec.session, rate);
    }
}

/// What can go wrong talking to an ada-net server.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer violated the framing or message discipline.
    Protocol(String),
    /// The deadline passed without a response.
    Timeout,
    /// The server answered with a typed error (`code` is machine-
    /// readable: `pool_full`, `unknown_session`, `shutting_down`,
    /// `protocol`).
    Remote {
        /// Machine-readable error code.
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// The connection closed (or was torn down by an earlier error)
    /// before this response arrived.
    Closed(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Protocol(d) => write!(f, "protocol error: {d}"),
            NetError::Timeout => write!(f, "timed out waiting for response"),
            NetError::Remote { code, message } => write!(f, "server error [{code}]: {message}"),
            NetError::Closed(d) => write!(f, "connection closed: {d}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Exchanges magics over a fresh stream: client speaks first, server
/// answers.
fn handshake(stream: &mut TcpStream, deadline: Duration) -> Result<(), NetError> {
    stream.set_write_timeout(Some(deadline))?;
    stream.set_read_timeout(Some(deadline))?;
    stream.write_all(MAGIC)?;
    let mut got = [0u8; 6];
    stream.read_exact(&mut got)?;
    if got != MAGIC {
        return Err(NetError::Protocol(format!(
            "bad server magic {:?}",
            String::from_utf8_lossy(&got)
        )));
    }
    Ok(())
}

/// A connection-level (id 0) message is the server telling us the
/// whole connection is over: surface it as the fatal reason.
fn connection_fatal(response: Response) -> NetError {
    match response {
        Response::Error { code, message } => NetError::Remote { code, message },
        other => NetError::Protocol(format!(
            "unexpected connection-level message: {}",
            other.kind()
        )),
    }
}

/// Blocking client: one request, one response, in order.
pub struct Client {
    stream: TcpStream,
    decoder: FrameDecoder,
    next_id: u64,
    write_seq: u64,
    timeout: Duration,
    sampling: Option<(f64, u64)>,
    retry: Option<BusyRetry>,
    metrics: Arc<ClientMetrics>,
}

impl Client {
    /// Connects and performs the `ADAN1` handshake.
    ///
    /// # Errors
    /// Connection failure, or a peer that does not speak the protocol.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Self::connect_with_timeout(addr, Duration::from_secs(30))
    }

    /// [`Client::connect`] with an explicit per-call deadline.
    ///
    /// # Errors
    /// Connection failure, or a peer that does not speak the protocol.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Self, NetError> {
        let mut stream = TcpStream::connect(addr)?;
        handshake(&mut stream, timeout)?;
        // Short read timeout so call() can poll its own deadline.
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        Ok(Self {
            stream,
            decoder: FrameDecoder::new(),
            next_id: 1,
            write_seq: 0,
            timeout,
            sampling: None,
            retry: Some(BusyRetry::default()),
            metrics: Arc::new(ClientMetrics::default()),
        })
    }

    /// Arms client-side trace minting: submits without an explicit
    /// context get one drawn deterministically from
    /// `(seed, session, rate)`. Use
    /// [`ada_service::DEFAULT_TRACE_SEED`] to agree with a
    /// default-configured server. Rate 0 (or never calling this) keeps
    /// every submit byte-identical to an untraced one.
    #[must_use]
    pub fn with_sampling(mut self, rate: f64, seed: u64) -> Self {
        self.sampling = Some((rate, seed));
        self
    }

    /// This client's per-kind request-latency histograms.
    pub fn client_metrics(&self) -> Arc<ClientMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Replaces the default [`BusyRetry`] policy.
    #[must_use]
    pub fn with_busy_retry(mut self, retry: BusyRetry) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Disables automatic `Busy` retry: every `Busy` response is
    /// returned raw, as before the retry layer existed.
    #[must_use]
    pub fn without_busy_retry(mut self) -> Self {
        self.retry = None;
        self
    }

    /// Sends `request` and blocks for its response (or the deadline),
    /// transparently retrying [`Response::Busy`] under the configured
    /// [`BusyRetry`] policy.
    ///
    /// # Errors
    /// IO failure, deadline, a framing violation, or a fatal
    /// connection-level server message.
    pub fn call(&mut self, request: Request) -> Result<Response, NetError> {
        let Some(policy) = self.retry else {
            return self.call_once(request);
        };
        let mut attempt = 0u32;
        loop {
            match self.call_once(request.clone())? {
                Response::Busy { retry_after } if attempt < policy.attempts => {
                    attempt += 1;
                    // The id the refused attempt used (next_id already
                    // advanced past it) keys the jitter.
                    let refused_id = self.next_id.wrapping_sub(1);
                    std::thread::sleep(policy.delay(refused_id, attempt, retry_after));
                }
                other => return Ok(other),
            }
        }
    }

    /// One request/response exchange with no retry layer.
    fn call_once(&mut self, mut request: Request) -> Result<Response, NetError> {
        maybe_mint(&mut request, self.sampling);
        let kind = request.kind();
        let started = Instant::now();
        let id = self.next_id;
        self.next_id += 1;
        let frame = frame_bytes(&request.encode(id), self.write_seq);
        self.write_seq += 1;
        self.stream.write_all(&frame)?;
        let deadline = started + self.timeout;
        let mut buf = [0u8; 16 * 1024];
        loop {
            loop {
                match self.decoder.next_frame() {
                    Ok(Decoded::Frame(payload)) => {
                        let (got_id, response) = Response::decode(&payload)
                            .map_err(|e| NetError::Protocol(e.to_string()))?;
                        if got_id == CONNECTION_ID {
                            return Err(connection_fatal(response));
                        }
                        if got_id == id {
                            self.metrics.record(kind, started.elapsed());
                            return Ok(response);
                        }
                        // A stale response (e.g. from an abandoned call)
                        // is dropped; blocking clients have at most one
                        // outstanding id they still care about.
                    }
                    Ok(Decoded::NeedMore) => break,
                    Err(e) => return Err(NetError::Protocol(e.to_string())),
                }
            }
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(NetError::Closed("server closed the connection".into())),
                Ok(n) => self.decoder.push(&buf[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if Instant::now() >= deadline {
                        return Err(NetError::Timeout);
                    }
                }
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }

    /// Polls `Status` until the session reaches a terminal state,
    /// returning `(label, reason)`. Respects `deadline` end to end.
    ///
    /// # Errors
    /// Any [`Client::call`] failure, or [`NetError::Timeout`] if the
    /// session is still live at the deadline.
    pub fn wait_terminal(
        &mut self,
        session: u64,
        deadline: Duration,
    ) -> Result<(String, String), NetError> {
        let until = Instant::now() + deadline;
        loop {
            match self.call(Request::Status { session })? {
                Response::State { state, reason, .. } => {
                    if matches!(state.as_str(), "completed" | "failed" | "cancelled") {
                        return Ok((state, reason));
                    }
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected State, got {}",
                        other.kind()
                    )))
                }
            }
            if Instant::now() >= until {
                return Err(NetError::Timeout);
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// Mailbox shared between an [`AsyncClient`]'s reader thread and its
/// [`Pending`] tickets.
struct Mailbox {
    state: Mutex<MailboxState>,
    bell: Condvar,
}

struct MailboxState {
    /// Responses parked until their ticket collects them.
    ready: HashMap<u64, Response>,
    /// Set once when the connection dies; every later wait sees it.
    closed: Option<String>,
}

/// Poll-based multiplexing client: many logical requests over one
/// socket, no external runtime.
pub struct AsyncClient {
    writer: Mutex<WriterState>,
    mailbox: Arc<Mailbox>,
    reader: Option<std::thread::JoinHandle<()>>,
    sampling: Option<(f64, u64)>,
    retry: Option<BusyRetry>,
    metrics: Arc<ClientMetrics>,
}

struct WriterState {
    stream: TcpStream,
    next_id: u64,
    write_seq: u64,
}

impl AsyncClient {
    /// Connects, handshakes, and spawns the background reader.
    ///
    /// # Errors
    /// Connection failure, or a peer that does not speak the protocol.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let mut stream = TcpStream::connect(addr)?;
        handshake(&mut stream, Duration::from_secs(30))?;
        let mailbox = Arc::new(Mailbox {
            state: Mutex::new(MailboxState {
                ready: HashMap::new(),
                closed: None,
            }),
            bell: Condvar::new(),
        });
        let read_half = stream.try_clone()?;
        let reader = {
            let mailbox = Arc::clone(&mailbox);
            std::thread::Builder::new()
                .name("ada-net-reader".to_owned())
                .spawn(move || reader_loop(read_half, &mailbox))
                .map_err(NetError::Io)?
        };
        Ok(Self {
            writer: Mutex::new(WriterState {
                stream,
                next_id: 1,
                write_seq: 0,
            }),
            mailbox,
            reader: Some(reader),
            sampling: None,
            retry: Some(BusyRetry::default()),
            metrics: Arc::new(ClientMetrics::default()),
        })
    }

    /// Arms client-side trace minting (see [`Client::with_sampling`]).
    #[must_use]
    pub fn with_sampling(mut self, rate: f64, seed: u64) -> Self {
        self.sampling = Some((rate, seed));
        self
    }

    /// Replaces the default [`BusyRetry`] policy used by
    /// [`AsyncClient::call`]. Raw [`AsyncClient::submit`] tickets are
    /// never retried — backpressure handling belongs to whoever drives
    /// the ticket.
    #[must_use]
    pub fn with_busy_retry(mut self, retry: BusyRetry) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Disables automatic `Busy` retry in [`AsyncClient::call`].
    #[must_use]
    pub fn without_busy_retry(mut self) -> Self {
        self.retry = None;
        self
    }

    /// This client's per-kind request-latency histograms.
    pub fn client_metrics(&self) -> Arc<ClientMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Sends `request` without waiting; the returned ticket resolves
    /// when the response frame arrives.
    ///
    /// # Errors
    /// Write failure or an already-dead connection.
    pub fn submit(&self, mut request: Request) -> Result<Pending, NetError> {
        maybe_mint(&mut request, self.sampling);
        let kind = request.kind();
        {
            let state = self.mailbox.state.lock().expect("mailbox lock");
            if let Some(reason) = &state.closed {
                return Err(NetError::Closed(reason.clone()));
            }
        }
        let started = Instant::now();
        let mut writer = self.writer.lock().expect("writer lock");
        let id = writer.next_id;
        writer.next_id += 1;
        let frame = frame_bytes(&request.encode(id), writer.write_seq);
        writer.write_seq += 1;
        writer.stream.write_all(&frame)?;
        Ok(Pending {
            id,
            kind,
            started,
            metrics: Arc::clone(&self.metrics),
            mailbox: Arc::clone(&self.mailbox),
        })
    }

    /// Convenience: submit and wait in one step, transparently
    /// retrying [`Response::Busy`] under the configured [`BusyRetry`]
    /// policy. `deadline` bounds the whole exchange, sleeps included:
    /// when the next backoff would overshoot it, the last `Busy` is
    /// returned raw instead of sleeping past the budget.
    ///
    /// # Errors
    /// Any [`AsyncClient::submit`] or [`Pending::wait`] failure.
    pub fn call(&self, request: Request, deadline: Duration) -> Result<Response, NetError> {
        let Some(policy) = self.retry else {
            return self.submit(request)?.wait(deadline);
        };
        let until = Instant::now() + deadline;
        let mut attempt = 0u32;
        loop {
            let pending = self.submit(request.clone())?;
            let id = pending.id();
            let remaining = until.saturating_duration_since(Instant::now());
            match pending.wait(remaining)? {
                Response::Busy { retry_after } if attempt < policy.attempts => {
                    attempt += 1;
                    let delay = policy.delay(id, attempt, retry_after);
                    if Instant::now() + delay >= until {
                        return Ok(Response::Busy { retry_after });
                    }
                    std::thread::sleep(delay);
                }
                other => return Ok(other),
            }
        }
    }
}

impl Drop for AsyncClient {
    fn drop(&mut self) {
        // Shut the socket down so the reader thread unblocks and exits.
        if let Ok(writer) = self.writer.lock() {
            let _ = writer.stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }
}

fn reader_loop(mut stream: TcpStream, mailbox: &Mailbox) {
    let close = |reason: String| {
        let mut state = mailbox.state.lock().expect("mailbox lock");
        if state.closed.is_none() {
            state.closed = Some(reason);
        }
        mailbox.bell.notify_all();
    };
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        loop {
            match decoder.next_frame() {
                Ok(Decoded::Frame(payload)) => match Response::decode(&payload) {
                    Ok((CONNECTION_ID, response)) => {
                        close(connection_fatal(response).to_string());
                        return;
                    }
                    Ok((id, response)) => {
                        let mut state = mailbox.state.lock().expect("mailbox lock");
                        state.ready.insert(id, response);
                        mailbox.bell.notify_all();
                    }
                    Err(e) => {
                        close(format!("undecodable response: {e}"));
                        return;
                    }
                },
                Ok(Decoded::NeedMore) => break,
                Err(e) => {
                    close(format!("framing error: {e}"));
                    return;
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                close("server closed the connection".to_owned());
                return;
            }
            Ok(n) => decoder.push(&buf[..n]),
            Err(e) => {
                close(format!("read failed: {e}"));
                return;
            }
        }
    }
}

/// A ticket for one in-flight request on an [`AsyncClient`].
pub struct Pending {
    id: u64,
    kind: &'static str,
    started: Instant,
    metrics: Arc<ClientMetrics>,
    mailbox: Arc<Mailbox>,
}

impl Pending {
    /// The request id this ticket resolves.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Non-blocking check: `None` while still in flight, `Some` once
    /// resolved (successfully or by connection death). Consumes the
    /// response — a second poll after `Some(Ok(_))` reports the
    /// connection state instead.
    pub fn poll(&self) -> Option<Result<Response, NetError>> {
        let mut state = self.mailbox.state.lock().expect("mailbox lock");
        if let Some(response) = state.ready.remove(&self.id) {
            self.metrics.record(self.kind, self.started.elapsed());
            return Some(Ok(response));
        }
        state
            .closed
            .as_ref()
            .map(|reason| Err(NetError::Closed(reason.clone())))
    }

    /// Blocks until the response arrives, the connection dies, or
    /// `deadline` passes.
    ///
    /// # Errors
    /// [`NetError::Timeout`] at the deadline, [`NetError::Closed`] if
    /// the connection died first.
    pub fn wait(self, deadline: Duration) -> Result<Response, NetError> {
        let until = Instant::now() + deadline;
        let mut state = self.mailbox.state.lock().expect("mailbox lock");
        loop {
            if let Some(response) = state.ready.remove(&self.id) {
                self.metrics.record(self.kind, self.started.elapsed());
                return Ok(response);
            }
            if let Some(reason) = &state.closed {
                return Err(NetError::Closed(reason.clone()));
            }
            let now = Instant::now();
            if now >= until {
                return Err(NetError::Timeout);
            }
            let (next, timeout) = self
                .mailbox
                .bell
                .wait_timeout(state, until - now)
                .expect("mailbox wait");
            state = next;
            if timeout.timed_out() && !state.ready.contains_key(&self.id) {
                if state.closed.is_some() {
                    let reason = state.closed.clone().unwrap_or_default();
                    return Err(NetError::Closed(reason));
                }
                return Err(NetError::Timeout);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_retry_delay_is_deterministic_bounded_and_honors_the_hint() {
        let policy = BusyRetry::default();
        // Deterministic: same (id, attempt, hint) → same delay.
        assert_eq!(
            policy.delay(7, 1, Duration::from_millis(40)),
            policy.delay(7, 1, Duration::from_millis(40)),
        );
        // Jitter de-synchronizes distinct requests.
        assert_ne!(
            policy.delay(7, 1, Duration::ZERO),
            policy.delay(8, 1, Duration::ZERO),
        );
        for attempt in 1..=8 {
            for hint_ms in [0u64, 40, 500, 60_000] {
                let hint = Duration::from_millis(hint_ms);
                let d = policy.delay(3, attempt, hint);
                // Floor: at least the server hint (up to the cap) and at
                // least the exponential term (up to the cap).
                assert!(
                    d >= hint.min(policy.cap),
                    "attempt {attempt} hint {hint_ms}"
                );
                // Ceiling: cap plus one jitter range, even for a 60 s hint.
                assert!(
                    d < policy.cap + policy.base,
                    "attempt {attempt} hint {hint_ms}"
                );
            }
        }
        // The exponential term grows until the cap dominates.
        assert!(policy.delay(3, 3, Duration::ZERO) > policy.delay(3, 1, Duration::ZERO));
    }
}
