//! Net-layer metrics: connection and request counters on `ada-obs`
//! log2 histograms, rendered as `ada_net_*` Prometheus series.
//!
//! Everything on the recording path is lock-free (relaxed atomics and
//! fixed-bucket histograms), matching the service-side
//! `MetricsObserver` discipline.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

use ada_kdb::Document;
use ada_obs::Log2Histogram;

/// Request kinds tracked per-kind, aligned with
/// [`Request::kind`](crate::proto::Request::kind) labels.
pub(crate) const REQUEST_KINDS: [&str; 8] = [
    "submit",
    "status",
    "cancel",
    "results",
    "past_sessions",
    "trace_query",
    "health",
    "metrics",
];

pub(crate) fn kind_index(kind: &str) -> Option<usize> {
    REQUEST_KINDS.iter().position(|k| *k == kind)
}

/// Lock-free counters and histograms for the net front-end.
#[derive(Debug, Default)]
pub struct NetMetrics {
    accepts: AtomicU64,
    rejects: AtomicU64,
    protocol_errors: AtomicU64,
    in_flight: AtomicI64,
    requests: [AtomicU64; REQUEST_KINDS.len()],
    request_latency: Log2Histogram,
    bytes_in: Log2Histogram,
    bytes_out: Log2Histogram,
}

impl NetMetrics {
    /// A fresh, zeroed collector.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn connection_accepted(&self) {
        self.accepts.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn connection_rejected(&self) {
        self.rejects.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn connection_closed(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    pub(crate) fn protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn request(&self, kind: &str, latency: Duration) {
        if let Some(i) = kind_index(kind) {
            self.requests[i].fetch_add(1, Ordering::Relaxed);
        }
        self.request_latency.record_duration(latency);
    }

    pub(crate) fn frame_in(&self, bytes: usize) {
        self.bytes_in.record(bytes as u64);
    }

    pub(crate) fn frame_out(&self, bytes: usize) {
        self.bytes_out.record(bytes as u64);
    }

    /// A point-in-time snapshot.
    pub fn snapshot(&self) -> NetMetricsSnapshot {
        NetMetricsSnapshot {
            accepts: self.accepts.load(Ordering::Relaxed),
            rejects: self.rejects.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Acquire).max(0),
            requests: REQUEST_KINDS
                .iter()
                .zip(&self.requests)
                .map(|(kind, n)| (*kind, n.load(Ordering::Relaxed)))
                .collect(),
            request_latency_p50: Duration::from_nanos(self.request_latency.quantile(0.5)),
            request_latency_p99: Duration::from_nanos(self.request_latency.quantile(0.99)),
            request_count: self.request_latency.count(),
            frames_in: self.bytes_in.count(),
            frames_out: self.bytes_out.count(),
            bytes_in: self.bytes_in.sum(),
            bytes_out: self.bytes_out.sum(),
        }
    }
}

/// A frozen snapshot of [`NetMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetMetricsSnapshot {
    /// Connections accepted into the pool.
    pub accepts: u64,
    /// Connections refused because the pool was at capacity.
    pub rejects: u64,
    /// Framing or protocol violations observed (each closes its
    /// connection).
    pub protocol_errors: u64,
    /// Connections currently open.
    pub in_flight: i64,
    /// Requests served, per kind.
    pub requests: Vec<(&'static str, u64)>,
    /// Median request service latency.
    pub request_latency_p50: Duration,
    /// 99th-percentile request service latency.
    pub request_latency_p99: Duration,
    /// Requests measured by the latency histogram.
    pub request_count: u64,
    /// Frames read from clients.
    pub frames_in: u64,
    /// Frames written to clients.
    pub frames_out: u64,
    /// Total payload+frame bytes read.
    pub bytes_in: u64,
    /// Total payload+frame bytes written.
    pub bytes_out: u64,
}

impl NetMetricsSnapshot {
    /// Total requests served across kinds.
    pub fn requests_total(&self) -> u64 {
        self.requests.iter().map(|(_, n)| n).sum()
    }

    /// The snapshot as one K-DB document.
    pub fn to_document(&self) -> Document {
        let count = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        let mut requests = Document::new();
        for (kind, n) in &self.requests {
            requests.set(*kind, count(*n));
        }
        Document::new()
            .with("accepts", count(self.accepts))
            .with("rejects", count(self.rejects))
            .with("protocol_errors", count(self.protocol_errors))
            .with("in_flight", self.in_flight)
            .with("requests", ada_kdb::Value::Doc(requests))
            .with("frames_in", count(self.frames_in))
            .with("frames_out", count(self.frames_out))
            .with("bytes_in", count(self.bytes_in))
            .with("bytes_out", count(self.bytes_out))
    }

    /// The snapshot as Prometheus text exposition (`ada_net_*` series).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("# TYPE ada_net_accepts_total counter\n");
        out.push_str(&format!("ada_net_accepts_total {}\n", self.accepts));
        out.push_str("# TYPE ada_net_rejects_total counter\n");
        out.push_str(&format!("ada_net_rejects_total {}\n", self.rejects));
        out.push_str("# TYPE ada_net_protocol_errors_total counter\n");
        out.push_str(&format!(
            "ada_net_protocol_errors_total {}\n",
            self.protocol_errors
        ));
        out.push_str("# TYPE ada_net_connections_in_flight gauge\n");
        out.push_str(&format!(
            "ada_net_connections_in_flight {}\n",
            self.in_flight
        ));
        out.push_str("# TYPE ada_net_requests_total counter\n");
        for (kind, n) in &self.requests {
            out.push_str(&format!("ada_net_requests_total{{kind=\"{kind}\"}} {n}\n"));
        }
        out.push_str("# TYPE ada_net_request_latency_ns summary\n");
        for (q, v) in [
            ("0.5", self.request_latency_p50),
            ("0.99", self.request_latency_p99),
        ] {
            out.push_str(&format!(
                "ada_net_request_latency_ns{{quantile=\"{q}\"}} {}\n",
                v.as_nanos()
            ));
        }
        out.push_str(&format!(
            "ada_net_request_latency_ns_count {}\n",
            self.request_count
        ));
        out.push_str("# TYPE ada_net_bytes_total counter\n");
        out.push_str(&format!(
            "ada_net_bytes_total{{dir=\"in\"}} {}\n",
            self.bytes_in
        ));
        out.push_str(&format!(
            "ada_net_bytes_total{{dir=\"out\"}} {}\n",
            self.bytes_out
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_and_render() {
        let m = NetMetrics::new();
        m.connection_accepted();
        m.connection_accepted();
        m.connection_rejected();
        m.connection_closed();
        m.protocol_error();
        m.request("submit", Duration::from_micros(80));
        m.request("health", Duration::from_micros(20));
        m.frame_in(64);
        m.frame_out(128);
        let snap = m.snapshot();
        assert_eq!(snap.accepts, 2);
        assert_eq!(snap.rejects, 1);
        assert_eq!(snap.in_flight, 1);
        assert_eq!(snap.protocol_errors, 1);
        assert_eq!(snap.requests_total(), 2);
        assert_eq!(snap.bytes_in, 64);
        assert_eq!(snap.bytes_out, 128);

        let prom = snap.to_prometheus();
        assert!(prom.contains("ada_net_accepts_total 2"));
        assert!(prom.contains("ada_net_requests_total{kind=\"submit\"} 1"));
        assert!(prom.contains("ada_net_connections_in_flight 1"));
        assert!(prom.contains("ada_net_bytes_total{dir=\"out\"} 128"));

        let doc = snap.to_document();
        assert_eq!(
            doc.get_path("requests.health").and_then(|v| v.as_i64()),
            Some(1)
        );
    }
}
