//! The ADAN1 wire framing: length-prefixed, CRC32-checked frames.
//!
//! The codec reuses the ADAJ2 framing discipline of the K-DB journal
//! (`ada_kdb::journal`): a connection opens with the [`MAGIC`] preamble
//! in each direction, and every message travels as one frame
//!
//! ```text
//! F<len>:<seq>:<crc32-hex>:<payload>
//! ```
//!
//! — an ASCII-decimal payload byte length, a per-direction monotonic
//! sequence number (detects dropped or replayed frames the moment they
//! happen, exactly as the journal's record index does), an 8-hex-digit
//! CRC32 (IEEE, the journal polynomial via [`ada_kdb::journal::crc32`])
//! of the payload, and the payload bytes themselves.
//!
//! [`FrameDecoder`] is a push-based incremental parser: feed it
//! whatever the socket produced, take complete payloads out. Malformed
//! input is classified the same way journal replay classifies it — a
//! frame that merely *ends early* is "torn" (more bytes may still
//! arrive; on a socket that only becomes an error at EOF or deadline),
//! while a complete-looking frame that fails its length, CRC or
//! sequence check is a hard [`FrameError`] and the connection must die.

use ada_kdb::journal::crc32;

/// Connection preamble, sent once in each direction before any frame.
/// `ADAN` ≠ `ADAJ`: a journal file can never be mistaken for a socket
/// stream and vice versa. The trailing digit versions the protocol.
pub const MAGIC: &[u8] = b"ADAN1\n";

/// Hard upper bound on one frame's payload, defending the decoder
/// against adversarial length fields. 16 MiB comfortably holds the
/// largest response this protocol produces (a `PastSessions` sweep).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// A framing violation that must terminate the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    /// Byte offset (within the decoder's stream, frames only — the
    /// magic preamble is consumed before the decoder sees bytes) of the
    /// offending frame's start.
    pub offset: u64,
    /// What was wrong (bad tag, CRC mismatch, sequence gap, …).
    pub reason: String,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for FrameError {}

/// Appends the ADAN1 frame for `payload` (sequence `seq`) to `out`.
pub fn encode_frame(payload: &[u8], seq: u64, out: &mut Vec<u8>) {
    out.push(b'F');
    out.extend_from_slice(payload.len().to_string().as_bytes());
    out.push(b':');
    out.extend_from_slice(seq.to_string().as_bytes());
    out.push(b':');
    out.extend_from_slice(format!("{:08x}", crc32(payload)).as_bytes());
    out.push(b':');
    out.extend_from_slice(payload);
}

/// The encoded frame as a fresh buffer.
pub fn frame_bytes(payload: &[u8], seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 32);
    encode_frame(payload, seq, &mut out);
    out
}

/// Outcome of one [`FrameDecoder::next_frame`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded {
    /// A complete, verified payload.
    Frame(Vec<u8>),
    /// The buffered bytes end mid-frame; push more and retry.
    NeedMore,
}

/// Incremental ADAN1 frame parser.
///
/// Bytes go in via [`FrameDecoder::push`]; complete payloads come out
/// of [`FrameDecoder::next_frame`]. The decoder verifies each frame's length
/// bound, CRC32 and sequence number; any violation is a terminal
/// [`FrameError`] (subsequent `next` calls keep returning it).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes consumed and discarded from the front of `buf` so far.
    consumed: u64,
    /// Sequence number the next frame must carry.
    expect_seq: u64,
    /// Sticky failure: a framing violation poisons the decoder.
    failed: Option<FrameError>,
}

impl FrameDecoder {
    /// A fresh decoder expecting sequence number 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds `bytes` from the stream into the decoder.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// The sequence number the next well-formed frame must carry.
    pub fn expect_seq(&self) -> u64 {
        self.expect_seq
    }

    fn fail(&mut self, at: usize, reason: String) -> FrameError {
        let err = FrameError {
            offset: self.consumed + at as u64,
            reason,
        };
        self.failed = Some(err.clone());
        err
    }

    /// Attempts to decode the next frame from the buffered bytes.
    ///
    /// # Errors
    /// Returns the (sticky) [`FrameError`] once the stream violates the
    /// framing: bad tag, oversized or malformed length, CRC mismatch,
    /// or a sequence gap.
    pub fn next_frame(&mut self) -> Result<Decoded, FrameError> {
        if let Some(err) = &self.failed {
            return Err(err.clone());
        }
        match self.parse() {
            Ok(Some((payload, end))) => {
                self.buf.drain(..end);
                self.consumed += end as u64;
                self.expect_seq += 1;
                Ok(Decoded::Frame(payload))
            }
            Ok(None) => Ok(Decoded::NeedMore),
            Err((at, reason)) => Err(self.fail(at, reason)),
        }
    }

    /// Parses one frame from the front of `buf`. `Ok(None)` means the
    /// bytes end mid-frame (torn — not yet an error on a live socket).
    #[allow(clippy::type_complexity)]
    fn parse(&self) -> Result<Option<(Vec<u8>, usize)>, (usize, String)> {
        let bytes = &self.buf;
        if bytes.is_empty() {
            return Ok(None);
        }
        if bytes[0] != b'F' {
            return Err((0, format!("bad frame tag {:?}", bytes[0] as char)));
        }
        let mut pos = 1usize;
        let Some(len) = take_number(bytes, &mut pos, "length")? else {
            return Ok(None);
        };
        let len = len as usize;
        if len > MAX_FRAME_LEN {
            return Err((0, format!("length {len} exceeds cap {MAX_FRAME_LEN}")));
        }
        let Some(seq) = take_number(bytes, &mut pos, "sequence")? else {
            return Ok(None);
        };
        if pos + 9 > bytes.len() {
            return Ok(None);
        }
        let crc_text = std::str::from_utf8(&bytes[pos..pos + 8])
            .map_err(|_| (pos, "non-UTF-8 checksum".to_string()))?;
        let stored_crc = u32::from_str_radix(crc_text, 16)
            .map_err(|_| (pos, format!("bad checksum {crc_text:?}")))?;
        if bytes[pos + 8] != b':' {
            return Err((pos + 8, "missing checksum separator".to_string()));
        }
        pos += 9;
        let Some(end) = pos.checked_add(len).filter(|&e| e <= bytes.len()) else {
            return Ok(None);
        };
        let payload = &bytes[pos..end];
        let computed = crc32(payload);
        if computed != stored_crc {
            return Err((
                0,
                format!("crc mismatch (stored {stored_crc:08x}, computed {computed:08x})"),
            ));
        }
        if seq != self.expect_seq {
            return Err((
                0,
                format!("sequence gap (stored {seq}, expected {})", self.expect_seq),
            ));
        }
        Ok(Some((payload.to_vec(), end)))
    }
}

/// Reads decimal digits up to a `:`. `Ok(None)` when the buffer ends
/// while still scanning (torn); `Err` on anything malformed.
fn take_number(bytes: &[u8], pos: &mut usize, what: &str) -> Result<Option<u64>, (usize, String)> {
    let start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if *pos >= bytes.len() {
        return Ok(None);
    }
    if bytes[*pos] != b':' || *pos == start || *pos - start > 19 {
        return Err((start, format!("malformed {what} field")));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    let n = text
        .parse::<u64>()
        .map_err(|_| (start, format!("{what} out of range")))?;
    *pos += 1; // consume ':'
    Ok(Some(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_single_and_batched_frames() {
        let mut stream = Vec::new();
        encode_frame(b"hello", 0, &mut stream);
        encode_frame(b"", 1, &mut stream);
        encode_frame(b"worlds", 2, &mut stream);
        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        assert_eq!(dec.next_frame().unwrap(), Decoded::Frame(b"hello".to_vec()));
        assert_eq!(dec.next_frame().unwrap(), Decoded::Frame(b"".to_vec()));
        assert_eq!(
            dec.next_frame().unwrap(),
            Decoded::Frame(b"worlds".to_vec())
        );
        assert_eq!(dec.next_frame().unwrap(), Decoded::NeedMore);
    }

    #[test]
    fn byte_at_a_time_delivery_reassembles() {
        let mut stream = Vec::new();
        encode_frame(b"drip-fed payload", 0, &mut stream);
        let mut dec = FrameDecoder::new();
        let mut got = None;
        for b in stream {
            dec.push(&[b]);
            if let Decoded::Frame(p) = dec.next_frame().unwrap() {
                got = Some(p);
            }
        }
        assert_eq!(got.as_deref(), Some(&b"drip-fed payload"[..]));
    }

    #[test]
    fn crc_mismatch_is_sticky() {
        let mut stream = Vec::new();
        encode_frame(b"payload", 0, &mut stream);
        let n = stream.len();
        stream[n - 1] ^= 0x01; // corrupt last payload byte
        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        let err = dec.next_frame().unwrap_err();
        assert!(err.reason.contains("crc mismatch"), "{err}");
        // Poisoned: even pushing a pristine frame cannot recover.
        let mut clean = Vec::new();
        encode_frame(b"next", 1, &mut clean);
        dec.push(&clean);
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn sequence_gap_is_detected() {
        let mut stream = Vec::new();
        encode_frame(b"a", 0, &mut stream);
        encode_frame(b"b", 2, &mut stream); // skips seq 1
        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        assert_eq!(dec.next_frame().unwrap(), Decoded::Frame(b"a".to_vec()));
        let err = dec.next_frame().unwrap_err();
        assert!(err.reason.contains("sequence gap"), "{err}");
    }

    #[test]
    fn oversized_length_is_refused_without_allocating() {
        let mut dec = FrameDecoder::new();
        dec.push(format!("F{}:0:00000000:", MAX_FRAME_LEN + 1).as_bytes());
        let err = dec.next_frame().unwrap_err();
        assert!(err.reason.contains("exceeds cap"), "{err}");
    }
}
