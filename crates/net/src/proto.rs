//! The request/response protocol carried inside ADAN1 frames.
//!
//! Every message is one K-DB [`Document`] in the canonical `Value`
//! encoding (`ada_kdb::document`), so the wire shares its payload codec
//! with the journal: self-delimiting, length-prefixed, no escaping. A
//! message document always carries an `id` (the logical request id —
//! responses echo it, which is what lets many in-flight requests
//! multiplex over one connection) and a `kind` tag; the remaining
//! fields are per-kind.
//!
//! Request id 0 is reserved for *connection-level* notifications the
//! server sends unsolicited (today: `error{code="pool_full"}` when the
//! connection cap rejects the connection before any request was read).

use std::sync::Arc;
use std::time::Duration;

use ada_core::AdaHealthConfig;
use ada_dataset::synthetic::{generate, SyntheticConfig};
use ada_dataset::{Date, ExamRecord, ExamTypeId, PatientId};
use ada_kdb::{Document, Value};
use ada_obs::TraceContext;
use ada_service::{JobSpec, Priority, Workload};
use ada_signals::SignalConfig;
use ada_stream::StreamMiningSpec;

/// Request id reserved for unsolicited connection-level notifications.
pub const CONNECTION_ID: u64 = 0;

/// Upper bound on the `retry_after_ms` hint accepted off the wire.
///
/// The server clamps its own hint to 30 s, so anything above a minute
/// is a malformed or hostile peer; decoding clamps fail-closed into
/// `[0, MAX_RETRY_AFTER_MS]` instead of letting a negative or oversized
/// field park a retrying client for days.
pub const MAX_RETRY_AFTER_MS: i64 = 60_000;

/// A decode failure: the payload was not a well-formed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn err(msg: impl Into<String>) -> ProtoError {
    ProtoError(msg.into())
}

/// Which pipeline configuration preset a remote submission starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// [`AdaHealthConfig::quick`] — the fast test/demo configuration.
    Quick,
    /// [`AdaHealthConfig::paper`] — the full Table-I configuration.
    Paper,
    /// Safety-signal mining (`ada_signals`) over the cohort instead of
    /// the clustering/pattern pipeline; the wire seed drives the
    /// simulated-physician feedback loop.
    Signals,
    /// Streaming ingestion + incremental mining (`ada_stream`) over the
    /// cohort: the session replays the records in timestamp order with
    /// seeded bounded disorder and reports the live model (the
    /// [`StreamMiningSpec::quick`] knobs, seeded by the wire seed).
    Stream,
}

impl Preset {
    fn label(self) -> &'static str {
        match self {
            Preset::Quick => "quick",
            Preset::Paper => "paper",
            Preset::Signals => "signals",
            Preset::Stream => "stream",
        }
    }

    fn parse(s: &str) -> Result<Self, ProtoError> {
        match s {
            "quick" => Ok(Preset::Quick),
            "paper" => Ok(Preset::Paper),
            "signals" => Ok(Preset::Signals),
            "stream" => Ok(Preset::Stream),
            other => Err(err(format!("unknown preset {other:?}"))),
        }
    }
}

/// The synthetic cohort a remote submission analyzes.
///
/// Clients describe the dataset instead of shipping it: the server
/// materializes the cohort deterministically from `(shape, seed)`, so a
/// remote submission analyzes byte-for-byte the same `ExamLog` an
/// in-process caller building the same spec would — which is what the
/// cross-wire determinism proof in `tests/loopback.rs` pins. (Real
/// EHR cohorts stay server-side for the same reason clinical data
/// warehouses keep them there; the wire carries questions, not
/// records.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CohortSpec {
    /// Number of patients.
    pub patients: usize,
    /// Examination-type catalog size.
    pub exam_types: usize,
    /// Target total record count.
    pub records: usize,
    /// Generator seed.
    pub seed: u64,
}

impl CohortSpec {
    /// A small cohort suitable for tests and examples.
    pub fn small(seed: u64) -> Self {
        Self {
            patients: 60,
            exam_types: 12,
            records: 700,
            seed,
        }
    }
}

/// One analysis session as submitted over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireJobSpec {
    /// Session name (tags every K-DB document the session writes).
    pub session: String,
    /// Configuration preset the spec starts from.
    pub preset: Preset,
    /// Master pipeline seed.
    pub seed: u64,
    /// The cohort to generate and analyze.
    pub cohort: CohortSpec,
    /// Scheduling priority.
    pub priority: Priority,
    /// Per-attempt wall-clock budget.
    pub timeout: Option<Duration>,
    /// Retry budget for panicking attempts.
    pub max_retries: u32,
    /// Chaos hook: first `n` attempts panic (exercises retry remotely).
    pub inject_failures: u32,
    /// Trace context minted at `Client::submit`, carried as an
    /// *optional* envelope field: absent on the wire ≡ unsampled, so
    /// pre-tracing peers interoperate unchanged. A mangled sub-document
    /// decodes to `None` (unsampled), never to an altered-but-valid
    /// identity.
    pub trace: Option<TraceContext>,
}

impl WireJobSpec {
    /// A quick-preset spec over a small cohort.
    pub fn quick(session: impl Into<String>, cohort: CohortSpec) -> Self {
        Self {
            session: session.into(),
            preset: Preset::Quick,
            seed: 0,
            cohort,
            priority: Priority::Normal,
            timeout: None,
            max_retries: 2,
            inject_failures: 0,
            trace: None,
        }
    }

    /// Attaches a trace context to ride the submission's envelope.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceContext) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Materializes the spec into the [`JobSpec`] the service runs:
    /// preset config + seed, deterministic synthetic cohort. Server and
    /// in-process callers share this one function, so a spec means the
    /// same session on both sides of the wire.
    pub fn materialize(&self) -> JobSpec {
        let mut config = match self.preset {
            Preset::Quick | Preset::Signals | Preset::Stream => {
                AdaHealthConfig::quick(self.session.clone())
            }
            Preset::Paper => AdaHealthConfig::paper(self.session.clone()),
        };
        config.seed = self.seed;
        let shape = SyntheticConfig {
            num_patients: self.cohort.patients,
            num_exam_types: self.cohort.exam_types,
            target_records: self.cohort.records,
            ..SyntheticConfig::small()
        };
        let log = generate(&shape, self.cohort.seed);
        let mut spec = JobSpec::new(config, Arc::new(log))
            .priority(self.priority)
            .max_retries(self.max_retries)
            .inject_failures(self.inject_failures);
        if self.preset == Preset::Signals {
            spec = spec.workload(Workload::SafetySignals(SignalConfig {
                seed: self.seed,
                ..SignalConfig::default()
            }));
        }
        if self.preset == Preset::Stream {
            spec = spec.workload(Workload::StreamMining(
                StreamMiningSpec::quick().seed(self.seed),
            ));
        }
        if let Some(t) = self.timeout {
            spec = spec.timeout(t);
        }
        if let Some(ctx) = self.trace {
            spec = spec.trace(ctx);
        }
        spec
    }

    fn to_doc(&self) -> Document {
        let mut doc = Document::new()
            .with("session", self.session.as_str())
            .with("preset", self.preset.label())
            .with("seed", self.seed as i64)
            .with(
                "cohort",
                Value::Doc(
                    Document::new()
                        .with("patients", to_i64(self.cohort.patients))
                        .with("exam_types", to_i64(self.cohort.exam_types))
                        .with("records", to_i64(self.cohort.records))
                        .with("seed", self.cohort.seed as i64),
                ),
            )
            .with("priority", priority_label(self.priority))
            .with(
                "timeout_ms",
                self.timeout
                    .map_or(Value::Null, |t| Value::I64(to_i64(t.as_millis() as usize))),
            )
            .with("max_retries", i64::from(self.max_retries))
            .with("inject_failures", i64::from(self.inject_failures));
        // Optional envelope field: written only when present, so an
        // untraced submission is byte-identical to the pre-tracing wire
        // format.
        if let Some(ctx) = &self.trace {
            doc = doc.with("trace", Value::Doc(ctx.to_doc()));
        }
        doc
    }

    fn from_doc(doc: &Document) -> Result<Self, ProtoError> {
        let cohort = doc
            .get("cohort")
            .and_then(Value::as_doc)
            .ok_or_else(|| err("spec missing cohort"))?;
        Ok(Self {
            session: take_str(doc, "session")?,
            preset: Preset::parse(&take_str(doc, "preset")?)?,
            seed: take_i64(doc, "seed")? as u64,
            cohort: CohortSpec {
                patients: take_usize(cohort, "patients")?,
                exam_types: take_usize(cohort, "exam_types")?,
                records: take_usize(cohort, "records")?,
                seed: take_i64(cohort, "seed")? as u64,
            },
            priority: parse_priority(&take_str(doc, "priority")?)?,
            timeout: match doc.get("timeout_ms") {
                None | Some(Value::Null) => None,
                Some(Value::I64(ms)) if *ms >= 0 => Some(Duration::from_millis(*ms as u64)),
                Some(other) => return Err(err(format!("bad timeout_ms {other:?}"))),
            },
            max_retries: take_u32(doc, "max_retries")?,
            inject_failures: take_u32(doc, "inject_failures")?,
            // Absent, null, mistyped, or mangled ≡ unsampled: a trace
            // context never *invalidates* a submission, and corruption
            // can only degrade it to "no trace".
            trace: doc
                .get("trace")
                .and_then(Value::as_doc)
                .and_then(TraceContext::from_doc),
        })
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a new analysis session.
    Submit(WireJobSpec),
    /// Current lifecycle state of a session.
    Status {
        /// Server-assigned session id.
        session: u64,
    },
    /// Request cooperative cancellation of a session.
    Cancel {
        /// Server-assigned session id.
        session: u64,
    },
    /// Result summary of a (terminal) session.
    Results {
        /// Server-assigned session id.
        session: u64,
    },
    /// Terminal session records persisted in the K-DB `sessions`
    /// collection — including by previous server processes.
    PastSessions,
    /// Terminal trace records persisted in the K-DB `traces`
    /// collection, optionally filtered to one session name.
    TraceQuery {
        /// Session name to filter on (`None` = every trace).
        session: Option<String>,
    },
    /// The service health probe document.
    Health,
    /// The combined service + net metrics snapshot.
    MetricsSnapshot,
    /// Open (or resume) a named ingestion stream on the server.
    StreamOpen {
        /// Stream name (tags the `stream_windows` checkpoints).
        stream: String,
        /// The stream's mining knobs (windowing, lateness, K-means).
        spec: StreamMiningSpec,
    },
    /// Push a batch of exam records into an open stream. Records ride
    /// the wire as flat `(patient, exam, day)` integer triples — the
    /// same canonical key order the engine folds in.
    Ingest {
        /// Target stream.
        stream: String,
        /// The batch, in delivery order.
        records: Vec<ExamRecord>,
    },
    /// The stream's live status document (read-your-writes: reflects
    /// every batch accepted before this request).
    StreamQuery {
        /// Target stream.
        stream: String,
    },
    /// Seal a stream: close every buffered window regardless of the
    /// watermark (end of feed) and return the final status.
    StreamSeal {
        /// Target stream.
        stream: String,
    },
}

impl Request {
    /// The request's kind tag (also the per-kind metrics label).
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Submit(_) => "submit",
            Request::Status { .. } => "status",
            Request::Cancel { .. } => "cancel",
            Request::Results { .. } => "results",
            Request::PastSessions => "past_sessions",
            Request::TraceQuery { .. } => "trace_query",
            Request::Health => "health",
            Request::MetricsSnapshot => "metrics",
            Request::StreamOpen { .. } => "stream_open",
            Request::Ingest { .. } => "ingest",
            Request::StreamQuery { .. } => "stream_query",
            Request::StreamSeal { .. } => "stream_seal",
        }
    }

    /// Encodes the request (under logical id `id`) into frame payload
    /// bytes.
    pub fn encode(&self, id: u64) -> Vec<u8> {
        let mut doc = Document::new()
            .with("id", to_i64(id as usize))
            .with("kind", self.kind());
        match self {
            Request::Submit(spec) => doc.set("spec", Value::Doc(spec.to_doc())),
            Request::Status { session }
            | Request::Cancel { session }
            | Request::Results { session } => doc.set("session", *session as i64),
            Request::TraceQuery { session } => doc.set(
                "session",
                session
                    .as_ref()
                    .map_or(Value::Null, |s| Value::Str(s.clone())),
            ),
            Request::StreamOpen { stream, spec } => {
                doc.set("stream", stream.as_str());
                doc.set("spec", Value::Doc(stream_spec_to_doc(spec)));
            }
            Request::Ingest { stream, records } => {
                doc.set("stream", stream.as_str());
                let mut flat = Vec::with_capacity(records.len() * 3);
                for r in records {
                    flat.push(Value::I64(i64::from(r.patient.0)));
                    flat.push(Value::I64(i64::from(r.exam.0)));
                    flat.push(Value::I64(r.date.days_since_epoch()));
                }
                doc.set("records", Value::Array(flat));
            }
            Request::StreamQuery { stream } | Request::StreamSeal { stream } => {
                doc.set("stream", stream.as_str());
            }
            Request::PastSessions | Request::Health | Request::MetricsSnapshot => {}
        }
        Value::Doc(doc).encode().into_bytes()
    }

    /// Decodes a frame payload into `(id, request)`.
    ///
    /// # Errors
    /// [`ProtoError`] when the payload is not a well-formed request.
    pub fn decode(payload: &[u8]) -> Result<(u64, Request), ProtoError> {
        let doc = decode_message(payload)?;
        let id = take_i64(&doc, "id")? as u64;
        let kind = take_str(&doc, "kind")?;
        let request = match kind.as_str() {
            "submit" => {
                let spec = doc
                    .get("spec")
                    .and_then(Value::as_doc)
                    .ok_or_else(|| err("submit missing spec"))?;
                Request::Submit(WireJobSpec::from_doc(spec)?)
            }
            "status" => Request::Status {
                session: take_i64(&doc, "session")? as u64,
            },
            "cancel" => Request::Cancel {
                session: take_i64(&doc, "session")? as u64,
            },
            "results" => Request::Results {
                session: take_i64(&doc, "session")? as u64,
            },
            "past_sessions" => Request::PastSessions,
            "trace_query" => Request::TraceQuery {
                session: match doc.get("session") {
                    None | Some(Value::Null) => None,
                    Some(Value::Str(s)) => Some(s.clone()),
                    Some(other) => return Err(err(format!("bad trace_query session {other:?}"))),
                },
            },
            "health" => Request::Health,
            "metrics" => Request::MetricsSnapshot,
            "stream_open" => {
                let spec = doc
                    .get("spec")
                    .and_then(Value::as_doc)
                    .ok_or_else(|| err("stream_open missing spec"))?;
                Request::StreamOpen {
                    stream: take_str(&doc, "stream")?,
                    spec: stream_spec_from_doc(spec)?,
                }
            }
            "ingest" => {
                let flat = doc
                    .get("records")
                    .and_then(Value::as_array)
                    .ok_or_else(|| err("ingest missing records"))?;
                if flat.len() % 3 != 0 {
                    return Err(err("ingest records not (patient, exam, day) triples"));
                }
                let mut records = Vec::with_capacity(flat.len() / 3);
                for triple in flat.chunks_exact(3) {
                    let nums: Vec<i64> = triple.iter().filter_map(Value::as_i64).collect();
                    if nums.len() != 3 {
                        return Err(err("ingest record fields must be integers"));
                    }
                    let patient = u32::try_from(nums[0])
                        .map_err(|_| err(format!("ingest patient id {} out of range", nums[0])))?;
                    let exam = u32::try_from(nums[1])
                        .map_err(|_| err(format!("ingest exam id {} out of range", nums[1])))?;
                    let date = Date::from_days_since_epoch(nums[2])
                        .map_err(|e| err(format!("ingest day {}: {e}", nums[2])))?;
                    records.push(ExamRecord::new(PatientId(patient), ExamTypeId(exam), date));
                }
                Request::Ingest {
                    stream: take_str(&doc, "stream")?,
                    records,
                }
            }
            "stream_query" => Request::StreamQuery {
                stream: take_str(&doc, "stream")?,
            },
            "stream_seal" => Request::StreamSeal {
                stream: take_str(&doc, "stream")?,
            },
            other => return Err(err(format!("unknown request kind {other:?}"))),
        };
        Ok((id, request))
    }
}

/// A server response. Responses echo the request's logical id.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The session was accepted and queued.
    Submitted {
        /// Server-assigned session id (use it for `Status`/`Cancel`/
        /// `Results`).
        session: u64,
    },
    /// Lifecycle state of a session.
    State {
        /// The queried session.
        session: u64,
        /// State label (`queued`, `running`, `completed`, `failed`,
        /// `cancelled`).
        state: String,
        /// Failure reason when `state == "failed"`, else empty.
        reason: String,
    },
    /// Cancellation was requested (takes effect at the session's next
    /// pipeline checkpoint).
    Cancelled {
        /// The cancelled session.
        session: u64,
    },
    /// Result summary of a session. `summary` is empty unless the
    /// session completed; full artifacts live in the shared K-DB, which
    /// is where the paper's flow stores extracted knowledge.
    ResultSummary {
        /// The queried session.
        session: u64,
        /// Terminal (or current) state label.
        state: String,
        /// Compact report summary (clusters, rules, selected K, top
        /// goal, …) for completed sessions.
        summary: Document,
    },
    /// Persisted terminal session records.
    PastSessions {
        /// One record per past session, as stored in the K-DB.
        sessions: Vec<Document>,
    },
    /// Persisted terminal trace records.
    Traces {
        /// One record per trace, as stored in the K-DB `traces`
        /// collection (deterministic pre-order span arrays).
        traces: Vec<Document>,
    },
    /// The health probe document.
    Health {
        /// Same shape as `AnalysisService::health`, plus net fields.
        doc: Document,
    },
    /// The metrics snapshot.
    Metrics {
        /// `AnalysisService::snapshot` document.
        doc: Document,
        /// Combined Prometheus exposition (`ada_*` + `ada_net_*`).
        prometheus: String,
    },
    /// Backpressure: the job queue is full. Not an error — retry after
    /// the hint instead of hanging on a submission that cannot land.
    Busy {
        /// Server's estimate of when a retry could be accepted, derived
        /// from queue depth × recent p50 session latency.
        retry_after: Duration,
    },
    /// The service is in sticky degraded (read-only) mode: submissions
    /// are refused, reads keep working.
    Degraded {
        /// Human-readable detail.
        detail: String,
    },
    /// A typed failure (unknown session, shutting down, malformed
    /// request, pool full, …).
    Error {
        /// Machine-readable code (`unknown_session`, `shutting_down`,
        /// `bad_request`, `pool_full`, `unknown_stream`,
        /// `stream_fault`).
        code: String,
        /// Human-readable message.
        message: String,
    },
    /// A stream was opened (or resumed) on the server.
    StreamOpened {
        /// The opened stream's name.
        stream: String,
        /// Durable windows replayed during resume (0 for a fresh
        /// stream or an idempotent re-open).
        resumed_windows: u64,
    },
    /// A record batch was accepted into a stream's bounded channel.
    Ingested {
        /// Records accepted in this batch.
        accepted: u64,
        /// Batches enqueued but not yet drained (including this one) —
        /// the producer's live view of backpressure building.
        pending: u64,
    },
    /// A stream's status document (shape documented at
    /// `StreamEngine::status_document`).
    StreamState {
        /// The status document.
        doc: Document,
    },
}

impl Response {
    /// The response's kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            Response::Submitted { .. } => "submitted",
            Response::State { .. } => "state",
            Response::Cancelled { .. } => "cancelled",
            Response::ResultSummary { .. } => "result",
            Response::PastSessions { .. } => "past_sessions",
            Response::Traces { .. } => "traces",
            Response::Health { .. } => "health",
            Response::Metrics { .. } => "metrics",
            Response::Busy { .. } => "busy",
            Response::Degraded { .. } => "degraded",
            Response::Error { .. } => "error",
            Response::StreamOpened { .. } => "stream_opened",
            Response::Ingested { .. } => "ingested",
            Response::StreamState { .. } => "stream_state",
        }
    }

    /// Encodes the response (echoing logical id `id`) into frame
    /// payload bytes.
    pub fn encode(&self, id: u64) -> Vec<u8> {
        let mut doc = Document::new()
            .with("id", to_i64(id as usize))
            .with("kind", self.kind());
        match self {
            Response::Submitted { session } => doc.set("session", *session as i64),
            Response::State {
                session,
                state,
                reason,
            } => {
                doc.set("session", *session as i64);
                doc.set("state", state.as_str());
                doc.set("reason", reason.as_str());
            }
            Response::Cancelled { session } => doc.set("session", *session as i64),
            Response::ResultSummary {
                session,
                state,
                summary,
            } => {
                doc.set("session", *session as i64);
                doc.set("state", state.as_str());
                doc.set("summary", Value::Doc(summary.clone()));
            }
            Response::PastSessions { sessions } => doc.set(
                "sessions",
                Value::Array(sessions.iter().cloned().map(Value::Doc).collect()),
            ),
            Response::Traces { traces } => doc.set(
                "traces",
                Value::Array(traces.iter().cloned().map(Value::Doc).collect()),
            ),
            Response::Health { doc: health } => doc.set("doc", Value::Doc(health.clone())),
            Response::Metrics {
                doc: snap,
                prometheus,
            } => {
                doc.set("doc", Value::Doc(snap.clone()));
                doc.set("prometheus", prometheus.as_str());
            }
            Response::Busy { retry_after } => {
                doc.set("retry_after_ms", to_i64(retry_after.as_millis() as usize));
            }
            Response::Degraded { detail } => doc.set("detail", detail.as_str()),
            Response::Error { code, message } => {
                doc.set("code", code.as_str());
                doc.set("message", message.as_str());
            }
            Response::StreamOpened {
                stream,
                resumed_windows,
            } => {
                doc.set("stream", stream.as_str());
                doc.set("resumed_windows", to_i64(*resumed_windows as usize));
            }
            Response::Ingested { accepted, pending } => {
                doc.set("accepted", to_i64(*accepted as usize));
                doc.set("pending", to_i64(*pending as usize));
            }
            Response::StreamState { doc: state } => doc.set("doc", Value::Doc(state.clone())),
        }
        Value::Doc(doc).encode().into_bytes()
    }

    /// Decodes a frame payload into `(id, response)`.
    ///
    /// # Errors
    /// [`ProtoError`] when the payload is not a well-formed response.
    pub fn decode(payload: &[u8]) -> Result<(u64, Response), ProtoError> {
        let doc = decode_message(payload)?;
        let id = take_i64(&doc, "id")? as u64;
        let kind = take_str(&doc, "kind")?;
        let response = match kind.as_str() {
            "submitted" => Response::Submitted {
                session: take_i64(&doc, "session")? as u64,
            },
            "state" => Response::State {
                session: take_i64(&doc, "session")? as u64,
                state: take_str(&doc, "state")?,
                reason: take_str(&doc, "reason")?,
            },
            "cancelled" => Response::Cancelled {
                session: take_i64(&doc, "session")? as u64,
            },
            "result" => Response::ResultSummary {
                session: take_i64(&doc, "session")? as u64,
                state: take_str(&doc, "state")?,
                summary: take_doc(&doc, "summary")?,
            },
            "past_sessions" => {
                let items = doc
                    .get("sessions")
                    .and_then(Value::as_array)
                    .ok_or_else(|| err("past_sessions missing sessions"))?;
                let mut sessions = Vec::with_capacity(items.len());
                for item in items {
                    sessions.push(
                        item.as_doc()
                            .cloned()
                            .ok_or_else(|| err("past_sessions item not a document"))?,
                    );
                }
                Response::PastSessions { sessions }
            }
            "traces" => {
                let items = doc
                    .get("traces")
                    .and_then(Value::as_array)
                    .ok_or_else(|| err("traces missing traces"))?;
                let mut traces = Vec::with_capacity(items.len());
                for item in items {
                    traces.push(
                        item.as_doc()
                            .cloned()
                            .ok_or_else(|| err("traces item not a document"))?,
                    );
                }
                Response::Traces { traces }
            }
            "health" => Response::Health {
                doc: take_doc(&doc, "doc")?,
            },
            "metrics" => Response::Metrics {
                doc: take_doc(&doc, "doc")?,
                prometheus: take_str(&doc, "prometheus")?,
            },
            "busy" => Response::Busy {
                retry_after: Duration::from_millis(
                    take_i64(&doc, "retry_after_ms")?.clamp(0, MAX_RETRY_AFTER_MS) as u64,
                ),
            },
            "degraded" => Response::Degraded {
                detail: take_str(&doc, "detail")?,
            },
            "error" => Response::Error {
                code: take_str(&doc, "code")?,
                message: take_str(&doc, "message")?,
            },
            "stream_opened" => Response::StreamOpened {
                stream: take_str(&doc, "stream")?,
                resumed_windows: take_i64(&doc, "resumed_windows")?.max(0) as u64,
            },
            "ingested" => Response::Ingested {
                accepted: take_i64(&doc, "accepted")?.max(0) as u64,
                pending: take_i64(&doc, "pending")?.max(0) as u64,
            },
            "stream_state" => Response::StreamState {
                doc: take_doc(&doc, "doc")?,
            },
            other => return Err(err(format!("unknown response kind {other:?}"))),
        };
        Ok((id, response))
    }
}

/// Wire image of a [`StreamMiningSpec`]: every knob, flat integers and
/// one float, so client and server materialize identical engines.
fn stream_spec_to_doc(spec: &StreamMiningSpec) -> Document {
    Document::new()
        .with("window_days", spec.window_days)
        .with("lateness_days", spec.lateness_days)
        .with("k", to_i64(spec.k))
        .with("seed", spec.seed as i64)
        .with("update_iters", to_i64(spec.update_iters))
        .with("refit_iters", to_i64(spec.refit_iters))
        .with("drift_threshold", spec.drift_threshold)
        .with("min_rows", to_i64(spec.min_rows))
        .with("disorder", to_i64(spec.disorder))
        .with("chunk", to_i64(spec.chunk))
}

fn stream_spec_from_doc(doc: &Document) -> Result<StreamMiningSpec, ProtoError> {
    let drift = doc
        .get("drift_threshold")
        .and_then(Value::as_f64)
        .ok_or_else(|| err("stream spec missing drift_threshold"))?;
    if !(drift.is_finite() && drift >= 0.0) {
        return Err(err(format!("bad drift_threshold {drift}")));
    }
    Ok(StreamMiningSpec {
        window_days: take_i64(doc, "window_days")?.max(1),
        lateness_days: take_i64(doc, "lateness_days")?.max(0),
        k: take_usize(doc, "k")?,
        seed: take_i64(doc, "seed")? as u64,
        update_iters: take_usize(doc, "update_iters")?,
        refit_iters: take_usize(doc, "refit_iters")?,
        drift_threshold: drift,
        min_rows: take_usize(doc, "min_rows")?,
        disorder: take_usize(doc, "disorder")?,
        chunk: take_usize(doc, "chunk")?,
    })
}

/// Labels for [`Priority`] on the wire.
fn priority_label(p: Priority) -> &'static str {
    match p {
        Priority::Low => "low",
        Priority::Normal => "normal",
        Priority::High => "high",
    }
}

fn parse_priority(s: &str) -> Result<Priority, ProtoError> {
    match s {
        "low" => Ok(Priority::Low),
        "normal" => Ok(Priority::Normal),
        "high" => Ok(Priority::High),
        other => Err(err(format!("unknown priority {other:?}"))),
    }
}

fn to_i64(v: usize) -> i64 {
    i64::try_from(v).unwrap_or(i64::MAX)
}

fn decode_message(payload: &[u8]) -> Result<Document, ProtoError> {
    let mut pos = 0usize;
    let value =
        Value::decode_prefix(payload, &mut pos).map_err(|e| err(format!("bad payload: {e}")))?;
    if pos != payload.len() {
        return Err(err("trailing bytes after message"));
    }
    match value {
        Value::Doc(doc) => Ok(doc),
        other => Err(err(format!(
            "message is {}, not document",
            other.type_name()
        ))),
    }
}

fn take_str(doc: &Document, key: &str) -> Result<String, ProtoError> {
    doc.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| err(format!("missing string field {key:?}")))
}

fn take_i64(doc: &Document, key: &str) -> Result<i64, ProtoError> {
    doc.get(key)
        .and_then(Value::as_i64)
        .ok_or_else(|| err(format!("missing integer field {key:?}")))
}

fn take_u32(doc: &Document, key: &str) -> Result<u32, ProtoError> {
    u32::try_from(take_i64(doc, key)?).map_err(|_| err(format!("field {key:?} out of range")))
}

fn take_usize(doc: &Document, key: &str) -> Result<usize, ProtoError> {
    usize::try_from(take_i64(doc, key)?).map_err(|_| err(format!("field {key:?} out of range")))
}

fn take_doc(doc: &Document, key: &str) -> Result<Document, ProtoError> {
    doc.get(key)
        .and_then(Value::as_doc)
        .cloned()
        .ok_or_else(|| err(format!("missing document field {key:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Submit(WireJobSpec::quick("s-1", CohortSpec::small(7))),
            Request::Submit(
                WireJobSpec::quick("s-2", CohortSpec::small(7))
                    .with_trace(TraceContext::forced(3, "s-2")),
            ),
            Request::Status { session: 3 },
            Request::Cancel { session: 4 },
            Request::Results { session: 5 },
            Request::PastSessions,
            Request::TraceQuery { session: None },
            Request::TraceQuery {
                session: Some("s-2".into()),
            },
            Request::Health,
            Request::MetricsSnapshot,
        ];
        for (i, req) in reqs.into_iter().enumerate() {
            let bytes = req.encode(i as u64 + 1);
            let (id, back) = Request::decode(&bytes).unwrap();
            assert_eq!(id, i as u64 + 1);
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Submitted { session: 9 },
            Response::State {
                session: 9,
                state: "failed".into(),
                reason: "deadline exceeded".into(),
            },
            Response::Cancelled { session: 9 },
            Response::ResultSummary {
                session: 9,
                state: "completed".into(),
                summary: Document::new().with("clusters", 4i64),
            },
            Response::PastSessions {
                sessions: vec![Document::new().with("session", "a")],
            },
            Response::Traces {
                traces: vec![Document::new().with("session", "a").with(
                    "trace_id",
                    TraceContext::forced(1, "a").trace_id_hex().as_str(),
                )],
            },
            Response::Health {
                doc: Document::new().with("status", "ok"),
            },
            Response::Metrics {
                doc: Document::new().with("past_sessions", 0i64),
                prometheus: "ada_service_degraded 0\n".into(),
            },
            Response::Busy {
                retry_after: Duration::from_millis(250),
            },
            Response::Degraded {
                detail: "read-only".into(),
            },
            Response::Error {
                code: "unknown_session".into(),
                message: "session#12".into(),
            },
        ];
        for resp in resps {
            let bytes = resp.encode(42);
            let (id, back) = Response::decode(&bytes).unwrap();
            assert_eq!(id, 42);
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn busy_retry_after_decode_clamps_fail_closed() {
        // A hostile or buggy peer must not be able to park a retrying
        // client: negative and oversized hints clamp into range.
        for (wire_ms, want) in [
            (-1i64, Duration::ZERO),
            (i64::MIN, Duration::ZERO),
            (MAX_RETRY_AFTER_MS, Duration::from_millis(60_000)),
            (MAX_RETRY_AFTER_MS + 1, Duration::from_millis(60_000)),
            (i64::MAX, Duration::from_millis(60_000)),
            (250, Duration::from_millis(250)),
        ] {
            let doc = Document::new()
                .with("id", 7i64)
                .with("kind", "busy")
                .with("retry_after_ms", wire_ms);
            let (_, resp) = Response::decode(Value::Doc(doc).encode().as_bytes()).unwrap();
            assert_eq!(
                resp,
                Response::Busy { retry_after: want },
                "wire retry_after_ms {wire_ms}"
            );
        }
    }

    #[test]
    fn signals_preset_round_trips_and_selects_the_workload() {
        let mut spec = WireJobSpec::quick("sig-9", CohortSpec::small(7));
        spec.preset = Preset::Signals;
        spec.seed = 99;
        let req = Request::Submit(spec.clone());
        let (_, back) = Request::decode(&req.encode(1)).unwrap();
        assert_eq!(back, req);
        match spec.materialize().workload {
            Workload::SafetySignals(cfg) => assert_eq!(cfg.seed, 99),
            other => panic!("signals preset must select the signals workload, got {other:?}"),
        }
        // The stream preset selects the streaming workload, seed
        // threaded through.
        let mut stream_spec = WireJobSpec::quick("stream-9", CohortSpec::small(7));
        stream_spec.preset = Preset::Stream;
        stream_spec.seed = 42;
        let req = Request::Submit(stream_spec.clone());
        let (_, back) = Request::decode(&req.encode(2)).unwrap();
        assert_eq!(back, req);
        match stream_spec.materialize().workload {
            Workload::StreamMining(s) => assert_eq!(s.seed, 42),
            other => panic!("stream preset must select the stream workload, got {other:?}"),
        }
        assert!(matches!(
            WireJobSpec::quick("p", CohortSpec::small(1))
                .materialize()
                .workload,
            Workload::Pipeline
        ));
    }

    #[test]
    fn materialize_is_deterministic() {
        let spec = WireJobSpec::quick("det", CohortSpec::small(11));
        let a = spec.materialize();
        let b = spec.materialize();
        assert_eq!(a.config.session, b.config.session);
        assert_eq!(a.log.records().len(), b.log.records().len());
    }

    #[test]
    fn absent_or_mangled_trace_degrades_to_unsampled() {
        // The pre-tracing wire format (no `trace` field) decodes to an
        // untraced spec — and encodes back byte-identically.
        let untraced = WireJobSpec::quick("s", CohortSpec::small(1));
        let bytes = Request::Submit(untraced.clone()).encode(1);
        let (_, back) = Request::decode(&bytes).unwrap();
        assert_eq!(back, Request::Submit(untraced.clone()));
        assert_eq!(Request::Submit(untraced).encode(1), bytes);

        // A mangled trace sub-document degrades to None (unsampled),
        // never to an error or a different-but-valid context.
        let traced =
            WireJobSpec::quick("s", CohortSpec::small(1)).with_trace(TraceContext::forced(9, "s"));
        let mut doc = traced.to_doc();
        let mut mangled = doc.get("trace").unwrap().as_doc().unwrap().clone();
        mangled.remove("lo");
        doc.set("trace", Value::Doc(mangled));
        let back = WireJobSpec::from_doc(&doc).unwrap();
        assert_eq!(back.trace, None);
        assert_eq!(back.session, traced.session);
    }

    #[test]
    fn garbage_payloads_are_typed_errors() {
        assert!(Request::decode(b"not a doc").is_err());
        assert!(Response::decode(b"S3:abc").is_err());
        // A document missing the envelope fields is refused too.
        let doc = Value::Doc(Document::new().with("x", 1i64)).encode();
        assert!(Request::decode(doc.as_bytes()).is_err());
    }
}
