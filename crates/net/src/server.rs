//! The TCP front-end: a bounded-accept connection pool serving the
//! analysis service to remote clients.
//!
//! One acceptor thread plus one thread per live connection (bounded by
//! [`NetConfig::max_connections`]; connections beyond the cap receive a
//! `pool_full` notification and are closed — rejection, not queueing,
//! mirroring the job queue's backpressure discipline). Each connection
//! handles framed requests sequentially but clients may pipeline many
//! logical requests; responses echo request ids, so a multiplexing
//! client can have any number in flight.
//!
//! Service semantics cross the wire faithfully:
//!
//! * queue-full backpressure becomes a typed [`Response::Busy`] with
//!   the service's retry hint — never a hang;
//! * sticky degraded mode maps to [`Response::Degraded`] while
//!   `Status`/`Results`/`PastSessions`/`Health` keep answering;
//! * `Cancel` reaches the session's `RunControl` checkpoint exactly as
//!   an in-process cancel does, and per-attempt deadlines ride in on
//!   the submitted spec;
//! * every accept, reject, protocol error and request is visible
//!   through [`NetMetrics`] and marked in the service's `ada-obs`
//!   flight recorder.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ada_kdb::{Document, Value};
use ada_service::{AnalysisService, ServiceError, SessionId, SessionOutcome, SessionState};

use crate::frame::{frame_bytes, Decoded, FrameDecoder, MAGIC};
use crate::metrics::NetMetrics;
use crate::proto::{Request, Response, CONNECTION_ID};

/// Obs mark: a connection was accepted into the pool.
pub const MARK_NET_ACCEPT: &str = "net_accept";
/// Obs mark: a connection was rejected (pool full).
pub const MARK_NET_REJECT: &str = "net_reject";
/// Obs mark: a framing/protocol violation closed a connection.
pub const MARK_NET_PROTO_ERR: &str = "net_protocol_error";

/// Session label net marks are recorded under in the flight recorder.
const NET_SESSION: &str = "net";

/// Tuning knobs for [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Listen address; port 0 binds an ephemeral port (read the real
    /// one back from [`NetServer::local_addr`]).
    pub addr: String,
    /// Connections served concurrently; beyond this, accepts are
    /// rejected with a `pool_full` notification.
    pub max_connections: usize,
    /// Per-connection deadline for finishing a started frame and for
    /// writing a response. Idle gaps *between* frames are not bounded
    /// by this (clients may poll slowly); a torn frame that stops
    /// mid-byte-stream is.
    pub io_deadline: Duration,
    /// How long a connection may sit idle (no new frame started)
    /// before the server closes it.
    pub idle_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            max_connections: 32,
            io_deadline: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
        }
    }
}

struct ServerShared {
    service: Arc<AnalysisService>,
    metrics: NetMetrics,
    config: NetConfig,
    shutting_down: AtomicBool,
    live_connections: AtomicUsize,
}

/// The TCP server. Dropping it (or calling [`NetServer::shutdown`])
/// stops the acceptor, drains in-flight requests, and joins every
/// connection thread.
pub struct NetServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Binds `config.addr` and starts serving `service`.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn start(service: Arc<AnalysisService>, config: NetConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            service,
            metrics: NetMetrics::new(),
            config,
            shutting_down: AtomicBool::new(false),
            live_connections: AtomicUsize::new(0),
        });
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("ada-net-accept".to_owned())
                .spawn(move || accept_loop(&listener, &shared, &connections))
                .expect("spawn acceptor")
        };
        Ok(Self {
            shared,
            addr,
            acceptor: Some(acceptor),
            connections,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the net-layer metrics.
    pub fn metrics(&self) -> crate::metrics::NetMetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Combined Prometheus exposition: the service's `ada_*` series
    /// (including the stable `ada_service_degraded` gauge) followed by
    /// the net layer's `ada_net_*` series.
    pub fn snapshot_prometheus(&self) -> String {
        let mut out = self.shared.service.snapshot_prometheus();
        out.push_str(&self.shared.metrics.snapshot().to_prometheus());
        out
    }

    /// Stops accepting, lets in-flight requests finish, joins every
    /// connection thread, and returns the final net metrics. The
    /// analysis service itself keeps running — it is shared and may
    /// outlive its front-end.
    pub fn shutdown(mut self) -> crate::metrics::NetMetricsSnapshot {
        self.stop();
        self.shared.metrics.snapshot()
    }

    fn stop(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let handles: Vec<_> = self
            .connections
            .lock()
            .expect("connections lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.shutting_down.load(Ordering::Acquire) {
                return;
            }
            continue;
        };
        if shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
        if shared.live_connections.load(Ordering::Acquire) >= shared.config.max_connections {
            // Detached short-lived thread: the rejection handshake must
            // not block the acceptor (it lingers briefly so the peer
            // can read the notification before the socket dies).
            let reject_shared = Arc::clone(shared);
            let _ = std::thread::Builder::new()
                .name("ada-net-reject".to_owned())
                .spawn(move || reject_connection(&reject_shared, stream));
            continue;
        }
        shared.live_connections.fetch_add(1, Ordering::AcqRel);
        shared.metrics.connection_accepted();
        shared
            .service
            .recorder()
            .mark(NET_SESSION, MARK_NET_ACCEPT, Duration::ZERO);
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("ada-net-conn".to_owned())
            .spawn(move || {
                serve_connection(&conn_shared, stream);
                conn_shared.live_connections.fetch_sub(1, Ordering::AcqRel);
                conn_shared.metrics.connection_closed();
            })
            .expect("spawn connection");
        let mut conns = connections.lock().expect("connections lock");
        // Opportunistically reap finished threads so a long-lived server
        // does not accumulate handles.
        let mut i = 0;
        while i < conns.len() {
            if conns[i].is_finished() {
                let _ = conns.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        conns.push(handle);
    }
}

/// Pool full: greet with the magic (so the client's handshake
/// completes), send an unsolicited `pool_full` error under the
/// connection id, and close.
fn reject_connection(shared: &ServerShared, mut stream: TcpStream) {
    shared.metrics.connection_rejected();
    shared
        .service
        .recorder()
        .mark(NET_SESSION, MARK_NET_REJECT, Duration::ZERO);
    let _ = stream.set_write_timeout(Some(shared.config.io_deadline));
    let _ = stream.write_all(MAGIC);
    let payload = Response::Error {
        code: "pool_full".to_owned(),
        message: format!(
            "connection pool at capacity ({})",
            shared.config.max_connections
        ),
    }
    .encode(CONNECTION_ID);
    if stream.write_all(&frame_bytes(&payload, 0)).is_err() {
        return;
    }
    // Closing immediately would race the peer's first write: its RST
    // discards our unread notification. Drain until the peer closes (a
    // client drops the connection on seeing pool_full) or a short grace
    // expires, so the typed rejection actually arrives.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let deadline = Instant::now() + Duration::from_millis(500);
    let mut sink = [0u8; 1024];
    loop {
        match stream.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline || shared.shutting_down.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Poll granularity for the blocking reads, so shutdown and idle
/// deadlines are observed promptly without busy-waiting.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

fn serve_connection(shared: &ServerShared, mut stream: TcpStream) {
    if stream
        .set_read_timeout(Some(POLL_INTERVAL))
        .and(stream.set_write_timeout(Some(shared.config.io_deadline)))
        .is_err()
    {
        return;
    }

    // Handshake: read the client's magic, answer with ours.
    if !read_magic(shared, &mut stream) {
        return;
    }
    if stream.write_all(MAGIC).is_err() {
        return;
    }

    let mut decoder = FrameDecoder::new();
    let mut write_seq = 0u64;
    let mut buf = [0u8; 16 * 1024];
    let mut last_activity = Instant::now();
    // Deadline for completing the frame currently being read (armed
    // once a frame's first bytes arrive).
    let mut frame_deadline: Option<Instant> = None;

    loop {
        // Drain every complete frame already buffered.
        loop {
            match decoder.next_frame() {
                Ok(Decoded::Frame(payload)) => {
                    shared.metrics.frame_in(payload.len());
                    frame_deadline = None;
                    last_activity = Instant::now();
                    if !handle_frame(shared, &mut stream, &payload, &mut write_seq) {
                        return;
                    }
                }
                Ok(Decoded::NeedMore) => break,
                Err(err) => {
                    protocol_error(shared, &mut stream, &mut write_seq, &err.to_string());
                    return;
                }
            }
        }

        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                if decoder.buffered() == 0 {
                    // First bytes of a new frame arm its deadline.
                    frame_deadline = Some(Instant::now() + shared.config.io_deadline);
                }
                decoder.push(&buf[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down.load(Ordering::Acquire) {
                    return;
                }
                if let Some(deadline) = frame_deadline {
                    if Instant::now() >= deadline {
                        protocol_error(
                            shared,
                            &mut stream,
                            &mut write_seq,
                            "torn frame: peer stalled mid-frame",
                        );
                        return;
                    }
                } else if last_activity.elapsed() >= shared.config.idle_timeout {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Reads and validates the 6-byte client magic, polling so shutdown is
/// honored while waiting.
fn read_magic(shared: &ServerShared, stream: &mut TcpStream) -> bool {
    let mut got = [0u8; 6];
    let mut filled = 0usize;
    let deadline = Instant::now() + shared.config.io_deadline;
    while filled < got.len() {
        match stream.read(&mut got[filled..]) {
            Ok(0) => return false,
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down.load(Ordering::Acquire) || Instant::now() >= deadline {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    if got != MAGIC {
        shared.metrics.protocol_error();
        shared
            .service
            .recorder()
            .mark(NET_SESSION, MARK_NET_PROTO_ERR, Duration::ZERO);
        return false;
    }
    true
}

/// Records a protocol violation and best-effort notifies the peer
/// before the connection dies.
fn protocol_error(shared: &ServerShared, stream: &mut TcpStream, seq: &mut u64, detail: &str) {
    shared.metrics.protocol_error();
    shared
        .service
        .recorder()
        .mark(NET_SESSION, MARK_NET_PROTO_ERR, Duration::ZERO);
    let payload = Response::Error {
        code: "protocol".to_owned(),
        message: detail.to_owned(),
    }
    .encode(CONNECTION_ID);
    let _ = write_frame(shared, stream, &payload, seq);
}

fn write_frame(
    shared: &ServerShared,
    stream: &mut TcpStream,
    payload: &[u8],
    seq: &mut u64,
) -> bool {
    let bytes = frame_bytes(payload, *seq);
    *seq += 1;
    shared.metrics.frame_out(bytes.len());
    stream.write_all(&bytes).is_ok()
}

/// Decodes and serves one request frame. Returns `false` when the
/// connection must close.
fn handle_frame(
    shared: &ServerShared,
    stream: &mut TcpStream,
    payload: &[u8],
    seq: &mut u64,
) -> bool {
    let started = Instant::now();
    let (id, request) = match Request::decode(payload) {
        Ok(decoded) => decoded,
        Err(err) => {
            protocol_error(shared, stream, seq, &err.to_string());
            return false;
        }
    };
    let decode_latency = started.elapsed();
    let kind = request.kind();
    let response = serve_request(shared, request, payload.len(), decode_latency);
    let elapsed = started.elapsed();
    shared.metrics.request(kind, elapsed);
    shared
        .service
        .recorder()
        .mark(NET_SESSION, &format!("net_req:{kind}"), elapsed);
    write_frame(shared, stream, &response.encode(id), seq)
}

/// Maps one request onto the analysis service.
fn serve_request(
    shared: &ServerShared,
    request: Request,
    frame_bytes: usize,
    decode_latency: Duration,
) -> Response {
    let service = &shared.service;
    match request {
        Request::Submit(spec) => {
            // A sampled context that crossed the wire gets its decode
            // recorded as a span; the annotation folds into the trace
            // once the session registers the context in `run_job`.
            // Untraced submits record nothing, keeping the rate-0 path
            // byte-identical.
            if spec.trace.is_some_and(|ctx| ctx.sampled) {
                service.recorder().trace_annotation(
                    &spec.session,
                    "server_decode",
                    decode_latency,
                    &[("frame_bytes", frame_bytes as u64)],
                );
            }
            match service.submit(spec.materialize()) {
                Ok(id) => Response::Submitted { session: id.0 },
                Err(err) => service_error_response(&err),
            }
        }
        Request::Status { session } => match service.state(SessionId(session)) {
            Ok(state) => Response::State {
                session,
                state: state.label().to_owned(),
                reason: match &state {
                    SessionState::Failed { reason } => reason.clone(),
                    _ => String::new(),
                },
            },
            Err(err) => service_error_response(&err),
        },
        Request::Cancel { session } => match service.cancel(SessionId(session)) {
            Ok(()) => Response::Cancelled { session },
            Err(err) => service_error_response(&err),
        },
        Request::Results { session } => match service.state(SessionId(session)) {
            Ok(state) => Response::ResultSummary {
                session,
                state: state.label().to_owned(),
                summary: match &state {
                    SessionState::Completed(SessionOutcome::Pipeline(report)) => {
                        report_summary(report)
                    }
                    SessionState::Completed(SessionOutcome::Signals(report)) => {
                        signals_summary(report)
                    }
                    SessionState::Completed(SessionOutcome::Stream(report)) => {
                        stream_summary(report)
                    }
                    _ => Document::new(),
                },
            },
            Err(err) => service_error_response(&err),
        },
        Request::PastSessions => Response::PastSessions {
            sessions: service.past_sessions(),
        },
        Request::TraceQuery { session } => Response::Traces {
            traces: service.past_traces(session.as_deref()),
        },
        Request::Health => {
            let doc = service
                .health()
                .with(
                    "net_connections",
                    i64::try_from(shared.live_connections.load(Ordering::Acquire))
                        .unwrap_or(i64::MAX),
                )
                .with(
                    "net_accepting",
                    !shared.shutting_down.load(Ordering::Acquire),
                );
            Response::Health { doc }
        }
        Request::MetricsSnapshot => {
            let mut doc = service.snapshot();
            doc.set("net", Value::Doc(shared.metrics.snapshot().to_document()));
            let mut prometheus = service.snapshot_prometheus();
            prometheus.push_str(&shared.metrics.snapshot().to_prometheus());
            Response::Metrics { doc, prometheus }
        }
        Request::StreamOpen { stream, spec } => {
            match service.stream_open(spec.to_config(stream.clone())) {
                Ok(resumed_windows) => Response::StreamOpened {
                    stream,
                    resumed_windows,
                },
                Err(err) => service_error_response(&err),
            }
        }
        Request::Ingest { stream, records } => match service.stream_ingest(&stream, records) {
            Ok(ack) => Response::Ingested {
                accepted: ack.accepted as u64,
                pending: ack.pending as u64,
            },
            Err(err) => service_error_response(&err),
        },
        Request::StreamQuery { stream } => match service.stream_query(&stream) {
            Ok(doc) => Response::StreamState { doc },
            Err(err) => service_error_response(&err),
        },
        Request::StreamSeal { stream } => match service.stream_seal(&stream) {
            Ok(doc) => Response::StreamState { doc },
            Err(err) => service_error_response(&err),
        },
    }
}

/// The wire image of a [`ServiceError`]: backpressure and degraded
/// mode are typed responses (not opaque failures), the rest are coded
/// errors.
fn service_error_response(err: &ServiceError) -> Response {
    match err {
        ServiceError::Busy {
            retry_after_hint, ..
        } => Response::Busy {
            retry_after: *retry_after_hint,
        },
        ServiceError::Degraded | ServiceError::Follower => Response::Degraded {
            detail: err.to_string(),
        },
        ServiceError::UnknownSession(id) => Response::Error {
            code: "unknown_session".to_owned(),
            message: id.to_string(),
        },
        ServiceError::ShuttingDown => Response::Error {
            code: "shutting_down".to_owned(),
            message: err.to_string(),
        },
        ServiceError::UnknownStream(name) => Response::Error {
            code: "unknown_stream".to_owned(),
            message: name.clone(),
        },
        ServiceError::StreamFault(_) => Response::Error {
            code: "stream_fault".to_owned(),
            message: err.to_string(),
        },
    }
}

/// Compact result summary for a completed safety-signal session: the
/// top-ranked association plus the table/feedback counts.
fn signals_summary(report: &ada_signals::SignalSessionReport) -> Document {
    let top = report.signals.first();
    Document::new()
        .with(
            "signals",
            i64::try_from(report.signals.len()).unwrap_or(i64::MAX),
        )
        .with(
            "tables_built",
            i64::try_from(report.tables_built).unwrap_or(i64::MAX),
        )
        .with(
            "top_exposure",
            top.map_or_else(String::new, |s| s.exposure.clone()),
        )
        .with(
            "top_outcome",
            top.map_or_else(String::new, |s| s.outcome.to_string()),
        )
        .with("top_score", top.map_or(0.0, |s| s.score))
        .with(
            "feedback_recorded",
            i64::try_from(report.feedback_recorded).unwrap_or(i64::MAX),
        )
}

/// Compact result summary for a completed stream-mining session: the
/// deterministic fingerprints plus the window/model counters.
fn stream_summary(report: &ada_stream::StreamReport) -> Document {
    let count = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
    Document::new()
        .with("stream", report.stream.as_str())
        .with("ingested", count(report.ingested))
        .with("folded", count(report.folded))
        .with("windows_closed", count(report.windows_closed))
        .with("refits", count(report.refits))
        .with("rows", i64::try_from(report.rows).unwrap_or(i64::MAX))
        .with("vocab", i64::try_from(report.vocab).unwrap_or(i64::MAX))
        .with("drift", report.drift)
        .with("sse", report.sse)
        .with("has_model", report.has_model)
        .with("vsm_fp", report.vsm_fp.as_str())
        .with("model_fp", report.model_fp.as_str())
}

/// Compact result summary for a completed session: enough for a remote
/// caller to decide whether to fetch artifacts from the K-DB.
fn report_summary(report: &ada_core::SessionReport) -> Document {
    let top_goal = report
        .goals
        .first()
        .map_or_else(String::new, |(g, _, _)| g.name().to_owned());
    Document::new()
        .with(
            "selected_k",
            i64::try_from(report.optimizer.selected_k).unwrap_or(i64::MAX),
        )
        .with(
            "clusters",
            i64::try_from(report.clusters.len()).unwrap_or(i64::MAX),
        )
        .with(
            "rules",
            i64::try_from(report.rules.len()).unwrap_or(i64::MAX),
        )
        .with("top_goal", top_goal)
        .with(
            "ranked_items",
            i64::try_from(report.ranked_items.len()).unwrap_or(i64::MAX),
        )
        .with(
            "feedback_recorded",
            i64::try_from(report.feedback_recorded).unwrap_or(i64::MAX),
        )
}
