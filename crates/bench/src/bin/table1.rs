//! Reproduces **Table I** of the paper: the optimizer's K sweep.
//!
//! Protocol (Section IV-B): based on the partial-mining result, "only a
//! subset of the original dataset was used (85% of the original raw
//! data)"; for each K the resulting cluster set is scored by its SSE and
//! by a decision tree re-predicting the cluster labels under 10-fold
//! cross validation; ADA-HEALTH then automatically selects the K with
//! the best overall classification results (K = 8 in the paper).
//!
//! Absolute values cannot match the proprietary cohort; the *shape* is
//! the reproduction target: SSE monotonically decreasing in K,
//! classification metrics peaking at a small K (7–8) and degrading for
//! large K, auto-selection landing on the metric-optimal small K.
//!
//! Run: `cargo run -p ada-bench --release --bin table1`
//!
//! Ablation flags (append after `--`):
//! `bayes` / `knn` / `forest` — swap the robustness classifier;
//! `filtering` — swap the K-means backend.

use ada_bench::paper_log;
use ada_core::optimize::{Optimizer, RobustnessClassifier};
use ada_core::partial::HorizontalPartialMiner;
use ada_mining::kmeans::KMeansBackend;
use ada_vsm::VsmBuilder;

/// Table I of the paper: (K, SSE, accuracy, avg precision, avg recall).
const PAPER_TABLE1: [(usize, f64, f64, f64, f64); 8] = [
    (6, 3098.32, 87.79, 90.82, 77.30),
    (7, 2805.00, 87.93, 86.93, 78.52),
    (8, 2550.00, 90.41, 92.51, 79.72),
    (9, 2482.36, 88.75, 71.03, 57.62),
    (10, 2205.00, 87.49, 70.53, 51.06),
    (12, 2101.60, 85.45, 64.29, 43.80),
    (15, 1917.20, 75.18, 75.98, 55.93),
    (20, 1534.00, 82.11, 52.59, 33.43),
];

/// K the paper's optimizer selected.
const PAPER_SELECTED_K: usize = 8;

fn main() {
    println!("=== Table I reproduction: optimization metrics ===");
    println!("(synthetic paper-scale cohort; shapes, not absolute values)");
    println!();

    let log = paper_log();
    println!(
        "dataset: {} patients, {} exam types, {} records",
        log.num_patients(),
        log.num_exam_types(),
        log.num_records()
    );

    // Step 1: the partial-mining subset (the paper used the 85%-of-rows
    // subset found in Section IV-B).
    let partial = HorizontalPartialMiner::default().run(&log);
    let step = partial.selected_step();
    println!(
        "partial-mining subset: {} of {} exam types ({:.1}% of raw rows) selected at eps = {}%",
        step.included,
        log.num_exam_types(),
        step.row_coverage * 100.0,
        partial.epsilon * 100.0
    );
    println!();

    // Step 2: the K sweep on that subset.
    // Same representation the partial miner clusters in: L2-normalized
    // examination-history vectors (profiles are directions, not volumes).
    let pv = VsmBuilder::new()
        .normalize(true)
        .top_features(&log, step.included)
        .build(&log);
    let mut optimizer = Optimizer::paper();
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "bayes") {
        optimizer.classifier = RobustnessClassifier::NaiveBayes;
        println!("(ablation: naive Bayes robustness classifier)");
    } else if args.iter().any(|a| a == "knn") {
        optimizer.classifier = RobustnessClassifier::Knn(5);
        println!("(ablation: 5-NN robustness classifier)");
    } else if args.iter().any(|a| a == "forest") {
        optimizer.classifier =
            RobustnessClassifier::RandomForest(ada_mining::forest::ForestConfig::default());
        println!("(ablation: random-forest robustness classifier)");
    }
    if args.iter().any(|a| a == "filtering") {
        optimizer.backend = KMeansBackend::Filtering;
        println!("(ablation: kd-tree filtering K-means backend)");
    }
    let report = optimizer.run(&pv.matrix);

    println!("--- paper (Table I) ---");
    println!(
        "{:>4} {:>10} {:>10} {:>14} {:>11}",
        "K", "SSE", "Accuracy", "AVG Precision", "AVG Recall"
    );
    for (k, sse, acc, prec, rec) in PAPER_TABLE1 {
        let marker = if k == PAPER_SELECTED_K {
            " <= selected"
        } else {
            ""
        };
        println!("{k:>4} {sse:>10.2} {acc:>10.2} {prec:>14.2} {rec:>11.2}{marker}");
    }
    println!();
    println!("--- measured ---");
    print!("{}", report.format_table());
    println!();

    // Shape checks.
    let sse: Vec<f64> = report.evaluations.iter().map(|e| e.sse).collect();
    let sse_monotone = sse.windows(2).all(|w| w[1] < w[0]);
    let small_k_best = report.selected_k <= 10;
    let best = report
        .evaluations
        .iter()
        .max_by(|a, b| {
            a.classification_score()
                .partial_cmp(&b.classification_score())
                .expect("finite")
        })
        .expect("non-empty");
    let large_k = report
        .evaluations
        .iter()
        .find(|e| e.k == 20)
        .expect("K = 20 evaluated");

    println!("--- shape checks ---");
    println!("SSE strictly decreasing in K:        {sse_monotone}");
    println!(
        "auto-selected K (paper {PAPER_SELECTED_K}):           {}",
        report.selected_k
    );
    println!("selected K is small (<= 10):         {small_k_best}");
    println!(
        "classification degrades at K = 20:   {} ({:.1} -> {:.1} combined score)",
        large_k.classification_score() < best.classification_score(),
        best.classification_score(),
        large_k.classification_score()
    );
}
