//! Streaming ingestion smoke gate for CI.
//!
//! Four checks, any failure exits non-zero:
//!
//! 1. **Equivalence** — ingesting the cohort as an out-of-order stream
//!    (seeded `StreamOrder` disorder), sealing, and forcing a re-fit
//!    must yield a model byte-identical (FNV fingerprint) to a cold
//!    `KMeans::fit` over the accumulated streaming matrix.
//! 2. **Crash replay** — a run that loses its engine mid-feed and
//!    resumes from the durable `stream_windows` checkpoints (with the
//!    source re-delivering the feed) must land on the same VSM and
//!    model fingerprints as a run that never crashed.
//! 3. **Overhead** — the steady-state streaming path (fold-only windows
//!    plus one cold fit) vs the batch path (`VsmBuilder` plus the same
//!    cold fit): within 5% at paper scale (relaxed to 25% in `--quick`,
//!    where fixed costs dominate the reduced cohort).
//! 4. **Exposition** — a stream opened and fed through the analysis
//!    service must surface the six pinned `ada_stream_*` Prometheus
//!    families with live counts, and a `Workload::StreamMining` session
//!    must complete with a model.
//!
//! Run: `cargo run -p ada-bench --release --bin stream_smoke [-- --quick]`

use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

use ada_bench::{bench_log, paper_log};
use ada_dataset::{ExamRecord, StreamOrder};
use ada_kdb::{Kdb, SharedKdb, Value};
use ada_mining::KMeans;
use ada_obs::StreamMetrics;
use ada_service::{AnalysisService, JobSpec, ServiceConfig, ServiceError, SessionState, Workload};
use ada_stream::{StreamConfig, StreamEngine, StreamMiningSpec};
use ada_vsm::VsmBuilder;

/// Wall-clock repetitions per timed variant; the minimum is compared.
const REPS: usize = 5;

/// Ingestion batch size for the streamed variants.
const CHUNK: usize = 512;

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    exit(1);
}

fn config(mine_on_close: bool) -> StreamConfig {
    StreamConfig::new("smoke")
        .window_days(7)
        .lateness_days(7)
        .k(4)
        .seed(42)
        .update_iters(5)
        .refit_iters(100)
        .min_rows(16)
        .mine_on_close(mine_on_close)
}

/// Paired timing: alternates the two variants within every repetition
/// so scheduler and clock drift hit both sides equally, then compares
/// the per-variant minima. Returns `(ms_a, ms_b)`.
fn paired_best_of(reps: usize, mut run_a: impl FnMut(), mut run_b: impl FnMut()) -> (f64, f64) {
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        run_a();
        best_a = best_a.min(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        run_b();
        best_b = best_b.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (best_a, best_b)
}

fn open(store: &SharedKdb) -> (StreamEngine, u64) {
    StreamEngine::open(
        config(true),
        Some(store.clone()),
        Arc::new(StreamMetrics::new()),
        None,
    )
    .unwrap_or_else(|e| fail(&format!("checkpoint replay failed: {e}")))
}

fn run_feed(engine: &mut StreamEngine, feed: &[ExamRecord]) {
    for batch in feed.chunks(CHUNK) {
        engine
            .ingest(batch)
            .unwrap_or_else(|e| fail(&format!("ingest failed: {e}")));
    }
    engine
        .seal()
        .unwrap_or_else(|e| fail(&format!("seal failed: {e}")));
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let log = if quick { bench_log() } else { paper_log() };
    let feed: Vec<ExamRecord> = StreamOrder::new(&log, 42, 6).collect();

    // 1. Incremental-vs-batch equivalence: stream the cohort out of
    // order with per-window mini-batch mining, then force a re-fit —
    // it must equal a cold fit over the accumulated matrix.
    let mut engine = StreamEngine::new(config(true));
    run_feed(&mut engine, &feed);
    if engine.windows_closed() == 0 {
        fail("the cohort closed no windows");
    }
    if engine.model().is_none() {
        fail("streaming the cohort produced no model");
    }
    if !engine.force_refit() {
        fail("forced re-fit refused to run");
    }
    let cfg = config(true);
    let cold = KMeans::new(cfg.k)
        .seed(cfg.seed)
        .max_iters(cfg.refit_iters)
        .fit(engine.matrix());
    if engine.model_fingerprint() != Some(cold.fingerprint()) {
        fail("forced re-fit diverged from a cold fit over the same cohort");
    }
    println!(
        "equivalence: {} records, {} windows, {} re-fits; forced re-fit == cold fit ({:016x})",
        feed.len(),
        engine.windows_closed(),
        engine.refits(),
        cold.fingerprint()
    );

    // 2. Crash replay: lose the engine mid-feed, resume from the
    // durable checkpoints, re-deliver the feed from the start.
    let reference_store = SharedKdb::in_memory();
    let (mut reference, _) = open(&reference_store);
    run_feed(&mut reference, &feed);
    let expected = (
        reference.vsm_fingerprint(),
        reference.model_fingerprint(),
        reference.windows_closed(),
        reference.folded(),
    );

    let store = SharedKdb::in_memory();
    let (mut victim, _) = open(&store);
    for batch in feed[..feed.len() / 2].chunks(CHUNK) {
        victim
            .ingest(batch)
            .unwrap_or_else(|e| fail(&format!("pre-crash ingest failed: {e}")));
    }
    let durable = victim.windows_closed();
    drop(victim);
    let (mut resumed, replayed) = open(&store);
    if replayed != durable {
        fail(&format!(
            "resume replayed {replayed} windows, expected {durable}"
        ));
    }
    run_feed(&mut resumed, &feed);
    let actual = (
        resumed.vsm_fingerprint(),
        resumed.model_fingerprint(),
        resumed.windows_closed(),
        resumed.folded(),
    );
    if actual != expected {
        fail(&format!(
            "crash replay diverged: {actual:?} != {expected:?}"
        ));
    }
    println!(
        "crash replay: {durable} durable windows resumed, final state identical ({:016x})",
        actual.0
    );

    // 3. Steady-state overhead: fold-only streaming plus one cold fit
    // vs the batch VsmBuilder plus the same cold fit.
    let max_overhead = if quick { 0.25 } else { 0.05 };
    let (batch_ms, stream_ms) = paired_best_of(
        REPS,
        || {
            let vectors = VsmBuilder::new().build(&log);
            let fit = KMeans::new(4).seed(42).max_iters(100).fit(&vectors.matrix);
            assert!(fit.sse.is_finite());
        },
        || {
            let mut engine = StreamEngine::new(config(false));
            run_feed(&mut engine, &feed);
            if !engine.force_refit() {
                fail("overhead variant: forced re-fit refused to run");
            }
        },
    );
    let overhead = (stream_ms - batch_ms) / batch_ms;
    println!(
        "overhead: batch {batch_ms:.1} ms, stream {stream_ms:.1} ms ({:+.2}%)",
        overhead * 100.0
    );
    if overhead > max_overhead {
        fail(&format!(
            "streaming overhead {:.2}% exceeds the {:.0}% budget",
            overhead * 100.0,
            max_overhead * 100.0
        ));
    }

    // 4. Service exposition: the six pinned ada_stream_* families must
    // be present and live, and a StreamMining session must complete.
    let service = AnalysisService::with_kdb(
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        Kdb::in_memory(),
    );
    service
        .stream_open(config(true).channel_capacity(8))
        .unwrap_or_else(|e| fail(&format!("stream_open failed: {e}")));
    let mut backoffs = 0u64;
    for batch in feed.chunks(CHUNK) {
        // A full channel answers Busy — that is the backpressure
        // contract, not a failure; a real producer waits and retries.
        loop {
            match service.stream_ingest("smoke", batch.to_vec()) {
                Ok(_) => break,
                Err(ServiceError::Busy { .. }) => {
                    backoffs += 1;
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err(e) => fail(&format!("service ingest failed: {e}")),
            }
        }
    }
    let sealed = service
        .stream_seal("smoke")
        .unwrap_or_else(|e| fail(&format!("stream_seal failed: {e}")));
    if sealed.get("windows_closed").and_then(Value::as_i64) != Some(expected.2 as i64) {
        fail("service-fed stream closed a different number of windows");
    }
    println!("service: stream fed and sealed ({backoffs} backpressure waits)");

    let spec = JobSpec::new(
        ada_core::AdaHealthConfig::quick("stream-smoke"),
        Arc::new(if quick { bench_log() } else { paper_log() }),
    )
    .workload(Workload::StreamMining(StreamMiningSpec::quick().seed(42)));
    let id = service
        .submit(spec)
        .unwrap_or_else(|e| fail(&format!("submit failed: {e}")));
    match service.wait(id) {
        Ok(SessionState::Completed(outcome)) => {
            let report = outcome
                .stream()
                .unwrap_or_else(|| fail("stream workload returned a non-stream outcome"));
            if !report.has_model || report.windows_closed == 0 {
                fail("stream-mining session completed without a model");
            }
        }
        other => fail(&format!("stream session did not complete: {other:?}")),
    }

    let exposition = service.snapshot_prometheus();
    for family in [
        "ada_stream_ingested_total",
        "ada_stream_reordered_total",
        "ada_stream_dropped_total",
        "ada_stream_windows_closed_total",
        "ada_stream_refits_total",
        "ada_stream_drift_score",
    ] {
        if !exposition.contains(&format!("# TYPE {family}")) {
            fail(&format!("exposition missing pinned family {family}"));
        }
    }
    let ingested = exposition
        .lines()
        .find_map(|l| l.strip_prefix("ada_stream_ingested_total "))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or_else(|| fail("no ada_stream_ingested_total sample"));
    if ingested == 0 {
        fail("ada_stream_ingested_total stayed zero after feeding the service");
    }
    service.shutdown();
    println!("exposition: all six ada_stream_* families live ({ingested} records counted)");

    println!("stream smoke gate passed.");
}
