//! N-writer K-DB write-path scaling bench (ISSUE 7 gate).
//!
//! Spawns N writer threads, one collection each, inserting synthetic
//! patient rows through the sharded [`SharedKdb`] facade under
//! `DurabilityPolicy::Always` over the real filesystem. Every insert
//! waits until a completed fsync covers it, so aggregate committed
//! ops/sec measures how well concurrent writers *share* fsyncs via the
//! group committer — the pre-sharding global-lock write path paid one
//! fsync per op no matter how many sessions were writing.
//!
//! The journal lives under `target/` (not `/tmp`, which may be tmpfs
//! and would fake out fsync costs). After every point the store is
//! reopened and each writer's collection is verified complete before
//! the timing is trusted.
//!
//! Modes:
//!
//! * full (default): 1/2/4/8 writers, best-of-2 per point, writes
//!   `BENCH_kdb_write.json` (override with `--out PATH`); warns when
//!   the 8-writer speedup is below the 3x acceptance target;
//! * `--quick`: reduced op count, 1 vs 8 writers only, no JSON —
//!   fails (non-zero exit) when a committed op is missing after reopen
//!   or the 8-writer aggregate is not at least 1.2x the single-writer
//!   baseline (a deliberately loose anti-flake bound for CI).
//!
//! Run: `cargo run -p ada-bench --release --bin kdb_write_scaling [-- --quick]`

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::time::Instant;

use ada_kdb::{Document, DurabilityPolicy, GroupCommitSnapshot, Kdb, SharedKdb, StoreOptions};

struct Point {
    writers: usize,
    committed_ops: u64,
    elapsed_s: f64,
    ops_per_sec: f64,
    group_commits: u64,
    mean_batch: f64,
    flush_p50_ns: f64,
    flush_p99_ns: f64,
}

fn doc(writer: usize, i: usize) -> Document {
    Document::new()
        .with("patient", i as i64)
        .with("writer", writer as i64)
        .with("diagnosis", format!("D{:03}", (writer * 7 + i) % 140))
        .with("cost", (i % 5000) as f64 / 100.0)
}

/// One timed run: `writers` threads each create a collection and insert
/// `ops` documents, every ack backed by a covering fsync. Returns the
/// run plus the reopened store for verification.
fn run_once(journal: &Path, writers: usize, ops: usize) -> (f64, GroupCommitSnapshot) {
    let _ = std::fs::remove_file(journal);
    let db = SharedKdb::open_with(
        journal,
        StoreOptions::default().durability(DurabilityPolicy::Always),
    )
    .expect("opening the bench store");
    let t = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..writers {
            let db = db.clone();
            scope.spawn(move || {
                let coll = format!("w{w}");
                db.create_collection(&coll).expect("create collection");
                for i in 0..ops {
                    let (_, durable) = db
                        .insert_committed(&coll, doc(w, i))
                        .expect("insert through the group committer");
                    assert!(durable, "Always policy must ack durable");
                }
            });
        }
    });
    let elapsed = t.elapsed().as_secs_f64();
    let stats = db.group_commit_stats();
    assert_eq!(
        stats.acked_ops, stats.durable_ops,
        "Always policy left a durability gap"
    );
    drop(db);

    // Verify before trusting the timing: every op of every writer must
    // survive a reopen.
    let reopened = Kdb::open_with(journal, StoreOptions::default()).expect("reopen");
    for w in 0..writers {
        let len = reopened
            .collection(&format!("w{w}"))
            .map_or(0, ada_kdb::Collection::len);
        if len != ops {
            eprintln!("FAIL: writer {w} recovered {len} of {ops} committed ops");
            exit(1);
        }
    }
    (elapsed, stats)
}

fn run_point(dir: &Path, writers: usize, ops: usize, reps: usize) -> Point {
    let journal = dir.join(format!("journal_{writers}w"));
    let mut best: Option<(f64, GroupCommitSnapshot)> = None;
    for _ in 0..reps.max(1) {
        let (elapsed, stats) = run_once(&journal, writers, ops);
        if best.as_ref().is_none_or(|(b, _)| elapsed < *b) {
            best = Some((elapsed, stats));
        }
    }
    let _ = std::fs::remove_file(&journal);
    let (elapsed_s, stats) = best.expect("at least one rep");
    let committed_ops = stats.acked_ops;
    Point {
        writers,
        committed_ops,
        elapsed_s,
        ops_per_sec: committed_ops as f64 / elapsed_s,
        group_commits: stats.commits,
        mean_batch: stats.mean_batch(),
        flush_p50_ns: GroupCommitSnapshot::quantile(&stats.flush_hist, 0.5),
        flush_p99_ns: GroupCommitSnapshot::quantile(&stats.flush_hist, 0.99),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kdb_write.json".to_string());

    let dir = PathBuf::from("target/kdb_write_scaling");
    std::fs::create_dir_all(&dir).expect("creating the bench directory");
    let (points, ops, reps): (Vec<usize>, usize, usize) = if quick {
        (vec![1, 8], 128, 1)
    } else {
        (vec![1, 2, 4, 8], 1_500, 2)
    };
    println!(
        "kdb_write_scaling ({} mode): {} ops/writer, Always durability, journal under {}",
        if quick { "quick" } else { "full" },
        ops,
        dir.display()
    );
    println!(
        "{:>8} {:>10} {:>9} {:>11} {:>9} {:>7} {:>11} {:>11}",
        "writers", "ops", "time s", "ops/sec", "commits", "batch", "p50 us", "p99 us"
    );

    let mut reports = Vec::new();
    for &writers in &points {
        let p = run_point(&dir, writers, ops, reps);
        println!(
            "{:>8} {:>10} {:>9.3} {:>11.0} {:>9} {:>7.2} {:>11.1} {:>11.1}",
            p.writers,
            p.committed_ops,
            p.elapsed_s,
            p.ops_per_sec,
            p.group_commits,
            p.mean_batch,
            p.flush_p50_ns / 1e3,
            p.flush_p99_ns / 1e3
        );
        reports.push(p);
    }
    let baseline = reports[0].ops_per_sec;
    let top = reports.last().expect("at least one point");
    let speedup = top.ops_per_sec / baseline;
    println!(
        "aggregate committed throughput: {:.0} -> {:.0} ops/sec => {speedup:.2}x at {} writers",
        baseline, top.ops_per_sec, top.writers
    );

    if quick {
        // CI gate: correctness was already enforced per point; the
        // throughput bound only has to catch the write path regressing
        // to one-fsync-per-op (speedup ~1.0x).
        if speedup < 1.2 {
            eprintln!(
                "FAIL: {}-writer aggregate is only {speedup:.2}x the single-writer baseline \
                 (group commit not batching?)",
                top.writers
            );
            exit(1);
        }
        println!("quick gate passed (all ops durable, group commit batching).");
        return;
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"kdb_write_scaling\",");
    let _ = writeln!(json, "  \"durability\": \"always\",");
    let _ = writeln!(json, "  \"ops_per_writer\": {ops},");
    let _ = writeln!(json, "  \"timing_reps\": {reps},");
    let _ = writeln!(json, "  \"points\": [");
    for (i, p) in reports.iter().enumerate() {
        let comma = if i + 1 == reports.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"writers\": {}, \"committed_ops\": {}, \"elapsed_s\": {:.4}, \
             \"ops_per_sec\": {:.1}, \"speedup_vs_1\": {:.3}, \"group_commits\": {}, \
             \"mean_batch\": {:.3}, \"flush_p50_ns\": {:.0}, \"flush_p99_ns\": {:.0}}}{comma}",
            p.writers,
            p.committed_ops,
            p.elapsed_s,
            p.ops_per_sec,
            p.ops_per_sec / baseline,
            p.group_commits,
            p.mean_batch,
            p.flush_p50_ns,
            p.flush_p99_ns
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedup_top_vs_1\": {speedup:.3}");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("writing the benchmark artifact");
    println!("wrote {out_path}");
    if speedup < 3.0 {
        eprintln!("WARN: speedup {speedup:.2}x is below the 3x acceptance target");
    }
}
