//! Network front-end smoke gate for CI.
//!
//! Spins up the analysis service behind `ada-net` on an ephemeral
//! loopback port, drives a mini fleet through it (blocking clients and
//! one multiplexing async client), and checks, exiting non-zero on any
//! failure:
//!
//! 1. **Fleet completes** — every remotely submitted session reaches
//!    `completed`, with a non-empty result summary and a persisted
//!    session record visible through `PastSessions`.
//! 2. **Reads answer** — `Status`, `Results`, `Health`, and
//!    `MetricsSnapshot` all serve well-formed responses mid-fleet.
//! 3. **Clean drain** — graceful shutdown leaves zero protocol errors,
//!    zero live connections, and accept/request counters that match
//!    what the fleet actually did.
//!
//! Run: `cargo run -p ada-bench --release --bin net_smoke [-- --quick]`
//! `--quick` shrinks the fleet for the CI gate; the default exercises a
//! larger mix.

use std::process::exit;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ada_kdb::{Kdb, Value};
use ada_net::proto::{CohortSpec, Request, Response, WireJobSpec};
use ada_net::{AsyncClient, Client, NetConfig, NetServer};
use ada_service::{AnalysisService, ServiceConfig};

/// End-to-end budget per wait; a hang is a failure, not patience.
const DEADLINE: Duration = Duration::from_secs(180);

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    exit(1);
}

fn spec(i: usize) -> WireJobSpec {
    WireJobSpec::quick(
        format!("net-smoke-{i}"),
        CohortSpec::small(4_000 + i as u64),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Quick: 2 blocking + 2 multiplexed sessions. Full: 4 + 8.
    let (blocking_jobs, async_jobs) = if quick { (2, 2) } else { (4, 8) };
    let started = Instant::now();

    let service = Arc::new(AnalysisService::with_kdb(
        ServiceConfig {
            workers: 2,
            queue_capacity: blocking_jobs + async_jobs + 2,
            ..ServiceConfig::default()
        },
        Kdb::in_memory(),
    ));
    let server = NetServer::start(Arc::clone(&service), NetConfig::default())
        .unwrap_or_else(|e| fail(&format!("server failed to bind: {e}")));
    let addr = server.local_addr();
    println!("net smoke: serving on {addr} (quick = {quick})");

    // Blocking clients: one connection per session.
    let mut blocking = Vec::new();
    for i in 0..blocking_jobs {
        let mut client = Client::connect(addr)
            .unwrap_or_else(|e| fail(&format!("client {i} failed to connect: {e}")));
        match client.call(Request::Submit(spec(i))) {
            Ok(Response::Submitted { session }) => blocking.push((session, client)),
            other => fail(&format!("client {i}: expected Submitted, got {other:?}")),
        }
    }

    // One async client multiplexes the rest of the fleet over a single
    // connection: submit everything first, then resolve the tickets.
    let multiplexed = AsyncClient::connect(addr)
        .unwrap_or_else(|e| fail(&format!("async client failed to connect: {e}")));
    let tickets: Vec<_> = (blocking_jobs..blocking_jobs + async_jobs)
        .map(|i| {
            multiplexed
                .submit(Request::Submit(spec(i)))
                .unwrap_or_else(|e| fail(&format!("async submit {i} failed: {e}")))
        })
        .collect();
    let mut async_sessions = Vec::new();
    for (i, ticket) in tickets.into_iter().enumerate() {
        match ticket.wait(DEADLINE) {
            Ok(Response::Submitted { session }) => async_sessions.push(session),
            other => fail(&format!(
                "async ticket {i}: expected Submitted, got {other:?}"
            )),
        }
    }

    // Reads answer while the fleet is in flight.
    match multiplexed.call(Request::Health, DEADLINE) {
        Ok(Response::Health { doc }) => {
            if doc.get("status").and_then(Value::as_str).is_none() {
                fail("health document missing status");
            }
        }
        other => fail(&format!("expected Health, got {other:?}")),
    }
    match multiplexed.call(Request::MetricsSnapshot, DEADLINE) {
        Ok(Response::Metrics { prometheus, .. }) => {
            for series in ["ada_service_degraded", "ada_net_accepts_total"] {
                if !prometheus.contains(series) {
                    fail(&format!("prometheus exposition missing {series}"));
                }
            }
        }
        other => fail(&format!("expected Metrics, got {other:?}")),
    }

    // Every session completes within the deadline.
    for (session, client) in &mut blocking {
        match client.wait_terminal(*session, DEADLINE) {
            Ok((state, reason)) if state == "completed" => {
                let _ = reason;
            }
            Ok((state, reason)) => fail(&format!("session {session} ended {state}: {reason}")),
            Err(e) => fail(&format!("session {session} never resolved: {e}")),
        }
    }
    for session in &async_sessions {
        let deadline = Instant::now() + DEADLINE;
        loop {
            match multiplexed.call(Request::Status { session: *session }, DEADLINE) {
                Ok(Response::State { state, reason, .. }) => match state.as_str() {
                    "completed" => break,
                    "failed" | "cancelled" => {
                        fail(&format!("session {session} ended {state}: {reason}"))
                    }
                    _ => {}
                },
                other => fail(&format!("expected State, got {other:?}")),
            }
            if Instant::now() >= deadline {
                fail(&format!("session {session} never completed"));
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        match multiplexed.call(Request::Results { session: *session }, DEADLINE) {
            Ok(Response::ResultSummary { summary, .. }) => {
                if summary.get("clusters").and_then(Value::as_i64).unwrap_or(0) <= 0 {
                    fail(&format!("session {session} summary has no clusters"));
                }
            }
            other => fail(&format!("expected ResultSummary, got {other:?}")),
        }
    }
    let total = blocking_jobs + async_jobs;
    match multiplexed.call(Request::PastSessions, DEADLINE) {
        Ok(Response::PastSessions { sessions }) => {
            if sessions.len() != total {
                fail(&format!(
                    "expected {total} persisted session records, found {}",
                    sessions.len()
                ));
            }
        }
        other => fail(&format!("expected PastSessions, got {other:?}")),
    }
    println!(
        "fleet: {total} sessions completed over {} connections in {:.1}s",
        blocking_jobs + 1,
        started.elapsed().as_secs_f64()
    );

    // Clean drain: close clients, shut the server down, audit counters.
    drop(blocking);
    drop(multiplexed);
    let net = server.shutdown();
    if net.protocol_errors != 0 {
        fail(&format!(
            "{} protocol errors on loopback",
            net.protocol_errors
        ));
    }
    if net.in_flight != 0 {
        fail(&format!(
            "{} connections still in flight after drain",
            net.in_flight
        ));
    }
    if net.accepts != (blocking_jobs + 1) as u64 {
        fail(&format!(
            "expected {} accepts, counted {}",
            blocking_jobs + 1,
            net.accepts
        ));
    }
    let submits = net
        .requests
        .iter()
        .find(|(kind, _)| *kind == "submit")
        .map_or(0, |(_, n)| *n);
    if submits != total as u64 {
        fail(&format!(
            "expected {total} submit requests, counted {submits}"
        ));
    }
    println!(
        "drain: {} requests, {} B in / {} B out, p99 request latency {:?}",
        net.requests_total(),
        net.bytes_in,
        net.bytes_out,
        net.request_latency_p99,
    );

    let metrics = match Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => fail("server shutdown left a live reference to the service"),
    };
    if metrics.completed != total as u64 {
        fail(&format!(
            "service completed {} of {total} sessions",
            metrics.completed
        ));
    }
    println!(
        "net smoke gate passed in {:.1}s.",
        started.elapsed().as_secs_f64()
    );
}
