//! Crash/fault torture harness for the K-DB journal (ISSUE 4 gate).
//!
//! Replays a seeded op sequence against an in-memory journal and then
//! attacks it three ways, checking the **prefix-consistency invariant**
//! after every attack: *reopening the store yields exactly the state
//! produced by some prefix of the acknowledged ops, and every
//! fsync-acknowledged op survives*.
//!
//! 1. **Byte cuts** — the journal image is cut at byte offsets
//!    (every single offset in `--quick` mode; frame-boundary-focused
//!    sampling at paper scale) and reopened: the recovered fingerprint
//!    must equal the golden fingerprint after the number of ops whose
//!    frames fit entirely inside the cut.
//! 2. **Fault schedule** — the same op sequence is rerun once per
//!    (storage-operation tick × fault kind) with that fault injected:
//!    short writes, `ENOSPC`, `EIO`, failed fsyncs. After a simulated
//!    crash and fault-free reopen, the state must be the acknowledged
//!    prefix and no fsync-acknowledged op may be missing. Snapshot
//!    compaction gets the same treatment at every tick it consumes.
//! 3. **Bit flips** — single-bit read-side corruption at sampled byte
//!    offsets: strict replay must fail loudly (never panic, never
//!    silently accept), and salvage replay must recover a clean prefix.
//! 4. **Multi-producer group commit** — N writer threads interleave
//!    frames through the sharded [`SharedKdb`] group committer, one
//!    collection each, under every write-side fault kind. The invariant
//!    becomes per-collection: the reopened state of each collection must
//!    be the prefix of *that writer's* acknowledged ops at some length
//!    between its fsync-covered floor and its acked count — regardless
//!    of how the writers interleaved in the journal.
//!
//! Any failure prints the seed and attack coordinates, so
//! `kdb_torture --seed N` replays it exactly.
//!
//! Run: `cargo run -p ada-bench --release --bin kdb_torture [-- --quick]`

use std::path::Path;
use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

use ada_kdb::journal::{replay_bytes, DurabilityPolicy, Op, RecoveryMode};
use ada_kdb::{
    fingerprint_ops, Document, FaultKind, FaultyStorage, Kdb, KdbError, MemStorage, SharedKdb,
    Storage, StoreOptions,
};

const DEFAULT_SEED: u64 = 0xADA4;

fn fail(seed: u64, msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    eprintln!("replay with: cargo run -p ada-bench --release --bin kdb_torture -- --seed {seed}");
    exit(1);
}

/// SplitMix64 — the only randomness in the harness, fully seed-driven.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One step of the seeded workload, pre-planned so every torture rerun
/// issues the identical sequence regardless of which steps fail.
#[derive(Clone)]
enum Step {
    CreateColl(String),
    CreateIndex(String, String),
    Insert(String, Document),
    Update(String, u64, Document),
    Delete(String, u64),
}

impl Step {
    /// Issues the step against a live store. `Ok(true)` means the op
    /// was acknowledged (journaled); semantic rejections of ops made
    /// stale by an earlier fault (unknown document after a rolled-back
    /// insert) count as not-issued, while I/O errors surface as `Err`.
    fn issue(&self, db: &mut Kdb) -> Result<bool, KdbError> {
        let outcome = match self {
            Step::CreateColl(name) => db.create_collection(name.clone()),
            Step::CreateIndex(name, path) => db.create_index(name, path.clone()),
            Step::Insert(name, doc) => db.insert(name, doc.clone()).map(|_| ()),
            Step::Update(name, id, doc) => db.update(name, *id, doc.clone()),
            Step::Delete(name, id) => db.delete(name, *id),
        };
        match outcome {
            Ok(()) => Ok(true),
            Err(KdbError::Io(_)) => Err(outcome.unwrap_err()),
            // Any non-I/O rejection leaves the state untouched.
            Err(_) => Ok(false),
        }
    }
}

/// A synthetic patient record shaped like the paper's cohort rows.
fn patient_doc(rng: &mut Rng, i: usize) -> Document {
    Document::new()
        .with("patient", i as i64)
        .with("age", (18 + rng.below(80)) as i64)
        .with("gender", if rng.below(2) == 0 { "F" } else { "M" })
        .with("diagnosis", format!("D{:03}", rng.below(140)))
        .with("cost", (rng.below(500_000) as f64) / 100.0)
}

/// Plans the seeded workload: `patients` inserts interleaved with
/// updates and deletes across two collections, ids tracked so every
/// step is valid when nothing fails.
fn plan_steps(seed: u64, patients: usize) -> Vec<Step> {
    let mut rng = Rng(seed);
    let mut steps = vec![
        Step::CreateColl("patients".into()),
        Step::CreateIndex("patients".into(), "diagnosis".into()),
        Step::CreateColl("knowledge".into()),
    ];
    // Mirror the store's id assignment (1-based per collection).
    let mut live: Vec<u64> = Vec::new();
    for (i, next_id) in (0..patients).zip(1u64..) {
        steps.push(Step::Insert("patients".into(), patient_doc(&mut rng, i)));
        live.push(next_id);
        match rng.below(10) {
            0..=1 if !live.is_empty() => {
                let id = live[rng.below(live.len() as u64) as usize];
                steps.push(Step::Update(
                    "patients".into(),
                    id,
                    patient_doc(&mut rng, i).with("revised", true),
                ));
            }
            2 if live.len() > 1 => {
                let id = live.swap_remove(rng.below(live.len() as u64) as usize);
                steps.push(Step::Delete("patients".into(), id));
            }
            3 => {
                steps.push(Step::Insert(
                    "knowledge".into(),
                    Document::new()
                        .with("kind", "cluster")
                        .with("score", (rng.below(1000) as f64) / 1000.0),
                ));
            }
            _ => {}
        }
    }
    steps
}

fn open_mem(mem: &MemStorage, durability: DurabilityPolicy) -> Result<Kdb, KdbError> {
    Kdb::open_with(
        Path::new("journal"),
        StoreOptions::with_storage(Arc::new(mem.clone())).durability(durability),
    )
}

/// The golden run: every step applied fault-free. Returns the per-op
/// fingerprints (`fp[j]` = state after `j` acknowledged ops), the
/// journal byte length after each acknowledged op, and the final image.
struct Golden {
    fingerprints: Vec<u64>,
    end_offsets: Vec<usize>,
    image: Vec<u8>,
    acked: usize,
}

fn golden_run(seed: u64, steps: &[Step]) -> Golden {
    let mem = MemStorage::new();
    let mut db = open_mem(&mem, DurabilityPolicy::SnapshotOnly)
        .unwrap_or_else(|e| fail(seed, &format!("golden open failed: {e}")));
    let mut fingerprints = vec![db.fingerprint()];
    let mut end_offsets = Vec::new();
    for step in steps {
        let issued = step
            .issue(&mut db)
            .unwrap_or_else(|e| fail(seed, &format!("golden step failed: {e}")));
        if issued {
            fingerprints.push(db.fingerprint());
            end_offsets.push(mem.len(Path::new("journal")).unwrap_or(0));
        }
    }
    let image = mem.bytes(Path::new("journal")).unwrap_or_default();
    Golden {
        acked: end_offsets.len(),
        fingerprints,
        end_offsets,
        image,
    }
}

/// Byte-cut attack: install `image[..cut]`, reopen, compare against the
/// golden fingerprint for the op count that fits inside the cut.
fn check_cut(seed: u64, golden: &Golden, cut: usize) {
    let expect_ops = golden
        .end_offsets
        .iter()
        .take_while(|&&end| end <= cut)
        .count();
    let mem = MemStorage::new();
    mem.install(Path::new("journal"), golden.image[..cut].to_vec());
    let db = open_mem(&mem, DurabilityPolicy::SnapshotOnly)
        .unwrap_or_else(|e| fail(seed, &format!("reopen after cut at byte {cut} failed: {e}")));
    if db.fingerprint() != golden.fingerprints[expect_ops] {
        fail(
            seed,
            &format!(
                "cut at byte {cut}: recovered state is not the {expect_ops}-op prefix \
                 (journal {} bytes)",
                golden.image.len()
            ),
        );
    }
}

/// Fault-schedule attack: rerun the workload with one fault kind armed
/// at one storage tick, crash, reopen fault-free, and check the prefix
/// invariant plus fsync-durability.
fn check_fault_point(seed: u64, steps: &[Step], golden: &Golden, tick: u64, kind: FaultKind) {
    let coord = format!("fault {} at tick {tick}", kind.name());
    let mem = Arc::new(MemStorage::new());
    let (storage, handle) = FaultyStorage::wrap(Arc::clone(&mem) as Arc<dyn Storage>);
    handle.fail_at(tick, kind);
    let options = StoreOptions {
        storage,
        durability: DurabilityPolicy::Always,
        recovery: RecoveryMode::Strict,
    };
    let mut acked = 0usize;
    let mut durable = 0u64;
    if let Ok(mut db) = Kdb::open_with(Path::new("journal"), options) {
        for step in steps {
            match step.issue(&mut db) {
                Ok(true) => acked += 1,
                Ok(false) => {}
                // First I/O failure poisons the journal; keep issuing to
                // prove later acks are refused, not silently lost.
                Err(_) => {}
            }
        }
        durable = db.journal_durable_ops();
    }
    // Crash: drop the store, clear the schedule, reopen over the raw
    // bytes the "disk" actually holds.
    handle.clear();
    let db = open_mem(&mem, DurabilityPolicy::SnapshotOnly)
        .unwrap_or_else(|e| fail(seed, &format!("{coord}: reopen failed: {e}")));
    if db.fingerprint() != golden.fingerprints[acked] {
        fail(
            seed,
            &format!(
                "{coord}: recovered state is not the {acked}-op acknowledged prefix \
                 ({} acked in golden run)",
                golden.acked
            ),
        );
    }
    if (acked as u64) < durable {
        fail(
            seed,
            &format!("{coord}: {durable} ops were fsync-acknowledged but only {acked} survive"),
        );
    }
}

/// Counts the storage ticks one full fault-free workload consumes
/// (and, separately, the ticks of a trailing snapshot compaction), so
/// the fault schedule can enumerate both.
fn count_ticks(seed: u64, steps: &[Step]) -> (u64, u64) {
    let mem = Arc::new(MemStorage::new());
    let (storage, handle) = FaultyStorage::wrap(mem as Arc<dyn Storage>);
    let options = StoreOptions {
        storage,
        durability: DurabilityPolicy::Always,
        recovery: RecoveryMode::Strict,
    };
    let mut db = Kdb::open_with(Path::new("journal"), options)
        .unwrap_or_else(|e| fail(seed, &format!("tick-count open failed: {e}")));
    for step in steps {
        step.issue(&mut db)
            .unwrap_or_else(|e| fail(seed, &format!("tick-count step failed: {e}")));
    }
    let workload = handle.ticks();
    db.snapshot()
        .unwrap_or_else(|e| fail(seed, &format!("tick-count snapshot failed: {e}")));
    (workload, handle.ticks() - workload)
}

/// Snapshot compaction under faults: whatever tick the fault lands on,
/// a crash right after must reopen to the full final state (rename is
/// atomic: the disk holds either the old journal or the compacted one).
fn check_snapshot_fault(seed: u64, steps: &[Step], golden: &Golden, tick: u64, kind: FaultKind) {
    let coord = format!("snapshot fault {} at tick {tick}", kind.name());
    let mem = Arc::new(MemStorage::new());
    let (storage, handle) = FaultyStorage::wrap(Arc::clone(&mem) as Arc<dyn Storage>);
    let options = StoreOptions {
        storage,
        durability: DurabilityPolicy::SnapshotOnly,
        recovery: RecoveryMode::Strict,
    };
    let mut db = Kdb::open_with(Path::new("journal"), options)
        .unwrap_or_else(|e| fail(seed, &format!("{coord}: open failed: {e}")));
    for step in steps {
        step.issue(&mut db)
            .unwrap_or_else(|e| fail(seed, &format!("{coord}: step failed: {e}")));
    }
    handle.fail_at(handle.ticks() + tick, kind);
    let _ = db.snapshot(); // may fail — the disk must stay consistent
    drop(db);
    handle.clear();
    let db = open_mem(&mem, DurabilityPolicy::SnapshotOnly)
        .unwrap_or_else(|e| fail(seed, &format!("{coord}: reopen failed: {e}")));
    if db.fingerprint() != golden.fingerprints[golden.acked] {
        fail(seed, &format!("{coord}: state lost across compaction"));
    }
}

/// Bit-flip attack: strict replay must reject (or cleanly truncate) the
/// flipped image without panicking; salvage replay must recover a
/// prefix of the golden op sequence.
fn check_bit_flip(seed: u64, golden: &Golden, golden_ops: &[Op], byte: usize, bit: u8) {
    let mut image = golden.image.clone();
    image[byte] ^= 1 << bit;
    if byte < ada_kdb::journal::V2_MAGIC.len() {
        // A flip inside the format magic downgrades the file to the
        // unframed v1 reading, which has no checksums by construction —
        // the only guarantee there is that neither mode panics.
        let _ = replay_bytes(&image, RecoveryMode::Strict);
        let _ = replay_bytes(&image, RecoveryMode::Salvage);
        return;
    }
    match replay_bytes(&image, RecoveryMode::Strict) {
        Ok(replayed) => {
            // A flip the framing cannot see must not change any op.
            if replayed.ops != golden_ops {
                fail(
                    seed,
                    &format!("bit flip at byte {byte} bit {bit} silently altered replay"),
                );
            }
        }
        Err(KdbError::Corrupt { offset, .. }) => {
            if offset as usize > image.len() {
                fail(seed, &format!("corruption offset {offset} out of range"));
            }
        }
        Err(e) => fail(
            seed,
            &format!("bit flip at byte {byte} bit {bit}: unexpected error {e}"),
        ),
    }
    let salvage = replay_bytes(&image, RecoveryMode::Salvage).unwrap_or_else(|e| {
        fail(
            seed,
            &format!("salvage replay failed at byte {byte} bit {bit}: {e}"),
        )
    });
    if salvage.ops[..] != golden_ops[..salvage.ops.len()] {
        fail(
            seed,
            &format!("bit flip at byte {byte} bit {bit}: salvage is not a clean prefix"),
        );
    }
}

impl Step {
    /// Issues the step through the sharded facade. `Ok((acked,
    /// durable))`: `acked` mirrors [`Step::issue`], `durable` is the
    /// commit receipt (always `false` for schema ops, which have no
    /// receipt variant — a conservative floor).
    fn issue_shared(&self, db: &SharedKdb) -> Result<(bool, bool), KdbError> {
        let outcome = match self {
            Step::CreateColl(name) => db.create_collection(name).map(|()| false),
            Step::CreateIndex(name, path) => db.create_index(name, path).map(|()| false),
            Step::Insert(name, doc) => db.insert_committed(name, doc.clone()).map(|(_, d)| d),
            Step::Update(name, id, doc) => db.update_committed(name, *id, doc.clone()),
            Step::Delete(name, id) => db.delete_committed(name, *id),
        };
        match outcome {
            Ok(durable) => Ok((true, durable)),
            Err(e @ KdbError::Io(_)) => Err(e),
            Err(_) => Ok((false, false)),
        }
    }
}

/// Which collection an op touches — projects the recovered journal
/// state onto a single writer in the multi-producer phase.
fn op_collection(op: &Op) -> &str {
    match op {
        Op::CreateCollection { name }
        | Op::CreateIndex { name, .. }
        | Op::Insert { name, .. }
        | Op::Update { name, .. }
        | Op::Delete { name, .. } => name,
    }
}

/// Per-writer seeded plan for the multi-producer phase: one collection
/// (`w<writer>`) per writer, inserts interleaved with updates and
/// deletes, every step valid when nothing fails.
fn plan_writer_steps(seed: u64, writer: usize, ops: usize) -> Vec<Step> {
    let coll = format!("w{writer}");
    let mut rng = Rng(seed ^ (writer as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut steps = vec![
        Step::CreateColl(coll.clone()),
        Step::CreateIndex(coll.clone(), "diagnosis".into()),
    ];
    let mut live: Vec<u64> = Vec::new();
    let mut next_id = 1u64;
    while steps.len() < ops + 2 {
        match rng.below(10) {
            0..=1 if !live.is_empty() => {
                let id = live[rng.below(live.len() as u64) as usize];
                steps.push(Step::Update(
                    coll.clone(),
                    id,
                    patient_doc(&mut rng, id as usize).with("revised", true),
                ));
            }
            2 if live.len() > 1 => {
                let id = live.swap_remove(rng.below(live.len() as u64) as usize);
                steps.push(Step::Delete(coll.clone(), id));
            }
            _ => {
                steps.push(Step::Insert(
                    coll.clone(),
                    patient_doc(&mut rng, next_id as usize),
                ));
                live.push(next_id);
                next_id += 1;
            }
        }
    }
    steps
}

/// Fingerprint ladder for one writer: `ladder[j]` is the fingerprint of
/// the writer's collection after its first `j` acknowledged ops,
/// computed serially against a private in-memory store.
fn writer_ladder(seed: u64, steps: &[Step]) -> Vec<u64> {
    let mut db = Kdb::in_memory();
    let mut ladder = vec![fingerprint_ops(&db.state_ops())];
    for step in steps {
        match step.issue(&mut db) {
            Ok(true) => ladder.push(fingerprint_ops(&db.state_ops())),
            Ok(false) => fail(seed, "writer golden plan contains an invalid step"),
            Err(e) => fail(seed, &format!("writer golden step failed: {e}")),
        }
    }
    ladder
}

/// Runs every writer's plan concurrently through the sharded facade.
/// Returns per-writer `(acked, floor)`: ops acknowledged and the index
/// of the last op whose commit receipt reported fsync-durable.
fn run_writers(db: &SharedKdb, plans: &[Vec<Step>]) -> Vec<(usize, usize)> {
    let mut out = vec![(0, 0); plans.len()];
    std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .map(|steps| {
                let db = db.clone();
                scope.spawn(move || {
                    let (mut acked, mut floor) = (0usize, 0usize);
                    for step in steps {
                        // Rejected or failed steps keep issuing — later
                        // acks must be refused, not silently lost.
                        if let Ok((true, durable)) = step.issue_shared(&db) {
                            acked += 1;
                            if durable {
                                floor = acked;
                            }
                        }
                    }
                    (acked, floor)
                })
            })
            .collect();
        for (slot, handle) in out.iter_mut().zip(handles) {
            *slot = handle.join().expect("writer thread panicked");
        }
    });
    out
}

/// Checks the per-collection prefix invariant after a multi-producer
/// crash: each writer's recovered collection must be exactly its
/// `acked`-op prefix (the journal orders a writer's frames in issue
/// order, whatever the global interleaving), and the fsync-covered
/// floor can never exceed what survived.
fn check_writer_prefixes(
    seed: u64,
    coord: &str,
    state: &[Op],
    ladders: &[Vec<u64>],
    results: &[(usize, usize)],
) {
    for (w, (ladder, &(acked, floor))) in ladders.iter().zip(results).enumerate() {
        let coll = format!("w{w}");
        let ops: Vec<Op> = state
            .iter()
            .filter(|op| op_collection(op) == coll)
            .cloned()
            .collect();
        let fp = fingerprint_ops(&ops);
        if floor > acked {
            fail(
                seed,
                &format!("{coord}: writer {w} durable floor {floor} exceeds acked {acked}"),
            );
        }
        if fp != ladder[acked] {
            let found = ladder.iter().position(|&l| l == fp);
            fail(
                seed,
                &format!(
                    "{coord}: writer {w} recovered at prefix {found:?}, \
                     expected its {acked}-op acked prefix"
                ),
            );
        }
    }
}

/// Multi-producer fault attack: all writers race through the group
/// committer with one fault armed at one storage tick, then crash,
/// clear, reopen fault-free, and check every writer's prefix.
fn check_mp_fault_point(
    seed: u64,
    plans: &[Vec<Step>],
    ladders: &[Vec<u64>],
    tick: u64,
    kind: FaultKind,
) {
    let coord = format!("multi-producer fault {} at tick {tick}", kind.name());
    let mem = Arc::new(MemStorage::new());
    let (storage, handle) = FaultyStorage::wrap(Arc::clone(&mem) as Arc<dyn Storage>);
    handle.fail_at(tick, kind);
    let options = StoreOptions {
        storage,
        durability: DurabilityPolicy::Always,
        recovery: RecoveryMode::Strict,
    };
    let mut results = vec![(0, 0); plans.len()];
    if let Ok(db) = SharedKdb::open_with(Path::new("journal"), options) {
        results = run_writers(&db, plans);
    }
    handle.clear();
    let db = open_mem(&mem, DurabilityPolicy::SnapshotOnly)
        .unwrap_or_else(|e| fail(seed, &format!("{coord}: reopen failed: {e}")));
    check_writer_prefixes(seed, &coord, &db.state_ops(), ladders, &results);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map_or(DEFAULT_SEED, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("bad --seed {s}");
                exit(2)
            })
        });
    // Paper scale (6,380 patients) by default; a small journal in quick
    // mode so every byte offset and every tick is attackable in CI.
    let patients = if quick { 24 } else { 6_380 };
    let t0 = Instant::now();

    let steps = plan_steps(seed, patients);
    let golden = golden_run(seed, &steps);
    let golden_ops = replay_bytes(&golden.image, RecoveryMode::Strict)
        .unwrap_or_else(|e| fail(seed, &format!("golden journal does not replay: {e}")))
        .ops;
    println!(
        "golden run: seed {seed}, {} steps, {} acked ops, journal {} bytes",
        steps.len(),
        golden.acked,
        golden.image.len()
    );

    // Phase 1: byte cuts.
    let cuts: Vec<usize> = if quick {
        (0..=golden.image.len()).collect()
    } else {
        // Paper scale: a stride of frame boundaries ± 1 byte (where a
        // torn final record flips between surviving and truncating)
        // plus a seeded sample of interior offsets. Coverage is logged,
        // not silent — every offset would cost hours of replay.
        let mut rng = Rng(seed ^ 0xC075);
        let boundary_step = (golden.end_offsets.len() / 400).max(1);
        let mut cuts: Vec<usize> = golden
            .end_offsets
            .iter()
            .step_by(boundary_step)
            .flat_map(|&end| [end.saturating_sub(1), end, end + 1])
            .filter(|&c| c <= golden.image.len())
            .collect();
        cuts.extend((0..500).map(|_| rng.below(golden.image.len() as u64 + 1) as usize));
        cuts.sort_unstable();
        cuts.dedup();
        cuts
    };
    for &cut in &cuts {
        check_cut(seed, &golden, cut);
    }
    if quick {
        println!("byte cuts: all {} offsets consistent", cuts.len());
    } else {
        println!(
            "byte cuts: {} of {} offsets sampled (frame boundaries ±1 + seeded interior), \
             all consistent",
            cuts.len(),
            golden.image.len() + 1
        );
    }

    // Phase 2: fault schedule.
    let (ticks, snapshot_ticks) = count_ticks(seed, &steps);
    let tick_step = if quick { 1 } else { (ticks / 120).max(1) };
    let mut fault_points = 0usize;
    for kind in [
        FaultKind::ShortWrite,
        FaultKind::NoSpace,
        FaultKind::IoError,
        FaultKind::SyncFail,
    ] {
        for tick in (0..ticks).step_by(tick_step as usize) {
            check_fault_point(seed, &steps, &golden, tick, kind);
            fault_points += 1;
        }
        // Snapshot compaction consumes its own ticks (create, chunked
        // appends, sync, rename, dir-sync, reopen): attack every one.
        for tick in 0..=snapshot_ticks {
            check_snapshot_fault(seed, &steps, &golden, tick, kind);
            fault_points += 1;
        }
    }
    if tick_step > 1 {
        println!(
            "fault schedule: {fault_points} points consistent \
             (every {tick_step}th of {ticks} ticks × 4 kinds; stride drops the rest)"
        );
    } else {
        println!("fault schedule: {fault_points} points consistent (all {ticks} ticks × 4 kinds)");
    }

    // Phase 3: bit flips.
    let flip_step = if quick {
        1
    } else {
        (golden.image.len() / 1_200).max(1)
    };
    let mut rng = Rng(seed ^ 0xF11B);
    let mut flips = 0usize;
    for byte in (0..golden.image.len()).step_by(flip_step) {
        check_bit_flip(seed, &golden, &golden_ops, byte, (rng.below(8)) as u8);
        flips += 1;
    }
    println!(
        "bit flips: {flips} of {} bytes attacked (one seeded bit each), none silent",
        golden.image.len()
    );

    // Phase 4: multi-producer group commit.
    const WRITERS: usize = 4;
    let writer_ops = if quick { 12 } else { 400 };
    let plans: Vec<Vec<Step>> = (0..WRITERS)
        .map(|w| plan_writer_steps(seed, w, writer_ops))
        .collect();
    let ladders: Vec<Vec<u64>> = plans.iter().map(|p| writer_ladder(seed, p)).collect();

    // Interleaving invariance first: two clean runs schedule frames in
    // different global orders; both must land every writer at its full
    // prefix and the same final store fingerprint.
    let mut clean_fp = None;
    let mut mp_ticks = 0u64;
    for round in 0..2u32 {
        let mem = Arc::new(MemStorage::new());
        let (storage, handle) = FaultyStorage::wrap(Arc::clone(&mem) as Arc<dyn Storage>);
        let options = StoreOptions {
            storage,
            durability: DurabilityPolicy::Always,
            recovery: RecoveryMode::Strict,
        };
        let db = SharedKdb::open_with(Path::new("journal"), options)
            .unwrap_or_else(|e| fail(seed, &format!("multi-producer clean open failed: {e}")));
        let results = run_writers(&db, &plans);
        drop(db); // crash without shutdown sync
        let reopened = open_mem(&mem, DurabilityPolicy::SnapshotOnly)
            .unwrap_or_else(|e| fail(seed, &format!("multi-producer clean reopen failed: {e}")));
        check_writer_prefixes(
            seed,
            &format!("multi-producer clean round {round}"),
            &reopened.state_ops(),
            &ladders,
            &results,
        );
        let fp = reopened.fingerprint();
        if *clean_fp.get_or_insert(fp) != fp {
            fail(seed, "multi-producer final state depends on interleaving");
        }
        mp_ticks = mp_ticks.max(handle.ticks());
    }

    // Then the fault schedule against the concurrent run. Tick counts
    // vary with interleaving (group fsync rounds are scheduling-
    // dependent); a fault armed past the run's actual tick count simply
    // never fires, which still exercises the clean path.
    let mp_step = if quick { 1 } else { (mp_ticks / 40).max(1) };
    let mut mp_points = 0usize;
    for kind in [
        FaultKind::ShortWrite,
        FaultKind::NoSpace,
        FaultKind::IoError,
        FaultKind::SyncFail,
    ] {
        for tick in (0..mp_ticks).step_by(mp_step as usize) {
            check_mp_fault_point(seed, &plans, &ladders, tick, kind);
            mp_points += 1;
        }
    }
    println!(
        "multi-producer: {WRITERS} writers x {writer_ops} ops each, \
         {mp_points} fault points consistent (schedule spans {mp_ticks} ticks x 4 kinds)"
    );

    println!(
        "kdb torture passed: seed {seed}, {} patients, {:.2}s",
        patients,
        t0.elapsed().as_secs_f64()
    );
}
