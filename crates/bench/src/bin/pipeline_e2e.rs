//! Reproduces **Figure 1**: the ADA-HEALTH architecture, exercised
//! end-to-end.
//!
//! Figure 1 is a component diagram, not a data plot; its reproduction is
//! structural — every box exists as a module and this binary runs them
//! in the diagram's order on the paper-scale cohort, printing the
//! component trace: characterization → transformation selection →
//! adaptive partial mining → algorithm optimization → knowledge
//! extraction → K-DB storage → end-goal identification → knowledge
//! ranking with feedback.
//!
//! Run: `cargo run -p ada-bench --release --bin pipeline_e2e`

use ada_bench::paper_log;
use ada_core::pipeline::{AdaHealth, AdaHealthConfig};
use ada_kdb::schema::names;

fn main() {
    println!("=== Figure 1 reproduction: ADA-HEALTH end-to-end ===");
    println!();

    let log = paper_log();
    let mut engine = AdaHealth::new(AdaHealthConfig::paper("figure1-session"));
    let report = engine.run(&log);

    println!("[1] data characterization");
    let d = &report.descriptor;
    println!(
        "    {} patients / {} exam types / {} records; sparsity {:.3}, gini {:.3}",
        d.summary.num_patients,
        d.summary.num_exam_types,
        d.summary.num_records,
        d.summary.sparsity,
        d.summary.exam_frequency_gini
    );
    println!(
        "    coverage: top 20% of types -> {:.1}% of rows; top 40% -> {:.1}%",
        d.coverage_top20 * 100.0,
        d.coverage_top40 * 100.0
    );
    println!();

    println!("[2] data transformation selection");
    for s in &report.transform.ranked {
        println!(
            "    {:<10} overall-sim {:.4}  silhouette {:+.4}",
            s.weighting.to_string(),
            s.overall_similarity,
            s.silhouette
        );
    }
    println!("    selected: {}", report.transform.best());
    println!();

    println!(
        "[3] adaptive partial mining (eps = {:.0}%)",
        report.partial.epsilon * 100.0
    );
    for (i, step) in report.partial.steps.iter().enumerate() {
        let marker = if i == report.partial.selected {
            "  <= selected"
        } else {
            ""
        };
        println!(
            "    {:>3.0}% types ({:>5.1}% rows): similarity {:.4}{marker}",
            step.fraction * 100.0,
            step.row_coverage * 100.0,
            step.mean_similarity()
        );
    }
    println!();

    println!("[4] algorithm optimization (Table I sweep)");
    for line in report.optimizer.format_table().lines() {
        println!("    {line}");
    }
    println!(
        "    SSE-viable window starts at K = {}",
        report.optimizer.sse_window_start
    );
    println!();

    println!("[5] knowledge extraction");
    println!("    clusters at K = {}:", report.optimizer.selected_k);
    for c in &report.clusters {
        println!(
            "      cluster {}: {:>5} patients, cohesion {:.3}, groups: {}",
            c.cluster,
            c.size,
            c.cohesion,
            c.top_groups
                .iter()
                .map(|g| g.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    println!("    association rules (top 5 of {}):", report.rules.len());
    for item in report
        .ranked_items
        .iter()
        .filter(|s| s.contains("=>"))
        .take(5)
    {
        println!("      {item}");
    }
    println!();

    println!("[K-DB] collection sizes after the session");
    for name in names::ALL {
        let len = engine.kdb().collection(name).map_or(0, |c| c.len());
        println!("    {name:<20} {len}");
    }
    println!();

    if let Some(compliance) = &report.compliance {
        println!("[5c] guideline-compliance audit (treatment-compliance goal viable)");
        for r in &compliance.results {
            println!(
                "    {:<52} {:>5.1}% ({}/{} eligible)",
                r.name,
                r.rate() * 100.0,
                r.compliant,
                r.eligible
            );
        }
        println!("    overall: {:.1}%", compliance.overall_rate() * 100.0);
        println!();
    }

    println!("[6] end-goal identification");
    for (goal, score, verdict) in &report.goals {
        println!(
            "    {:<26} score {:.2}  viable: {:<5}  ({})",
            goal.to_string(),
            score,
            verdict.viable,
            verdict.reason
        );
    }
    println!();

    println!(
        "[7] knowledge navigation ({} feedback entries absorbed)",
        report.feedback_recorded
    );
    println!("    top 5 knowledge items after feedback adaptation:");
    for item in report.ranked_items.iter().take(5) {
        println!("      {item}");
    }
}
