//! Scratch calibration tool for the synthetic generator (dev aid).
use ada_core::partial::HorizontalPartialMiner;
use ada_dataset::stats;
use ada_dataset::synthetic::{generate_with_truth, SyntheticConfig};

fn main() {
    let mut cfg = SyntheticConfig::small();
    let args: Vec<String> = std::env::args().collect();
    // args: [s, shift, bundle, sig, episodic_frac, mask, paper?]
    if args.len() > 1 {
        cfg.zipf_exponent = args[1].parse().unwrap();
    }
    if args.len() > 2 {
        cfg.zipf_shift_fraction = args[2].parse().unwrap();
    }
    if args.len() > 3 {
        cfg.bundle_boost = args[3].parse().unwrap();
    }
    if args.len() > 4 {
        cfg.signature_boost = args[4].parse().unwrap();
    }
    if args.len() > 5 {
        cfg.episodic_fraction = args[5].parse().unwrap();
    }
    if args.len() > 6 {
        cfg.episodic_mask = args[6].parse().unwrap();
    }
    if args.len() > 7 {
        cfg.signature_band_lo = args[7].parse().unwrap();
    }
    if args.len() > 8 {
        cfg.signature_band_hi = args[8].parse().unwrap();
    }
    if args.len() > 9 {
        cfg.generic_head_fraction = args[9].parse().unwrap();
    }
    if args.len() > 10 && args[10] == "paper" {
        cfg.num_patients = 6380;
        cfg.num_exam_types = 159;
        cfg.target_records = 95788;
    }
    let data = generate_with_truth(&cfg, 11);
    let log = &data.log;
    let c20 = stats::coverage_at_fraction(log, 0.20);
    let c40 = stats::coverage_at_fraction(log, 0.40);
    println!(
        "records {} c20 {:.3} c40 {:.3}",
        log.num_records(),
        c20,
        c40
    );

    // where do catalog-band (22-38% id) exams land in realized rank order?
    let n = log.num_exam_types();
    let (lo, hi) = (
        (cfg.signature_band_lo * n as f64) as usize,
        (cfg.signature_band_hi * n as f64) as usize,
    );
    let order = log.exams_by_frequency();
    let mut realized_rank = vec![0usize; n];
    for (rank, id) in order.iter().enumerate() {
        realized_rank[id.index()] = rank;
    }
    let band_ranks: Vec<usize> = (lo..hi).map(|id| realized_rank[id]).collect();
    println!(
        "band ids {lo}..{hi} realized ranks {:?} (top20 cut {})",
        band_ranks,
        n / 5
    );

    // Purity of a K=10 normalized clustering vs latent classes
    // (profile x episodic), per step.
    {
        use ada_mining::kmeans::KMeans;
        use ada_vsm::VsmBuilder;
        let classes: Vec<usize> = data
            .true_profile
            .iter()
            .zip(&data.episodic)
            .map(|(&p, &e)| p * 2 + e as usize)
            .collect();
        let num_classes = classes.iter().max().unwrap() + 1;
        let order = log.exams_by_frequency();
        for frac in [0.2, 0.4, 1.0] {
            let kcount = ((frac * n as f64).ceil() as usize).min(n);
            let pv = VsmBuilder::new()
                .normalize(true)
                .features(order[..kcount].to_vec())
                .build(log);
            let res = KMeans::new(10).seed(7).fit(&pv.matrix);
            // purity
            let mut table = vec![vec![0usize; num_classes]; 10];
            for (i, &a) in res.assignments.iter().enumerate() {
                table[a][classes[i]] += 1;
            }
            let pure: usize = table
                .iter()
                .map(|r| r.iter().max().copied().unwrap_or(0))
                .sum();
            println!(
                "frac {:.1} purity {:.3}",
                frac,
                pure as f64 / classes.len() as f64
            );
        }
    }
    let report = HorizontalPartialMiner {
        ks: vec![10, 14, 18],
        ..Default::default()
    }
    .run(log);
    for s in &report.steps {
        println!(
            "frac {:.2} types {} rowcov {:.3} sim {:.4}",
            s.fraction,
            s.included,
            s.row_coverage,
            s.mean_similarity()
        );
    }
    println!(
        "selected step {} (diff vs full: {:?})",
        report.selected,
        (0..report.steps.len())
            .map(|i| format!("{:.3}", report.difference_vs_full(i)))
            .collect::<Vec<_>>()
    );
}
