//! Safety-signal smoke gate for CI.
//!
//! Four checks, any failure exits non-zero:
//!
//! 1. **Yield** — on the paper-scale cohort the signal miner must emit
//!    a non-empty ranked collection: descending combined scores, every
//!    CI bracketing its point estimate, table count consistent with the
//!    counters.
//! 2. **Determinism** — serial vs 8-way chunk-parallel mining must
//!    produce identical reports, and an observed run must match an
//!    unobserved one.
//! 3. **Exposition** — a signals session through the analysis service
//!    must surface the four pinned `ada_signals_*` Prometheus counter
//!    families with non-zero table/emission counts.
//! 4. **Overhead** — mining with a live flight recorder attached must
//!    stay within 5% of the unobserved wall time.
//!
//! Run: `cargo run -p ada-bench --release --bin signals_smoke [-- --quick]`

use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

use ada_bench::{bench_log, paper_log};
use ada_core::RunControl;
use ada_kdb::Kdb;
use ada_obs::FlightRecorder;
use ada_service::{AnalysisService, JobSpec, ServiceConfig, SessionState, Workload};
use ada_signals::{mine_signals, SignalConfig};

/// Wall-clock repetitions per timed variant; the minimum is compared.
const REPS: usize = 7;

/// Overhead budget for the observed mining path.
const MAX_OVERHEAD: f64 = 0.05;

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    exit(1);
}

/// Paired timing: alternates the two variants within every repetition
/// so scheduler and clock drift hit both sides equally, then compares
/// the per-variant minima. Returns `(ms_a, ms_b, value_a, value_b)`.
fn paired_best_of<T>(
    reps: usize,
    mut run_a: impl FnMut() -> T,
    mut run_b: impl FnMut() -> T,
) -> (f64, f64, T, T) {
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    let mut out_a = None;
    let mut out_b = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        out_a = Some(run_a());
        best_a = best_a.min(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        out_b = Some(run_b());
        best_b = best_b.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (
        best_a,
        best_b,
        out_a.expect("at least one rep"),
        out_b.expect("at least one rep"),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let log = if quick { bench_log() } else { paper_log() };
    let config = SignalConfig::default();

    // 1. Yield on the paper-scale cohort.
    let report = mine_signals(&log, &config, &RunControl::new())
        .unwrap_or_else(|e| fail(&format!("signal mining failed: {e}")));
    if report.signals.is_empty() {
        fail("paper-scale cohort yielded no ranked signals");
    }
    if report.tables_built < report.signals.len() as u64 {
        fail("counter inconsistency: fewer tables than emitted signals");
    }
    for pair in report.signals.windows(2) {
        if pair[0].score < pair[1].score {
            fail("ranking is not in descending score order");
        }
    }
    for s in &report.signals {
        if !(s.ror.ci_low <= s.ror.ror && s.ror.ror <= s.ror.ci_high) {
            fail(&format!("CI does not bracket the estimate: {s:?}"));
        }
        if !s.score.is_finite() {
            fail(&format!("non-finite combined score: {s:?}"));
        }
    }
    println!(
        "yield: {} signals from {} tables ({} zero-cell corrected), top: {}",
        report.signals.len(),
        report.tables_built,
        report.zero_cell_corrections,
        report.signals[0].description
    );

    // 2. Determinism: serial vs chunk-parallel, observed vs unobserved.
    let parallel_cfg = SignalConfig {
        threads: 8,
        ..config.clone()
    };
    let parallel = mine_signals(&log, &parallel_cfg, &RunControl::new())
        .unwrap_or_else(|e| fail(&format!("parallel mining failed: {e}")));
    if parallel != report {
        fail("serial and 8-way chunk-parallel reports differ");
    }
    let recorder = Arc::new(FlightRecorder::new(4096));
    let observed_control = RunControl::new()
        .with_session("signals-smoke")
        .with_observer(recorder.clone());
    let observed = mine_signals(&log, &config, &observed_control)
        .unwrap_or_else(|e| fail(&format!("observed mining failed: {e}")));
    if observed != report {
        fail("observer-on vs observer-off mining reports differ");
    }
    if recorder.dropped() != 0 {
        fail("flight recorder dropped trace events during signal mining");
    }
    println!("determinism: serial, 8-way parallel, and observed reports identical");

    // 3. Service exposition pin: the four ada_signals_* counter
    // families must be present and live after one signals session.
    let service = AnalysisService::with_kdb(
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        Kdb::in_memory(),
    );
    let spec = JobSpec::new(
        ada_core::AdaHealthConfig::quick("signals-smoke"),
        Arc::new(if quick { bench_log() } else { paper_log() }),
    )
    .workload(Workload::SafetySignals(config.clone()));
    let id = service
        .submit(spec)
        .unwrap_or_else(|e| fail(&format!("submit failed: {e}")));
    match service.wait(id) {
        Ok(SessionState::Completed(outcome)) => {
            let session_report = outcome
                .signals()
                .unwrap_or_else(|| fail("signals workload returned a pipeline outcome"));
            if session_report.signals.is_empty() {
                fail("service-run signals session emitted nothing");
            }
            if session_report.feedback_recorded == 0 {
                fail("signal feedback loop recorded nothing");
            }
        }
        other => fail(&format!("signals session did not complete: {other:?}")),
    }
    let exposition = service.snapshot_prometheus();
    for family in [
        "ada_signals_tables_built_total",
        "ada_signals_zero_cell_corrections_total",
        "ada_signals_shrinkage_iterations_total",
        "ada_signals_emitted_total",
    ] {
        if !exposition.contains(family) {
            fail(&format!("exposition missing pinned family {family}"));
        }
    }
    let metrics = service.shutdown();
    if metrics.signals_tables_built == 0 || metrics.signals_emitted == 0 {
        fail("service signal counters stayed zero after a signals session");
    }
    println!(
        "exposition: {} tables, {} signals across pinned ada_signals_* families",
        metrics.signals_tables_built, metrics.signals_emitted
    );

    // 4. Overhead: observed vs unobserved mining wall time.
    let live = Arc::new(FlightRecorder::new(4096));
    let timed_control = RunControl::new()
        .with_session("signals-overhead")
        .with_observer(live);
    let (base_ms, obs_ms, plain, traced) = paired_best_of(
        REPS,
        || mine_signals(&log, &config, &RunControl::new()).expect("plain mining"),
        || mine_signals(&log, &config, &timed_control).expect("observed mining"),
    );
    if plain != traced {
        fail("timed observed run diverged from the plain run");
    }
    let overhead = (obs_ms - base_ms) / base_ms;
    println!(
        "tracing overhead: plain {base_ms:.1} ms, recorded {obs_ms:.1} ms ({:+.2}%)",
        overhead * 100.0
    );
    if overhead > MAX_OVERHEAD {
        fail(&format!(
            "tracing overhead {:.2}% exceeds the {:.0}% budget",
            overhead * 100.0,
            MAX_OVERHEAD * 100.0
        ));
    }

    println!("signals smoke gate passed.");
}
