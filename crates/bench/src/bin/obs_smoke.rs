//! Observability smoke gate for CI.
//!
//! Five checks, any failure exits non-zero:
//!
//! 1. **Determinism** — a quick end-to-end pipeline run with the flight
//!    recorder attached must produce a report identical to an
//!    unobserved run, with zero dropped trace events.
//! 2. **Session record** — the recorder's terminal document validates
//!    against `ada_kdb::schema`, persists into the `sessions`
//!    collection, reads back via `past_sessions`, and exports as JSON.
//! 3. **Overhead** — on the quick K-means cohort, the instrumented
//!    kernel path (`fit_with_stats` + counter emission into a live
//!    recorder, wrapped in a span) must stay within 5% of the plain
//!    `fit` wall time and assign every row byte-identically.
//! 4. **End-to-end trace** — one remote sampled session over the ADAN1
//!    wire must persist exactly one trace whose span tree links queue
//!    wait, every pipeline stage, and at least one group-commit fsync
//!    round under valid parent indexes.
//! 5. **Sampling overhead** — full service sessions at `sample_rate`
//!    1.0 must stay within 5% of rate-0 sessions (paired minima).
//!
//! Run: `cargo run -p ada-bench --release --bin obs_smoke`

use std::path::Path;
use std::process::exit;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ada_bench::bench_log;
use ada_core::{AdaHealth, AdaHealthConfig, PipelineStage, RunControl};
use ada_kdb::{schema, DurabilityPolicy, Kdb, MemStorage, StoreOptions, Value};
use ada_mining::kmeans::KMeans;
use ada_net::proto::{CohortSpec, Request, Response, WireJobSpec};
use ada_net::{Client, NetConfig, NetServer};
use ada_obs::{document_to_json, past_sessions, FlightRecorder};
use ada_service::{AnalysisService, ServiceConfig, SessionState, DEFAULT_TRACE_SEED};
use ada_vsm::VsmBuilder;

/// Wall-clock repetitions per timed variant; the minimum is compared.
const REPS: usize = 7;

/// Overhead budget for the instrumented kernel path (ISSUE 3 gate).
const MAX_OVERHEAD: f64 = 0.05;

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    exit(1);
}

/// Paired timing: alternates the two variants within every repetition
/// so scheduler and clock drift hit both sides equally, then compares
/// the per-variant minima. Returns `(ms_a, ms_b, value_a, value_b)`.
fn paired_best_of<T>(
    reps: usize,
    mut run_a: impl FnMut() -> T,
    mut run_b: impl FnMut() -> T,
) -> (f64, f64, T, T) {
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    let mut out_a = None;
    let mut out_b = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        out_a = Some(run_a());
        best_a = best_a.min(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        out_b = Some(run_b());
        best_b = best_b.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (
        best_a,
        best_b,
        out_a.expect("at least one rep"),
        out_b.expect("at least one rep"),
    )
}

fn main() {
    let log = bench_log();

    // 1. Observer on vs off: the reports must match field-for-field.
    let config = AdaHealthConfig::quick("obs-smoke");
    let report_off = AdaHealth::with_kdb(config.clone(), Kdb::in_memory())
        .run_controlled(&log, &RunControl::new())
        .unwrap_or_else(|e| fail(&format!("unobserved run failed: {e}")));
    let recorder = Arc::new(FlightRecorder::new(1024));
    let control = RunControl::new().with_observer(recorder.clone());
    let report_on = AdaHealth::with_kdb(config, Kdb::in_memory())
        .run_controlled(&log, &control)
        .unwrap_or_else(|e| fail(&format!("observed run failed: {e}")));
    if report_off != report_on {
        fail("observer-on vs observer-off pipeline reports differ");
    }
    if recorder.dropped() != 0 {
        fail("flight recorder dropped trace events on the smoke cohort");
    }
    println!("determinism: observed and unobserved reports identical");

    // 2. Terminal session record: schema-validated persist + read-back
    // + JSON export. `persist` runs `validate_session_doc` internally;
    // a malformed document fails here.
    let mut db = Kdb::in_memory();
    schema::init_schema(&mut db).unwrap_or_else(|e| fail(&format!("schema init failed: {e}")));
    recorder
        .persist(&mut db, "obs-smoke", "completed", "")
        .unwrap_or_else(|e| fail(&format!("session record rejected by schema: {e}")));
    let past = past_sessions(&db);
    if past.len() != 1 {
        fail(&format!(
            "expected 1 persisted session, found {}",
            past.len()
        ));
    }
    let doc = &past[0].1;
    schema::validate_session_doc(doc)
        .unwrap_or_else(|e| fail(&format!("read-back record invalid: {e}")));
    let spans = doc
        .get("spans")
        .and_then(Value::as_array)
        .map_or(0, |spans| spans.len());
    if spans <= PipelineStage::ALL.len() {
        fail(&format!("span tree too small: {spans} spans"));
    }
    let json = document_to_json(doc);
    for key in ["\"spans\"", "\"stages\"", "\"counters\"", "\"state\""] {
        if !json.contains(key) {
            fail(&format!("exported JSON is missing {key}"));
        }
    }
    println!(
        "session record: {spans} spans, {} bytes of JSON",
        json.len()
    );

    // 3. Kernel overhead: instrumented path vs plain path on the quick
    // cohort, byte-identical assignments required.
    let matrix = VsmBuilder::new().normalize(true).build(&log).matrix;
    let live = Arc::new(FlightRecorder::new(4096));
    let observed = RunControl::new()
        .with_session("obs-overhead")
        .with_observer(live.clone());
    let mut base_total = 0.0;
    let mut obs_total = 0.0;
    for k in [8, 16] {
        let kmeans = KMeans::new(k).seed(7).prune(true).threads(1);
        let (base_ms, obs_ms, plain, traced) = paired_best_of(
            REPS,
            || kmeans.fit(&matrix),
            || {
                observed.span(PipelineStage::Optimize, &format!("smoke:k={k}"), || {
                    let (result, stats) = kmeans.fit_with_stats(&matrix);
                    observed.counters(PipelineStage::Optimize, &stats.as_pairs());
                    result
                })
            },
        );
        if plain.assignments != traced.assignments {
            fail(&format!("k = {k}: tracing changed cluster assignments"));
        }
        base_total += base_ms;
        obs_total += obs_ms;
    }
    let overhead = (obs_total - base_total) / base_total;
    println!(
        "tracing overhead: plain {base_total:.1} ms, recorded {obs_total:.1} ms \
         ({:+.2}%)",
        overhead * 100.0
    );
    if overhead > MAX_OVERHEAD {
        fail(&format!(
            "tracing overhead {:.2}% exceeds the {:.0}% budget",
            overhead * 100.0,
            MAX_OVERHEAD * 100.0
        ));
    }

    // 4. End-to-end trace: one remote sampled session over the wire,
    // against a group-committed durable store so fsync rounds land in
    // the span tree. The persisted trace must link the whole request
    // path with valid pre-order parent indexes.
    let mem: Arc<MemStorage> = Arc::new(MemStorage::new());
    let kdb = Kdb::open_with(
        Path::new("obs_trace.journal"),
        StoreOptions::with_storage(mem).durability(DurabilityPolicy::Always),
    )
    .unwrap_or_else(|e| fail(&format!("durable kdb open failed: {e}")));
    let service = Arc::new(AnalysisService::with_kdb(
        ServiceConfig {
            workers: 1,
            sample_rate: 1.0,
            ..ServiceConfig::default()
        },
        kdb,
    ));
    let server = NetServer::start(Arc::clone(&service), NetConfig::default())
        .unwrap_or_else(|e| fail(&format!("net server failed to start: {e}")));
    let mut client = Client::connect(server.local_addr())
        .unwrap_or_else(|e| fail(&format!("client connect failed: {e}")))
        .with_sampling(1.0, DEFAULT_TRACE_SEED);
    let spec = WireJobSpec::quick("trace-gate".to_owned(), CohortSpec::small(907));
    let session = match client.call(Request::Submit(spec)) {
        Ok(Response::Submitted { session }) => session,
        other => fail(&format!("expected Submitted, got {other:?}")),
    };
    match client.wait_terminal(session, Duration::from_secs(120)) {
        Ok((state, reason)) if state == "completed" => drop(reason),
        other => fail(&format!("sampled session not completed: {other:?}")),
    }
    let traces = match client.call(Request::TraceQuery {
        session: Some("trace-gate".to_owned()),
    }) {
        Ok(Response::Traces { traces }) => traces,
        other => fail(&format!("expected Traces, got {other:?}")),
    };
    if traces.len() != 1 {
        fail(&format!(
            "expected 1 persisted trace, found {}",
            traces.len()
        ));
    }
    let spans = traces[0]
        .get("spans")
        .and_then(Value::as_array)
        .unwrap_or_else(|| fail("trace record has no span array"));
    let mut names = Vec::with_capacity(spans.len());
    let mut fsync_rounds = 0usize;
    for (i, span) in spans.iter().enumerate() {
        let span = span
            .as_doc()
            .unwrap_or_else(|| fail("span is not a document"));
        let parent = span
            .get("parent")
            .and_then(Value::as_i64)
            .unwrap_or_else(|| fail("span is missing its parent link"));
        let valid = if i == 0 {
            parent == -1
        } else {
            parent >= 0 && (parent as usize) < i
        };
        if !valid {
            fail(&format!("span {i} has invalid parent {parent}"));
        }
        let name = span
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or_else(|| fail("span is missing its name"));
        if name == "fsync_round" {
            let attrs = span
                .get("attrs")
                .and_then(Value::as_doc)
                .unwrap_or_else(|| fail("fsync-round span has no attrs"));
            if attrs.get("batch").and_then(Value::as_i64).unwrap_or(0) < 1 {
                fail("fsync-round span has batch < 1");
            }
            fsync_rounds += 1;
        }
        names.push(name);
    }
    if !names.contains(&"queue_wait") {
        fail(&format!("trace has no queue-wait span: {names:?}"));
    }
    for stage in PipelineStage::PIPELINE {
        if !names.contains(&stage.name()) {
            fail(&format!(
                "trace missing stage span {}: {names:?}",
                stage.name()
            ));
        }
    }
    if fsync_rounds == 0 {
        fail(&format!("trace captured no fsync round: {names:?}"));
    }
    println!(
        "trace gate: {} spans linked, {fsync_rounds} fsync rounds",
        spans.len()
    );
    server.shutdown();
    drop(client);
    drop(service);

    // 5. Sampling overhead: full service sessions at rate 1 vs rate 0,
    // paired minima, the same 5% budget the kernel path gets.
    let make = |rate: f64| {
        AnalysisService::with_kdb(
            ServiceConfig {
                workers: 1,
                sample_rate: rate,
                ..ServiceConfig::default()
            },
            Kdb::in_memory(),
        )
    };
    let base_service = make(0.0);
    let traced_service = make(1.0);
    // A cohort big enough that the session's analysis work dominates
    // the fixed per-session cost of persisting its trace record —
    // millisecond sessions would measure that constant, not a rate.
    let cohort = CohortSpec {
        patients: 400,
        exam_types: 24,
        records: 6_000,
        seed: 31,
    };
    let run_session = |service: &AnalysisService, name: String| {
        let spec = WireJobSpec::quick(name, cohort).materialize();
        let id = service
            .submit(spec)
            .unwrap_or_else(|e| fail(&format!("overhead-arm submit failed: {e}")));
        match service.wait(id) {
            Ok(SessionState::Completed(_)) => {}
            other => fail(&format!("overhead-arm session not completed: {other:?}")),
        }
    };
    let (mut base_rep, mut traced_rep) = (0u32, 0u32);
    let (base_ms, traced_ms, (), ()) = paired_best_of(
        REPS,
        || {
            base_rep += 1;
            run_session(&base_service, format!("base-{base_rep}"));
        },
        || {
            traced_rep += 1;
            run_session(&traced_service, format!("traced-{traced_rep}"));
        },
    );
    base_service.shutdown();
    traced_service.shutdown();
    let sampling_overhead = (traced_ms - base_ms) / base_ms;
    println!(
        "sampling overhead: rate 0 {base_ms:.1} ms, rate 1 {traced_ms:.1} ms \
         ({:+.2}%)",
        sampling_overhead * 100.0
    );
    if sampling_overhead > MAX_OVERHEAD {
        fail(&format!(
            "sampling overhead {:.2}% exceeds the {:.0}% budget",
            sampling_overhead * 100.0,
            MAX_OVERHEAD * 100.0
        ));
    }

    println!("obs smoke gate passed.");
}
