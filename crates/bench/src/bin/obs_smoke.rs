//! Observability smoke gate for CI.
//!
//! Three checks, any failure exits non-zero:
//!
//! 1. **Determinism** — a quick end-to-end pipeline run with the flight
//!    recorder attached must produce a report identical to an
//!    unobserved run, with zero dropped trace events.
//! 2. **Session record** — the recorder's terminal document validates
//!    against `ada_kdb::schema`, persists into the `sessions`
//!    collection, reads back via `past_sessions`, and exports as JSON.
//! 3. **Overhead** — on the quick K-means cohort, the instrumented
//!    kernel path (`fit_with_stats` + counter emission into a live
//!    recorder, wrapped in a span) must stay within 5% of the plain
//!    `fit` wall time and assign every row byte-identically.
//!
//! Run: `cargo run -p ada-bench --release --bin obs_smoke`

use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

use ada_bench::bench_log;
use ada_core::{AdaHealth, AdaHealthConfig, PipelineStage, RunControl};
use ada_kdb::{schema, Kdb, Value};
use ada_mining::kmeans::KMeans;
use ada_obs::{document_to_json, past_sessions, FlightRecorder};
use ada_vsm::VsmBuilder;

/// Wall-clock repetitions per timed variant; the minimum is compared.
const REPS: usize = 7;

/// Overhead budget for the instrumented kernel path (ISSUE 3 gate).
const MAX_OVERHEAD: f64 = 0.05;

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    exit(1);
}

/// Paired timing: alternates the two variants within every repetition
/// so scheduler and clock drift hit both sides equally, then compares
/// the per-variant minima. Returns `(ms_a, ms_b, value_a, value_b)`.
fn paired_best_of<T>(
    reps: usize,
    mut run_a: impl FnMut() -> T,
    mut run_b: impl FnMut() -> T,
) -> (f64, f64, T, T) {
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    let mut out_a = None;
    let mut out_b = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        out_a = Some(run_a());
        best_a = best_a.min(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        out_b = Some(run_b());
        best_b = best_b.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (
        best_a,
        best_b,
        out_a.expect("at least one rep"),
        out_b.expect("at least one rep"),
    )
}

fn main() {
    let log = bench_log();

    // 1. Observer on vs off: the reports must match field-for-field.
    let config = AdaHealthConfig::quick("obs-smoke");
    let report_off = AdaHealth::with_kdb(config.clone(), Kdb::in_memory())
        .run_controlled(&log, &RunControl::new())
        .unwrap_or_else(|e| fail(&format!("unobserved run failed: {e}")));
    let recorder = Arc::new(FlightRecorder::new(1024));
    let control = RunControl::new().with_observer(recorder.clone());
    let report_on = AdaHealth::with_kdb(config, Kdb::in_memory())
        .run_controlled(&log, &control)
        .unwrap_or_else(|e| fail(&format!("observed run failed: {e}")));
    if report_off != report_on {
        fail("observer-on vs observer-off pipeline reports differ");
    }
    if recorder.dropped() != 0 {
        fail("flight recorder dropped trace events on the smoke cohort");
    }
    println!("determinism: observed and unobserved reports identical");

    // 2. Terminal session record: schema-validated persist + read-back
    // + JSON export. `persist` runs `validate_session_doc` internally;
    // a malformed document fails here.
    let mut db = Kdb::in_memory();
    schema::init_schema(&mut db).unwrap_or_else(|e| fail(&format!("schema init failed: {e}")));
    recorder
        .persist(&mut db, "obs-smoke", "completed", "")
        .unwrap_or_else(|e| fail(&format!("session record rejected by schema: {e}")));
    let past = past_sessions(&db);
    if past.len() != 1 {
        fail(&format!(
            "expected 1 persisted session, found {}",
            past.len()
        ));
    }
    let doc = &past[0].1;
    schema::validate_session_doc(doc)
        .unwrap_or_else(|e| fail(&format!("read-back record invalid: {e}")));
    let spans = doc
        .get("spans")
        .and_then(Value::as_array)
        .map_or(0, |spans| spans.len());
    if spans <= PipelineStage::ALL.len() {
        fail(&format!("span tree too small: {spans} spans"));
    }
    let json = document_to_json(doc);
    for key in ["\"spans\"", "\"stages\"", "\"counters\"", "\"state\""] {
        if !json.contains(key) {
            fail(&format!("exported JSON is missing {key}"));
        }
    }
    println!(
        "session record: {spans} spans, {} bytes of JSON",
        json.len()
    );

    // 3. Kernel overhead: instrumented path vs plain path on the quick
    // cohort, byte-identical assignments required.
    let matrix = VsmBuilder::new().normalize(true).build(&log).matrix;
    let live = Arc::new(FlightRecorder::new(4096));
    let observed = RunControl::new()
        .with_session("obs-overhead")
        .with_observer(live.clone());
    let mut base_total = 0.0;
    let mut obs_total = 0.0;
    for k in [8, 16] {
        let kmeans = KMeans::new(k).seed(7).prune(true).threads(1);
        let (base_ms, obs_ms, plain, traced) = paired_best_of(
            REPS,
            || kmeans.fit(&matrix),
            || {
                observed.span(PipelineStage::Optimize, &format!("smoke:k={k}"), || {
                    let (result, stats) = kmeans.fit_with_stats(&matrix);
                    observed.counters(PipelineStage::Optimize, &stats.as_pairs());
                    result
                })
            },
        );
        if plain.assignments != traced.assignments {
            fail(&format!("k = {k}: tracing changed cluster assignments"));
        }
        base_total += base_ms;
        obs_total += obs_ms;
    }
    let overhead = (obs_total - base_total) / base_total;
    println!(
        "tracing overhead: plain {base_total:.1} ms, recorded {obs_total:.1} ms \
         ({:+.2}%)",
        overhead * 100.0
    );
    if overhead > MAX_OVERHEAD {
        fail(&format!(
            "tracing overhead {:.2}% exceeds the {:.0}% budget",
            overhead * 100.0,
            MAX_OVERHEAD * 100.0
        ));
    }

    println!("obs smoke gate passed.");
}
