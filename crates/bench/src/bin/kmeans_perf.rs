//! K-means kernel performance gate and reproduction artifact.
//!
//! Times the Table I K sweep on the paper-scale cohort (6,380 patients ×
//! 159 exam types) across four Lloyd variants sharing identical initial
//! centroids:
//!
//! * `reference` — the retained seed implementation (straight full-scan
//!   Lloyd, no norm cache, unconditional final re-assign);
//! * `serial_unpruned` — the shared kernel, dot-product distance form
//!   over cached row norms, pruning off;
//! * `serial_pruned` — the kernel with Hamerly bound pruning;
//! * `parallel_pruned` — the kernel with pruning and one worker per
//!   available core.
//!
//! The three kernel variants are checked pairwise **bit-identical**
//! (assignments, centroids, SSE, iterations) before any timing is
//! trusted; a mismatch exits non-zero. The reference variant is *not*
//! compared bitwise: L2-normalized count vectors are riddled with
//! real-arithmetic distance ties (duplicate patient profiles, exact
//! `d² = 2` orthogonal pairs), and the reference's `(x − c)²` form
//! rounds those ties differently from the kernel's dot form, so the
//! two can settle into different local optima of similar quality. The
//! gate only requires the kernel's converged SSE to be within 15% of
//! the reference's (a broken kernel fails by far more).
//!
//! Modes:
//!
//! * full (default): paper-scale sweep, writes `BENCH_kmeans.json`
//!   (override the path with `--out PATH`) including a row-parallel
//!   scaling column — the pruned kernel timed at a fixed 1/2/4/8
//!   worker ladder (plus the core count when distinct), every point
//!   verified bit-identical to the serial run;
//! * `--quick`: reduced cohort and K set for CI — fails (non-zero exit)
//!   on any kernel mismatch or when the pruned kernel regresses to more
//!   than 2× the reference wall time. No JSON is written.
//!
//! Run: `cargo run -p ada-bench --release --bin kmeans_perf [-- --quick]`

use std::fmt::Write as _;
use std::time::Instant;

use ada_bench::{bench_log, paper_log};
use ada_mining::kmeans::{init, lloyd, KMeans, KMeansInit, KMeansResult, KernelStats};
use ada_vsm::{DenseMatrix, VsmBuilder};

/// Wall-clock repetitions per (variant, K); the minimum is reported.
const REPS: usize = 3;

struct KReport {
    k: usize,
    iterations: usize,
    reference_iterations: usize,
    sse: f64,
    reference_ms: f64,
    serial_unpruned_ms: f64,
    serial_pruned_ms: f64,
    parallel_pruned_ms: f64,
    distance_evals_unpruned: u64,
    distance_evals_pruned: u64,
    bound_skips: u64,
    /// Pruned-kernel wall time at each explicit worker count
    /// (`(threads, ms)`), bit-identical to the serial result at every
    /// point. Empty in quick mode.
    row_parallel_scaling: Vec<(usize, f64)>,
}

fn best_of<T>(reps: usize, mut run: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let value = run();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        out = Some(value);
    }
    (best, out.expect("at least one rep"))
}

fn sweep_k(matrix: &DenseMatrix, k: usize, threads: usize, scaling: &[usize]) -> KReport {
    let start = init::initial_centroids(matrix, k, KMeansInit::KMeansPlusPlus, 0);

    let (reference_ms, reference) = best_of(REPS, || {
        lloyd::run_reference(matrix, start.clone(), 100, 1e-6)
    });
    let variant = |prune: bool, threads: usize| -> (f64, (KMeansResult, KernelStats)) {
        let config = KMeans::new(k).prune(prune).threads(threads);
        best_of(REPS, || config.fit_with_stats(matrix))
    };
    let (serial_unpruned_ms, (unpruned, unpruned_stats)) = variant(false, 1);
    let (serial_pruned_ms, (pruned, pruned_stats)) = variant(true, 1);
    let (parallel_pruned_ms, (parallel, _)) = variant(true, threads);

    // Row-parallel scaling column (ROADMAP open item): the pruned
    // kernel at each explicit worker count, every point checked
    // bit-identical against the serial run before its timing counts.
    let row_parallel_scaling: Vec<(usize, f64)> = scaling
        .iter()
        .map(|&t| {
            let (ms, (result, _)) = variant(true, t);
            assert_eq!(pruned, result, "k = {k}: {t} workers changed the result");
            (t, ms)
        })
        .collect();

    // Correctness gates: the kernel variants must be bit-identical.
    assert_eq!(unpruned, pruned, "k = {k}: pruning changed the result");
    assert_eq!(pruned, parallel, "k = {k}: threading changed the result");
    // The seed reference must agree on solution *quality*, not bitwise:
    // tie rounding differs between the distance forms (module docs), so
    // the two trajectories may settle in different local optima. A
    // broken kernel overshoots this sanity band by far more.
    let sse_gap = (reference.sse - pruned.sse).abs() / (1.0 + reference.sse);
    assert!(
        sse_gap < 0.15,
        "k = {k}: reference SSE {} vs kernel SSE {}",
        reference.sse,
        pruned.sse
    );

    KReport {
        k,
        iterations: pruned.iterations,
        reference_iterations: reference.iterations,
        sse: pruned.sse,
        reference_ms,
        serial_unpruned_ms,
        serial_pruned_ms,
        parallel_pruned_ms,
        distance_evals_unpruned: unpruned_stats.distance_evals,
        distance_evals_pruned: pruned_stats.distance_evals,
        bound_skips: pruned_stats.bound_skips,
        row_parallel_scaling,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kmeans.json".to_string());

    let threads_available = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let (log, ks): (_, Vec<usize>) = if quick {
        (bench_log(), vec![8, 16])
    } else {
        (paper_log(), vec![6, 7, 8, 9, 10, 12, 15, 20])
    };
    // Scaling points: a fixed 1/2/4/8 worker ladder (plus the core
    // count when it isn't a ladder point). The kernel is bit-identical
    // at every worker count, so oversubscribed points are still valid
    // measurements — on a small box they show the scheduling overhead
    // honestly instead of collapsing the column to a single entry.
    let scaling_threads: Vec<usize> = if quick {
        Vec::new()
    } else {
        let mut points = vec![1, 2, 4, 8];
        if !points.contains(&threads_available) {
            points.push(threads_available);
            points.sort_unstable();
        }
        points
    };
    let pv = VsmBuilder::new().normalize(true).build(&log);
    let matrix = &pv.matrix;
    println!(
        "kmeans_perf ({} mode): {} x {} matrix, {} core(s), ks {:?}",
        if quick { "quick" } else { "full" },
        matrix.num_rows(),
        matrix.num_cols(),
        threads_available,
        ks
    );
    println!(
        "{:>4} {:>6} {:>11} {:>11} {:>11} {:>11} {:>9} {:>8}",
        "K", "iters", "ref ms", "serial ms", "pruned ms", "par ms", "dist-eval", "skip%"
    );

    let reports: Vec<KReport> = ks
        .iter()
        .map(|&k| sweep_k(matrix, k, 0, &scaling_threads))
        .collect();
    for r in &reports {
        let skip_pct =
            100.0 * r.bound_skips as f64 / (r.bound_skips + r.distance_evals_pruned).max(1) as f64;
        println!(
            "{:>4} {:>6} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>9} {:>8.1}",
            r.k,
            r.iterations,
            r.reference_ms,
            r.serial_unpruned_ms,
            r.serial_pruned_ms,
            r.parallel_pruned_ms,
            r.distance_evals_pruned,
            skip_pct
        );
        if !r.row_parallel_scaling.is_empty() {
            let column: Vec<String> = r
                .row_parallel_scaling
                .iter()
                .map(|(t, ms)| format!("{t}w {ms:.1} ms"))
                .collect();
            println!("     row-parallel scaling: {}", column.join(", "));
        }
    }

    let total = |f: fn(&KReport) -> f64| -> f64 { reports.iter().map(f).sum() };
    let reference_ms = total(|r| r.reference_ms);
    let serial_pruned_ms = total(|r| r.serial_pruned_ms);
    let parallel_pruned_ms = total(|r| r.parallel_pruned_ms);
    let best_ms = serial_pruned_ms.min(parallel_pruned_ms);
    let speedup_serial = reference_ms / serial_pruned_ms;
    let speedup_best = reference_ms / best_ms;
    println!(
        "sweep totals: reference {reference_ms:.0} ms, pruned serial {serial_pruned_ms:.0} ms, \
         pruned parallel {parallel_pruned_ms:.0} ms => {speedup_best:.2}x speedup"
    );

    if quick {
        // CI regression gate: a broken or degenerate kernel shows up as
        // the pruned path losing badly to the seed reference.
        if serial_pruned_ms > 2.0 * reference_ms {
            eprintln!(
                "FAIL: pruned kernel regressed: {serial_pruned_ms:.0} ms vs reference \
                 {reference_ms:.0} ms (> 2x)"
            );
            std::process::exit(1);
        }
        println!("quick gate passed (kernel exact, within 2x of reference).");
        return;
    }

    // Full mode: emit the reproduction artifact.
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"kmeans_perf\",");
    let _ = writeln!(json, "  \"dataset\": \"paper-scale synthetic cohort\",");
    let _ = writeln!(json, "  \"rows\": {},", matrix.num_rows());
    let _ = writeln!(json, "  \"cols\": {},", matrix.num_cols());
    let _ = writeln!(json, "  \"threads_available\": {threads_available},");
    let _ = writeln!(json, "  \"timing_reps\": {REPS},");
    let _ = writeln!(json, "  \"per_k\": [");
    for (i, r) in reports.iter().enumerate() {
        let comma = if i + 1 == reports.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"k\": {}, \"iterations\": {}, \"reference_iterations\": {}, \"sse\": {:.4}, \
             \"reference_ms\": {:.2}, \"serial_unpruned_ms\": {:.2}, \
             \"serial_pruned_ms\": {:.2}, \"parallel_pruned_ms\": {:.2}, \
             \"distance_evals_unpruned\": {}, \"distance_evals_pruned\": {}, \
             \"bound_skips\": {}, \"row_parallel_scaling\": [{}]}}{comma}",
            r.k,
            r.iterations,
            r.reference_iterations,
            r.sse,
            r.reference_ms,
            r.serial_unpruned_ms,
            r.serial_pruned_ms,
            r.parallel_pruned_ms,
            r.distance_evals_unpruned,
            r.distance_evals_pruned,
            r.bound_skips,
            r.row_parallel_scaling
                .iter()
                .map(|(t, ms)| format!("{{\"threads\": {t}, \"ms\": {ms:.2}}}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"total_reference_ms\": {reference_ms:.2},");
    let _ = writeln!(json, "  \"total_serial_pruned_ms\": {serial_pruned_ms:.2},");
    let _ = writeln!(
        json,
        "  \"total_parallel_pruned_ms\": {parallel_pruned_ms:.2},"
    );
    let _ = writeln!(json, "  \"speedup_serial_pruned\": {speedup_serial:.3},");
    let _ = writeln!(json, "  \"speedup_best\": {speedup_best:.3}");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("writing the benchmark artifact");
    println!("wrote {out_path}");
    if speedup_best < 3.0 {
        eprintln!("WARN: speedup {speedup_best:.2}x is below the 3x acceptance target");
    }
}
