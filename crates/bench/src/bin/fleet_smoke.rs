//! Two-node fleet smoke gate for CI (ISSUE 9).
//!
//! Stands up a real primary/standby pair over loopback TCP — each a
//! full [`FleetNode`]: analysis service + wire front-end + replication
//! endpoint — routes a small session fleet through a consistent-hash
//! [`Router`], then kills the primary and fails over. Exits non-zero
//! unless, in order:
//!
//! 1. **Writes route and complete** — every session submitted through
//!    `route_write` reaches `completed` on the primary; the standby
//!    refuses a direct write with the typed degraded response.
//! 2. **Replication is bounded** — the standby acks the primary's full
//!    journal within the deadline, with zero gap/corruption rejects,
//!    and serves the replicated session records to routed reads.
//! 3. **Failover works** — the router promotes the standby when the
//!    primary's health probe fails, the promoted node accepts writes in
//!    place, and post-failover sessions complete on the survivor.
//! 4. **Clean wire** — both nodes drain with zero protocol errors and
//!    the survivor's exposition carries the `ada_repl_*` and
//!    `ada_fleet_*` families.
//!
//! Run: `cargo run -p ada-bench --release --bin fleet_smoke [-- --quick]`

use std::path::Path;
use std::process::exit;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ada_fleet::{FleetNode, Role, Router};
use ada_kdb::{MemStorage, SharedKdb, StoreOptions, Value};
use ada_net::proto::{CohortSpec, Request, Response, WireJobSpec};
use ada_net::{Client, NetConfig};
use ada_obs::FleetMetrics;
use ada_service::ServiceConfig;

/// End-to-end budget per wait; a hang is a failure, not patience.
const DEADLINE: Duration = Duration::from_secs(180);

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    exit(1);
}

fn mem_kdb(name: &str) -> SharedKdb {
    SharedKdb::open_with(
        Path::new(name),
        StoreOptions::with_storage(Arc::new(MemStorage::new())),
    )
    .unwrap_or_else(|e| fail(&format!("in-memory store open failed: {e}")))
}

fn spec(name: &str, i: usize) -> WireJobSpec {
    WireJobSpec::quick(format!("{name}-{i}"), CohortSpec::small(7_000 + i as u64))
}

/// Polls `cond` every 10ms until `deadline_secs` elapses.
fn wait_for(what: &str, deadline_secs: u64, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(deadline_secs);
    while !cond() {
        if Instant::now() >= deadline {
            fail(&format!("timed out waiting for {what}"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (before, after) = if quick { (3, 1) } else { (8, 2) };
    let started = Instant::now();

    let service_cfg = ServiceConfig {
        workers: if quick { 1 } else { 2 },
        queue_capacity: before + after + 2,
        ..ServiceConfig::default()
    };
    let primary = FleetNode::start_primary(
        "alpha",
        service_cfg.clone(),
        mem_kdb("alpha.journal"),
        NetConfig::default(),
    )
    .unwrap_or_else(|e| fail(&format!("primary failed to start: {e}")));
    let repl_addr = primary
        .repl_addr()
        .unwrap_or_else(|| fail("primary has no replication endpoint"));
    let mut standby = FleetNode::start_follower(
        "beta",
        service_cfg,
        mem_kdb("beta.journal"),
        NetConfig::default(),
        repl_addr,
    )
    .unwrap_or_else(|e| fail(&format!("standby failed to start: {e}")));
    let router = Router::new(
        vec![
            ("alpha".into(), Role::Primary),
            ("beta".into(), Role::Follower),
        ],
        Arc::new(FleetMetrics::new()),
    );
    let (alpha_addr, beta_addr) = (primary.client_addr(), standby.client_addr());
    let addr_of = move |name: &str| {
        if name == "alpha" {
            alpha_addr
        } else {
            beta_addr
        }
    };
    println!(
        "fleet smoke: alpha on {} shipping to beta on {} (quick = {quick})",
        primary.client_addr(),
        standby.client_addr()
    );

    // A direct write to the standby is refused with the typed degraded
    // response — never silently accepted, never a protocol error.
    let mut probe = Client::connect(standby.client_addr())
        .unwrap_or_else(|e| fail(&format!("standby probe failed to connect: {e}")));
    match probe.call(Request::Submit(spec("misrouted", 0))) {
        Ok(Response::Degraded { .. }) => {}
        other => fail(&format!("standby accepted a write: {other:?}")),
    }

    // The fleet: every write routed through the router, one connection
    // per session, all submitted before any wait.
    let mut sessions = Vec::new();
    for i in 0..before {
        let member = router
            .route_write()
            .unwrap_or_else(|| fail("router refused a write with a healthy primary"));
        if member != "alpha" {
            fail(&format!("write routed to {member}, expected the primary"));
        }
        let mut client = Client::connect(addr_of(&member))
            .unwrap_or_else(|e| fail(&format!("client {i} failed to connect: {e}")));
        match client.call(Request::Submit(spec("fleet-smoke", i))) {
            Ok(Response::Submitted { session }) => sessions.push((session, client)),
            other => fail(&format!("submit {i}: expected Submitted, got {other:?}")),
        }
    }
    for (session, client) in &mut sessions {
        match client.wait_terminal(*session, DEADLINE) {
            Ok((state, _)) if state == "completed" => {}
            Ok((state, reason)) => fail(&format!("session {session} ended {state}: {reason}")),
            Err(e) => fail(&format!("session {session} never resolved: {e}")),
        }
    }
    drop(sessions);

    // Bounded replication lag: the standby acks the primary's full
    // journal (session records included) within the deadline, cleanly.
    primary
        .service()
        .kdb()
        .sync()
        .unwrap_or_else(|e| fail(&format!("primary fsync failed: {e}")));
    let want = primary.service().kdb().journal_acked_ops();
    wait_for("standby to ack the primary's journal", 60, || {
        standby.acked_ops() >= want
    });
    if let Some(halt) = standby.repl_halted() {
        fail(&format!("replication halted: {halt}"));
    }
    let repl = standby.repl_metrics().snapshot();
    if repl.rejects_gap != 0 || repl.rejects_corrupt != 0 {
        fail(&format!(
            "clean loopback link counted {} gap / {} corrupt rejects",
            repl.rejects_gap, repl.rejects_corrupt
        ));
    }
    if repl.frames_applied < want {
        fail(&format!(
            "standby applied {} of {want} shipped ops",
            repl.frames_applied
        ));
    }
    println!(
        "replication: {want} ops acked by the standby, {} frames applied, 0 rejects",
        repl.frames_applied
    );

    // Routed reads: whichever member the ring picks serves the
    // replicated session records.
    for i in 0..before {
        let member = router
            .route_read(&format!("fleet-smoke-{i}"))
            .unwrap_or_else(|| fail("router refused a read with healthy members"));
        let mut client = Client::connect(addr_of(&member))
            .unwrap_or_else(|e| fail(&format!("read client failed to connect: {e}")));
        match client.call(Request::PastSessions) {
            Ok(Response::PastSessions { sessions }) => {
                if sessions.len() != before {
                    fail(&format!(
                        "{member} serves {} session records, expected {before}",
                        sessions.len()
                    ));
                }
            }
            other => fail(&format!(
                "expected PastSessions from {member}, got {other:?}"
            )),
        }
    }
    // Busy feedback: a deferred member is skipped for placements.
    let beta_session = (0..256)
        .map(|i| format!("s{i}"))
        .find(|s| router.route_read(s).as_deref() == Some("beta"))
        .unwrap_or_else(|| fail("ring never places a read on the standby"));
    router.note_busy("beta", Duration::from_secs(30));
    if router.route_read(&beta_session).as_deref() != Some("alpha") {
        fail("busy standby was not skipped for reads");
    }
    println!("routing: reads served by both members, busy deferral reroutes");

    // Health checks pass on both members over the real wire.
    for name in ["alpha", "beta"] {
        let mut client = Client::connect(addr_of(name))
            .unwrap_or_else(|e| fail(&format!("health client failed to connect: {e}")));
        match client.call(Request::Health) {
            Ok(Response::Health { doc }) => {
                if doc.get("status").and_then(Value::as_str).is_none() {
                    fail(&format!("{name} health document missing status"));
                }
                if router.report_health(name, true).is_some() {
                    fail("a passing probe must never promote");
                }
            }
            other => fail(&format!("expected Health from {name}, got {other:?}")),
        }
    }

    // Failover: the primary dies; the failed probe promotes the
    // standby, which turns writable in place.
    let net = primary.shutdown();
    if net.protocol_errors != 0 {
        fail(&format!(
            "{} protocol errors on the primary's wire",
            net.protocol_errors
        ));
    }
    match router.report_health("alpha", false) {
        Some(successor) if successor == "beta" => {}
        other => fail(&format!("expected beta promoted, got {other:?}")),
    }
    let promoted_at = standby.acked_ops();
    if !standby
        .promote()
        .unwrap_or_else(|e| fail(&format!("promotion failed: {e}")))
    {
        fail("standby claims it was already primary");
    }
    if router.route_write().as_deref() != Some("beta") {
        fail("router still routes writes to the dead primary");
    }
    println!("failover: alpha down, beta promoted at {promoted_at} acked ops");

    // Round two runs on the survivor.
    for j in 0..after {
        let member = router
            .route_write()
            .unwrap_or_else(|| fail("router refused a post-failover write"));
        let mut client = Client::connect(addr_of(&member))
            .unwrap_or_else(|e| fail(&format!("post-failover client failed to connect: {e}")));
        let session = match client.call(Request::Submit(spec("after-failover", j))) {
            Ok(Response::Submitted { session }) => session,
            other => fail(&format!(
                "post-failover submit {j}: expected Submitted, got {other:?}"
            )),
        };
        match client.wait_terminal(session, DEADLINE) {
            Ok((state, _)) if state == "completed" => {}
            Ok((state, reason)) => fail(&format!("post-failover session ended {state}: {reason}")),
            Err(e) => fail(&format!("post-failover session never resolved: {e}")),
        }
    }
    let mut survivor = Client::connect(standby.client_addr())
        .unwrap_or_else(|e| fail(&format!("survivor client failed to connect: {e}")));
    match survivor.call(Request::PastSessions) {
        Ok(Response::PastSessions { sessions }) => {
            if sessions.len() != before + after {
                fail(&format!(
                    "survivor serves {} session records, expected {}",
                    sessions.len(),
                    before + after
                ));
            }
        }
        other => fail(&format!("expected PastSessions, got {other:?}")),
    }
    drop(survivor);
    drop(probe);

    // The survivor's exposition carries the replication + fleet
    // families; the router's counters reflect what actually happened.
    let exposition = standby.exposition();
    for series in [
        "# TYPE ada_repl_frames_applied_total counter",
        "# TYPE ada_fleet_promotions_total counter",
    ] {
        if !exposition.contains(series) {
            fail(&format!("survivor exposition missing {series}"));
        }
    }
    let fleet = router.metrics().snapshot();
    if fleet.members != 2 || fleet.promotions != 1 || fleet.busy_deferrals != 1 {
        fail(&format!(
            "router counters off: {} members, {} promotions, {} deferrals",
            fleet.members, fleet.promotions, fleet.busy_deferrals
        ));
    }
    if fleet.health_failures != 1 {
        fail(&format!(
            "expected exactly one health failure, counted {}",
            fleet.health_failures
        ));
    }

    let net = standby.shutdown();
    if net.protocol_errors != 0 {
        fail(&format!(
            "{} protocol errors on the survivor's wire",
            net.protocol_errors
        ));
    }
    if net.in_flight != 0 {
        fail(&format!(
            "{} connections still in flight after drain",
            net.in_flight
        ));
    }
    println!(
        "fleet smoke gate passed: {} sessions across the failover in {:.1}s.",
        before + after,
        started.elapsed().as_secs_f64()
    );
}
