//! Cluster kill/partition torture gate for journal replication (ISSUE 9).
//!
//! Replays a seeded patient workload on a primary [`SharedKdb`] whose
//! journal tap feeds a [`ReplSource`], then attacks the shipped message
//! stream against a transport-free [`ReplicaEngine`] — the same apply
//! path the TCP endpoints drive — checking the **acked-prefix
//! invariant** after every attack: *a promoted follower's state
//! fingerprint equals the fingerprint of exactly the first `applied`
//! ops of the primary's journal, and corrupted or gapped streams are
//! always classified and never applied*.
//!
//! 1. **Kills** — the link dies after any message (and, separately,
//!    mid-frame at seeded byte cuts, and mid-group-commit: the primary
//!    runs `Batch` durability so frames ship before their `Durable`
//!    watermark). The orphaned follower is promoted on the spot and
//!    must be exactly its applied prefix.
//! 2. **Partitions** — the link dies, then heals with a re-bootstrap
//!    snapshot plus a full overlap replay of every already-shipped
//!    frame: the follower converges to the primary's fingerprint and a
//!    byte-identical journal, duplicates verified-then-skipped, never
//!    double-applied.
//! 3. **Drops** — a frame vanishes in flight: a sticky, classified
//!    `Gap` with the exact sequence numbers, counted once, recoverable
//!    only by re-bootstrap.
//! 4. **Bit flips** — single-bit corruption anywhere in a shipped
//!    frame either faults the stream (gap or corruption) or stalls it;
//!    the flipped op itself never applies.
//! 5. **Reorders** — adjacent frames swapped in flight read as a gap
//!    at the swap point.
//! 6. **Compactions** — the primary compacts mid-replication
//!    (collapsing history and restarting the frame sequence space),
//!    then keeps writing. A follower attached at any earlier point —
//!    including mid-frame — converges through the `Reset` →
//!    authoritative-snapshot path: its applied watermark legitimately
//!    regresses to the compacted count, then the post-compaction
//!    frames extend it to a byte-identical journal.
//!
//! Any failure prints the seed and attack coordinates, so
//! `fleet_torture --seed N` replays it exactly.
//!
//! Run: `cargo run -p ada-bench --release --bin fleet_torture [-- --quick]`

use std::collections::HashMap;
use std::path::Path;
use std::process::exit;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ada_fleet::{ReplError, ReplMsg, ReplSource, ReplicaEngine, StreamFault};
use ada_kdb::journal::{replay_bytes, DurabilityPolicy, JournalTap, Op, RecoveryMode};
use ada_kdb::{Document, MemStorage, SharedKdb, StoreOptions};
use ada_obs::ReplMetrics;

const DEFAULT_SEED: u64 = 0xF1EE7;

fn fail(seed: u64, msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    eprintln!("replay with: cargo run -p ada-bench --release --bin fleet_torture -- --seed {seed}");
    exit(1);
}

/// SplitMix64 — the only randomness in the harness, fully seed-driven.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn mem_kdb(name: &str, durability: DurabilityPolicy) -> SharedKdb {
    SharedKdb::open_with(
        Path::new(name),
        StoreOptions::with_storage(Arc::new(MemStorage::new())).durability(durability),
    )
    .unwrap_or_else(|e| {
        eprintln!("FAIL: in-memory store open failed: {e}");
        exit(1)
    })
}

/// A synthetic patient record shaped like the paper's cohort rows.
fn patient_doc(rng: &mut Rng, i: usize) -> Document {
    Document::new()
        .with("patient", i as i64)
        .with("age", (18 + rng.below(80)) as i64)
        .with("gender", if rng.below(2) == 0 { "F" } else { "M" })
        .with("diagnosis", format!("D{:03}", rng.below(140)))
        .with("cost", (rng.below(500_000) as f64) / 100.0)
}

/// Runs the seeded workload against the primary: patient inserts
/// interleaved with updates, deletes, and knowledge writes.
fn run_workload(seed: u64, patients: usize, db: &SharedKdb) {
    let mut rng = Rng(seed);
    let step = |r: Result<(), ada_kdb::KdbError>| {
        r.unwrap_or_else(|e| fail(seed, &format!("primary workload step failed: {e}")))
    };
    step(db.create_collection("patients"));
    step(db.create_index("patients", "diagnosis"));
    step(db.create_collection("knowledge"));
    let mut live: Vec<u64> = Vec::new();
    for i in 0..patients {
        let id = db
            .insert("patients", patient_doc(&mut rng, i))
            .unwrap_or_else(|e| fail(seed, &format!("primary insert failed: {e}")));
        live.push(id);
        match rng.below(10) {
            0..=1 => {
                let id = live[rng.below(live.len() as u64) as usize];
                step(db.update(
                    "patients",
                    id,
                    patient_doc(&mut rng, i).with("revised", true),
                ));
            }
            2 if live.len() > 1 => {
                let id = live.swap_remove(rng.below(live.len() as u64) as usize);
                step(db.delete("patients", id));
            }
            3 => {
                let doc = Document::new()
                    .with("kind", "cluster")
                    .with("score", (rng.below(1000) as f64) / 1000.0);
                step(db.insert("knowledge", doc).map(|_| ()));
            }
            _ => {}
        }
    }
}

/// Memoized fingerprint of the state after the first `k` golden ops,
/// computed through the replica's own apply machinery.
fn prefix_fp(ops: &[Op], k: usize, memo: &mut HashMap<usize, u64>, seed: u64) -> u64 {
    if let Some(&fp) = memo.get(&k) {
        return fp;
    }
    let db = mem_kdb("prefix", DurabilityPolicy::default());
    for op in &ops[..k] {
        db.apply_replicated(op)
            .unwrap_or_else(|e| fail(seed, &format!("golden prefix op failed to apply: {e}")));
    }
    let fp = db.read().fingerprint();
    memo.insert(k, fp);
    fp
}

fn fresh_engine(metrics: &Arc<ReplMetrics>) -> ReplicaEngine {
    ReplicaEngine::new(
        mem_kdb("replica", DurabilityPolicy::default()),
        Arc::clone(metrics),
    )
}

/// Feeds `msgs[..upto]` whole, then (for a mid-frame kill) the first
/// `cut` bytes of frame message `upto`.
fn feed_prefix(seed: u64, engine: &mut ReplicaEngine, msgs: &[ReplMsg], upto: usize, cut: usize) {
    for msg in &msgs[..upto] {
        engine
            .consume(msg)
            .unwrap_or_else(|e| fail(seed, &format!("clean prefix must consume: {e}")));
    }
    if cut > 0 {
        let ReplMsg::Frame { bytes } = &msgs[upto] else {
            fail(seed, "internal: mid-frame cut aimed at a non-frame message")
        };
        engine
            .feed(&bytes[..cut])
            .unwrap_or_else(|e| fail(seed, &format!("torn frame prefix must buffer: {e}")));
    }
}

/// Kill attack: the link dies after `upto` messages (plus an optional
/// mid-frame cut). Promote the orphan and check the acked prefix.
#[allow(clippy::too_many_arguments)]
fn check_kill(
    seed: u64,
    msgs: &[ReplMsg],
    frames_before: &[usize],
    ops: &[Op],
    memo: &mut HashMap<usize, u64>,
    upto: usize,
    cut: usize,
) {
    let coord = if cut > 0 {
        format!("kill after {upto} messages + {cut} bytes mid-frame")
    } else {
        format!("kill after {upto} messages")
    };
    let metrics = Arc::new(ReplMetrics::new());
    let mut engine = fresh_engine(&metrics);
    feed_prefix(seed, &mut engine, msgs, upto, cut);
    let expect = frames_before[upto] as u64;
    if engine.source_durable() > expect {
        fail(
            seed,
            &format!(
                "{coord}: primary advertised {} durable ops but only shipped {expect}",
                engine.source_durable()
            ),
        );
    }
    // Promotion: fsync what applied, then the store turns writable.
    engine
        .sync()
        .unwrap_or_else(|e| fail(seed, &format!("{coord}: promotion fsync failed: {e}")));
    if engine.applied_ops() != expect {
        fail(
            seed,
            &format!(
                "{coord}: {} ops applied, expected the {expect}-op shipped prefix",
                engine.applied_ops()
            ),
        );
    }
    if engine.acked_ops() != expect {
        fail(
            seed,
            &format!(
                "{coord}: acked {} of {expect} applied ops",
                engine.acked_ops()
            ),
        );
    }
    if engine.fingerprint() != prefix_fp(ops, expect as usize, memo, seed) {
        fail(
            seed,
            &format!("{coord}: promoted state is not the {expect}-op acked prefix"),
        );
    }
    // And the survivor accepts writes (once the schema op landed).
    if expect >= 1 {
        engine
            .kdb()
            .insert("patients", Document::new().with("patient", -1i64))
            .unwrap_or_else(|e| {
                fail(
                    seed,
                    &format!("{coord}: promoted store refused a write: {e}"),
                )
            });
    }
}

/// Partition-and-heal attack: the link dies after `upto` messages (plus
/// an optional mid-frame cut), then heals with a re-bootstrap snapshot
/// and a full overlap replay of every shipped message.
#[allow(clippy::too_many_arguments)]
fn check_heal(
    seed: u64,
    msgs: &[ReplMsg],
    image: &[u8],
    golden_fp: u64,
    total: usize,
    upto: usize,
    cut: usize,
) {
    let coord = format!("heal after {upto} messages (cut {cut})");
    let metrics = Arc::new(ReplMetrics::new());
    let mut engine = fresh_engine(&metrics);
    feed_prefix(seed, &mut engine, msgs, upto, cut);
    engine
        .consume(&ReplMsg::Snapshot {
            epoch: 1,
            image: image.to_vec(),
        })
        .unwrap_or_else(|e| fail(seed, &format!("{coord}: re-bootstrap rejected: {e}")));
    engine
        .consume(&ReplMsg::Durable { seq: total as u64 })
        .unwrap_or_else(|e| fail(seed, &format!("{coord}: durable watermark rejected: {e}")));
    // The tap overlaps the snapshot: every already-covered frame must
    // come back as a verified duplicate, skipped, never double-applied.
    for msg in msgs {
        engine
            .consume(msg)
            .unwrap_or_else(|e| fail(seed, &format!("{coord}: overlap replay faulted: {e}")));
    }
    engine
        .sync()
        .unwrap_or_else(|e| fail(seed, &format!("{coord}: follower fsync failed: {e}")));
    if engine.applied_ops() != total as u64 {
        fail(
            seed,
            &format!(
                "{coord}: {} ops applied after heal, expected {total} (duplicates must skip)",
                engine.applied_ops()
            ),
        );
    }
    if engine.fingerprint() != golden_fp {
        fail(
            seed,
            &format!("{coord}: healed follower diverged from the primary"),
        );
    }
    let replica_image = engine
        .kdb()
        .journal_image()
        .unwrap_or_else(|e| fail(seed, &format!("{coord}: replica journal unreadable: {e}")));
    if replica_image != image {
        fail(
            seed,
            &format!("{coord}: healed journal is not byte-identical to the primary's"),
        );
    }
    if engine.acked_ops() != total as u64 {
        fail(
            seed,
            &format!(
                "{coord}: healed follower acked {} of {total}",
                engine.acked_ops()
            ),
        );
    }
    let snap = metrics.snapshot();
    if snap.rejects_gap != 0 || snap.rejects_corrupt != 0 {
        fail(seed, &format!("{coord}: clean heal counted stream rejects"));
    }
}

/// Feeds every message, skipping index `skip` and flipping one bit of
/// frame message `flip` (when given). Returns the first stream fault.
fn feed_attacked(
    seed: u64,
    engine: &mut ReplicaEngine,
    msgs: &[ReplMsg],
    skip: Option<usize>,
    flip: Option<(usize, usize, u8)>,
    swap: Option<(usize, usize)>,
) -> Option<StreamFault> {
    for (i, msg) in msgs.iter().enumerate() {
        if skip == Some(i) {
            continue;
        }
        let patched;
        let msg = match (flip, swap) {
            (Some((f, byte, bit)), _) if f == i => {
                let ReplMsg::Frame { bytes } = msg else {
                    fail(seed, "internal: bit flip aimed at a non-frame message")
                };
                let mut bad = bytes.clone();
                let target = byte % bad.len();
                bad[target] ^= 1 << bit;
                patched = ReplMsg::Frame { bytes: bad };
                &patched
            }
            (_, Some((a, b))) if i == a => &msgs[b],
            (_, Some((a, b))) if i == b => &msgs[a],
            _ => msg,
        };
        match engine.consume(msg) {
            Ok(_) => {}
            Err(ReplError::Stream(fault)) => return Some(fault),
            Err(e) => fail(
                seed,
                &format!("attacked stream surfaced a non-stream error: {e}"),
            ),
        }
    }
    None
}

/// Drop attack: frame message `drop_i` vanishes. Everything before it
/// applies; the gap is classified with exact coordinates, sticky, and
/// counted once; a re-bootstrap snapshot recovers.
#[allow(clippy::too_many_arguments)]
fn check_drop(
    seed: u64,
    msgs: &[ReplMsg],
    frames_before: &[usize],
    ops: &[Op],
    memo: &mut HashMap<usize, u64>,
    image: &[u8],
    golden_fp: u64,
    drop_i: usize,
) {
    let seq = frames_before[drop_i] as u64;
    let coord = format!("drop of frame {seq} (message {drop_i})");
    let metrics = Arc::new(ReplMetrics::new());
    let mut engine = fresh_engine(&metrics);
    match feed_attacked(seed, &mut engine, msgs, Some(drop_i), None, None) {
        Some(StreamFault::Gap {
            stored, expected, ..
        }) if stored == seq + 1 && expected == seq => {}
        other => fail(
            seed,
            &format!(
                "{coord}: expected Gap {{ stored {}, expected {seq} }}, got {other:?}",
                seq + 1
            ),
        ),
    }
    if engine.applied_ops() != seq {
        fail(
            seed,
            &format!("{coord}: {} ops applied past the gap", engine.applied_ops()),
        );
    }
    if engine.fingerprint() != prefix_fp(ops, seq as usize, memo, seed) {
        fail(
            seed,
            &format!("{coord}: gapped follower is not the {seq}-op prefix"),
        );
    }
    // Sticky: even the dropped frame itself cannot unfault the stream,
    // and the reject is counted exactly once.
    match engine.consume(&msgs[drop_i]) {
        Err(ReplError::Stream(StreamFault::Gap { .. })) => {}
        other => fail(seed, &format!("{coord}: gap was not sticky, got {other:?}")),
    }
    let snap = metrics.snapshot();
    if snap.rejects_gap != 1 || snap.rejects_corrupt != 0 {
        fail(
            seed,
            &format!(
                "{coord}: counted {} gap / {} corrupt rejects, expected exactly one gap",
                snap.rejects_gap, snap.rejects_corrupt
            ),
        );
    }
    // The only way forward is a re-bootstrap — and it converges.
    engine
        .consume(&ReplMsg::Snapshot {
            epoch: 1,
            image: image.to_vec(),
        })
        .unwrap_or_else(|e| fail(seed, &format!("{coord}: recovery bootstrap rejected: {e}")));
    if engine.fingerprint() != golden_fp {
        fail(seed, &format!("{coord}: recovery bootstrap diverged"));
    }
}

/// Bit-flip attack: one bit of frame message `flip_i` flips in flight.
/// The stream faults or stalls; the flipped op never applies.
fn check_flip(
    seed: u64,
    msgs: &[ReplMsg],
    frames_before: &[usize],
    ops: &[Op],
    memo: &mut HashMap<usize, u64>,
    flip: (usize, usize, u8),
) {
    let (flip_i, byte, bit) = flip;
    let seq = frames_before[flip_i] as u64;
    let coord = format!("bit flip in frame {seq}, byte {byte} bit {bit}");
    let metrics = Arc::new(ReplMetrics::new());
    let mut engine = fresh_engine(&metrics);
    let fault = feed_attacked(seed, &mut engine, msgs, None, Some(flip), None);
    // Almost every flip faults or stalls the stream at the attacked
    // frame. The one neutral position is a CRC hex letter's case bit
    // (the checksum text parses case-insensitively), where the
    // *identical* op decodes and the stream continues to the end. In
    // every case the replica holds an exact clean prefix — a wrong op
    // never applies.
    let applied = engine.applied_ops();
    if applied != seq && !(applied == ops.len() as u64 && fault.is_none()) {
        fail(
            seed,
            &format!(
                "{coord}: {applied} ops applied, expected the {seq}-op prefix ({})",
                fault.map_or("stalled".into(), |f| f.to_string()),
            ),
        );
    }
    if engine.fingerprint() != prefix_fp(ops, applied as usize, memo, seed) {
        fail(
            seed,
            &format!("{coord}: flipped stream corrupted the replica state"),
        );
    }
    let snap = metrics.snapshot();
    if fault.is_some() && snap.rejects_gap + snap.rejects_corrupt != 1 {
        fail(
            seed,
            &format!(
                "{coord}: fault counted {} gap + {} corrupt rejects, expected one",
                snap.rejects_gap, snap.rejects_corrupt
            ),
        );
    }
}

/// Reorder attack: adjacent frame messages swap in flight — a gap at
/// the swap point, nothing out of order ever applies.
fn check_reorder(
    seed: u64,
    msgs: &[ReplMsg],
    frames_before: &[usize],
    ops: &[Op],
    memo: &mut HashMap<usize, u64>,
    pair: (usize, usize),
) {
    let seq = frames_before[pair.0] as u64;
    let coord = format!("reorder of frames {seq} and {}", seq + 1);
    let metrics = Arc::new(ReplMetrics::new());
    let mut engine = fresh_engine(&metrics);
    match feed_attacked(seed, &mut engine, msgs, None, None, Some(pair)) {
        Some(StreamFault::Gap {
            stored, expected, ..
        }) if stored == seq + 1 && expected == seq => {}
        other => fail(
            seed,
            &format!("{coord}: expected a gap at the swap, got {other:?}"),
        ),
    }
    if engine.applied_ops() != seq {
        fail(
            seed,
            &format!(
                "{coord}: {} ops applied past the swap",
                engine.applied_ops()
            ),
        );
    }
    if engine.fingerprint() != prefix_fp(ops, seq as usize, memo, seed) {
        fail(
            seed,
            &format!("{coord}: reordered stream corrupted the replica state"),
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map_or(DEFAULT_SEED, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("bad --seed {s}");
                exit(2)
            })
        });
    // Paper scale (6,380 patients) by default; a small stream in quick
    // mode so every message boundary and frame byte is attackable in CI.
    let patients = if quick { 24 } else { 6_380 };
    let t0 = Instant::now();

    // The primary runs group commit (`Batch`) so frames ship before
    // their covering `Durable` watermark — kills between the two are
    // exactly the mid-group-commit crashes the gate is for.
    let primary = mem_kdb(
        "primary",
        DurabilityPolicy::Batch {
            max_ops: 8,
            max_delay: Duration::from_secs(3_600),
        },
    );
    let source = ReplSource::new(Arc::new(ReplMetrics::new()));
    primary.set_journal_tap(Some(Arc::clone(&source) as Arc<dyn JournalTap>));
    run_workload(seed, patients, &primary);
    primary
        .sync()
        .unwrap_or_else(|e| fail(seed, &format!("primary fsync failed: {e}")));
    let msgs = source.drain();
    let image = primary
        .journal_image()
        .unwrap_or_else(|e| fail(seed, &format!("primary journal unreadable: {e}")));
    let golden_fp = primary.read().fingerprint();
    let replay = replay_bytes(&image, RecoveryMode::Strict)
        .unwrap_or_else(|e| fail(seed, &format!("golden journal does not replay: {e}")));
    if replay.truncated {
        fail(seed, "golden journal has a torn tail");
    }
    let ops = replay.ops;
    let total = ops.len();

    // `frames_before[k]` = frames among the first `k` messages = the
    // sequence number the `k`th message's frame would carry.
    let mut frames_before = vec![0usize];
    let mut frame_idxs = Vec::new();
    for (i, msg) in msgs.iter().enumerate() {
        if matches!(msg, ReplMsg::Frame { .. }) {
            frame_idxs.push(i);
        }
        frames_before.push(frames_before[i] + usize::from(matches!(msg, ReplMsg::Frame { .. })));
    }
    if *frames_before.last().unwrap() != total {
        fail(
            seed,
            &format!(
                "tap shipped {} frames but the journal replays {total} ops",
                frames_before.last().unwrap()
            ),
        );
    }
    let durables = msgs.len() - total;
    println!(
        "golden run: seed {seed}, {patients} patients, {total} ops shipped as {} messages \
         ({durables} group-commit watermarks), journal {} bytes",
        msgs.len(),
        image.len()
    );
    let mut memo: HashMap<usize, u64> = HashMap::new();

    // Phase 0: a clean, unkilled link converges byte-identically.
    check_heal(seed, &msgs, &image, golden_fp, total, msgs.len(), 0);
    {
        let metrics = Arc::new(ReplMetrics::new());
        let mut engine = fresh_engine(&metrics);
        feed_prefix(seed, &mut engine, &msgs, msgs.len(), 0);
        engine
            .sync()
            .unwrap_or_else(|e| fail(seed, &format!("clean follower fsync failed: {e}")));
        if engine.applied_ops() != total as u64 || engine.fingerprint() != golden_fp {
            fail(seed, "clean frame stream did not converge");
        }
        let replica_image = engine
            .kdb()
            .journal_image()
            .unwrap_or_else(|e| fail(seed, &format!("clean replica journal unreadable: {e}")));
        if replica_image != image {
            fail(seed, "clean replicated journal is not byte-identical");
        }
    }
    println!("clean link: frame stream and snapshot+overlap both byte-identical");

    // Phase 1: kills at message boundaries and mid-frame.
    let mut rng = Rng(seed ^ 0x0411);
    let kills: Vec<(usize, usize)> = if quick {
        let mut kills: Vec<(usize, usize)> = (0..=msgs.len()).map(|k| (k, 0)).collect();
        for &f in &frame_idxs {
            let ReplMsg::Frame { bytes } = &msgs[f] else {
                unreachable!()
            };
            kills.extend((1..bytes.len()).map(|c| (f, c)));
        }
        kills
    } else {
        let stride = (msgs.len() / 160).max(1);
        let mut kills: Vec<(usize, usize)> =
            (0..=msgs.len()).step_by(stride).map(|k| (k, 0)).collect();
        kills.push((msgs.len(), 0));
        for _ in 0..120 {
            let f = frame_idxs[rng.below(frame_idxs.len() as u64) as usize];
            let ReplMsg::Frame { bytes } = &msgs[f] else {
                unreachable!()
            };
            kills.push((f, 1 + rng.below(bytes.len() as u64 - 1) as usize));
        }
        kills
    };
    for &(upto, cut) in &kills {
        check_kill(seed, &msgs, &frames_before, &ops, &mut memo, upto, cut);
    }
    println!(
        "kills: {} points (message boundaries + mid-frame cuts), every promoted \
         follower an exact acked prefix",
        kills.len()
    );

    // Phase 2: partitions that heal by re-bootstrap + overlap replay.
    let heals: Vec<(usize, usize)> = if quick {
        (0..=msgs.len()).map(|k| (k, 0)).collect()
    } else {
        (0..48)
            .map(|_| {
                let f = frame_idxs[rng.below(frame_idxs.len() as u64) as usize];
                let ReplMsg::Frame { bytes } = &msgs[f] else {
                    unreachable!()
                };
                match rng.below(2) {
                    0 => (rng.below(msgs.len() as u64 + 1) as usize, 0),
                    _ => (f, 1 + rng.below(bytes.len() as u64 - 1) as usize),
                }
            })
            .collect()
    };
    for &(upto, cut) in &heals {
        check_heal(seed, &msgs, &image, golden_fp, total, upto, cut);
    }
    println!(
        "partitions: {} heal points, all byte-identical after re-bootstrap, \
         overlap frames skipped as verified duplicates",
        heals.len()
    );

    // Phase 3: dropped frames (every frame but the last — dropping the
    // last is a kill, undetectable until more traffic arrives).
    let drops: Vec<usize> = if quick {
        frame_idxs[..frame_idxs.len() - 1].to_vec()
    } else {
        (0..120)
            .map(|_| frame_idxs[rng.below(frame_idxs.len() as u64 - 1) as usize])
            .collect()
    };
    for &drop_i in &drops {
        check_drop(
            seed,
            &msgs,
            &frames_before,
            &ops,
            &mut memo,
            &image,
            golden_fp,
            drop_i,
        );
    }
    println!(
        "drops: {} frames dropped, all classified as exact sticky gaps, all recovered by re-bootstrap",
        drops.len()
    );

    // Phase 4: single-bit flips across shipped frame bytes.
    let flips: Vec<(usize, usize, u8)> = if quick {
        frame_idxs
            .iter()
            .flat_map(|&f| {
                let ReplMsg::Frame { bytes } = &msgs[f] else {
                    unreachable!()
                };
                (0..bytes.len()).map(move |b| (f, b, 0))
            })
            .map(|(f, b, _)| {
                (
                    f,
                    b,
                    (Rng(seed ^ (f as u64) << 20 ^ b as u64).below(8)) as u8,
                )
            })
            .collect()
    } else {
        (0..240)
            .map(|_| {
                let f = frame_idxs[rng.below(frame_idxs.len() as u64) as usize];
                let ReplMsg::Frame { bytes } = &msgs[f] else {
                    unreachable!()
                };
                (
                    f,
                    rng.below(bytes.len() as u64) as usize,
                    rng.below(8) as u8,
                )
            })
            .collect()
    };
    for &flip in &flips {
        check_flip(seed, &msgs, &frames_before, &ops, &mut memo, flip);
    }
    println!(
        "bit flips: {} single-bit attacks, none applied, every fault classified",
        flips.len()
    );

    // Phase 5: adjacent frames reordered in flight.
    let reorders: Vec<(usize, usize)> = if quick {
        frame_idxs.windows(2).map(|w| (w[0], w[1])).collect()
    } else {
        (0..96)
            .map(|_| {
                let i = rng.below(frame_idxs.len() as u64 - 1) as usize;
                (frame_idxs[i], frame_idxs[i + 1])
            })
            .collect()
    };
    for &pair in &reorders {
        check_reorder(seed, &msgs, &frames_before, &ops, &mut memo, pair);
    }
    println!(
        "reorders: {} adjacent swaps, all classified as gaps at the swap point",
        reorders.len()
    );

    // Phase 6: the primary compacts while a follower is attached. The
    // compaction collapses update/delete history and restarts the frame
    // sequence space — old applied counts mean nothing against the new
    // image, so the follower must converge through the Reset →
    // authoritative-snapshot path, not by prefix-skipping.
    let epoch_before = source.lineage_epoch();
    primary
        .snapshot()
        .unwrap_or_else(|e| fail(seed, &format!("primary compaction failed: {e}")));
    let epoch_after = source.lineage_epoch();
    if epoch_after == epoch_before {
        fail(
            seed,
            "compaction did not replace the source's lineage epoch",
        );
    }
    let compacted_total = match source.drain().as_slice() {
        [ReplMsg::Reset { ops }] => *ops,
        other => fail(
            seed,
            &format!(
                "compaction shipped {} messages, expected exactly one Reset",
                other.len()
            ),
        ),
    };
    if compacted_total > total as u64 {
        fail(
            seed,
            &format!("compaction grew the journal: {compacted_total} ops from {total}"),
        );
    }
    let image_compacted = primary
        .journal_image()
        .unwrap_or_else(|e| fail(seed, &format!("compacted journal unreadable: {e}")));
    // Keep writing in the restarted sequence space.
    let mut rng6 = Rng(seed ^ 0x6AC7);
    for i in 0..patients.min(64) {
        primary
            .insert("patients", patient_doc(&mut rng6, patients + i))
            .unwrap_or_else(|e| fail(seed, &format!("post-compaction insert failed: {e}")));
    }
    primary
        .sync()
        .unwrap_or_else(|e| fail(seed, &format!("post-compaction fsync failed: {e}")));
    let msgs_post = source.drain();
    let post_frames = msgs_post
        .iter()
        .filter(|m| matches!(m, ReplMsg::Frame { .. }))
        .count() as u64;
    let final_ops = compacted_total + post_frames;
    let golden_final = primary.read().fingerprint();
    let image_final = primary
        .journal_image()
        .unwrap_or_else(|e| fail(seed, &format!("final journal unreadable: {e}")));
    let compactions: Vec<(usize, usize)> = if quick {
        (0..=msgs.len()).map(|k| (k, 0)).collect()
    } else {
        (0..48)
            .map(|_| {
                let f = frame_idxs[rng.below(frame_idxs.len() as u64) as usize];
                let ReplMsg::Frame { bytes } = &msgs[f] else {
                    unreachable!()
                };
                match rng.below(2) {
                    0 => (rng.below(msgs.len() as u64 + 1) as usize, 0),
                    _ => (f, 1 + rng.below(bytes.len() as u64 - 1) as usize),
                }
            })
            .collect()
    };
    for &(upto, cut) in &compactions {
        let coord = format!("compaction with follower at {upto} messages (cut {cut})");
        let metrics = Arc::new(ReplMetrics::new());
        let mut engine = fresh_engine(&metrics);
        feed_prefix(seed, &mut engine, &msgs, upto, cut);
        engine
            .consume(&ReplMsg::Reset {
                ops: compacted_total,
            })
            .unwrap_or_else(|e| fail(seed, &format!("{coord}: Reset rejected: {e}")));
        engine
            .consume(&ReplMsg::Snapshot {
                epoch: epoch_after,
                image: image_compacted.clone(),
            })
            .unwrap_or_else(|e| fail(seed, &format!("{coord}: compacted snapshot rejected: {e}")));
        if engine.applied_ops() != compacted_total {
            fail(
                seed,
                &format!(
                    "{coord}: {} ops applied after the compacted snapshot, expected the \
                     watermark to land on {compacted_total}",
                    engine.applied_ops()
                ),
            );
        }
        for msg in &msgs_post {
            engine
                .consume(msg)
                .unwrap_or_else(|e| fail(seed, &format!("{coord}: post-compaction frame: {e}")));
        }
        engine
            .sync()
            .unwrap_or_else(|e| fail(seed, &format!("{coord}: follower fsync failed: {e}")));
        if engine.applied_ops() != final_ops || engine.acked_ops() != final_ops {
            fail(
                seed,
                &format!(
                    "{coord}: applied {} / acked {} of {final_ops}",
                    engine.applied_ops(),
                    engine.acked_ops()
                ),
            );
        }
        if engine.fingerprint() != golden_final {
            fail(
                seed,
                &format!("{coord}: follower diverged from the primary"),
            );
        }
        let replica_image = engine
            .kdb()
            .journal_image()
            .unwrap_or_else(|e| fail(seed, &format!("{coord}: replica journal unreadable: {e}")));
        if replica_image != image_final {
            fail(
                seed,
                &format!("{coord}: journal not byte-identical after compaction recovery"),
            );
        }
        let snap = metrics.snapshot();
        if snap.rejects_gap != 0 || snap.rejects_corrupt != 0 {
            fail(
                seed,
                &format!("{coord}: compaction recovery counted stream rejects"),
            );
        }
    }
    println!(
        "compactions: {} attach points healed through Reset + authoritative snapshot \
         ({total} ops collapsed to {compacted_total}, then {post_frames} more), all byte-identical",
        compactions.len()
    );

    println!(
        "fleet torture passed: seed {seed}, {patients} patients, {:.2}s",
        t0.elapsed().as_secs_f64()
    );
}
