//! Reproduces the **Section IV-B partial-mining experiment** (the
//! paper's results narrative; reported in prose rather than a numbered
//! figure).
//!
//! Protocol: "Three incremental runs have been analysed by considering
//! up to 20%, 40% and 100% of the total number of examination types
//! (corresponding to 70%, 85% and 100% of the original row data) … Based
//! on the overall similarity measures … performances on only 85% of row
//! data are comparable to those obtained on the entire dataset,
//! regardless of the number of clusters. … For a fixed number of
//! clusters, the overall similarity decreases as the number of exams is
//! reduced. ADA-HEALTH selects the optimal subset size based on the
//! percentage difference between the overall similarity value calculated
//! on the subset, and that calculated on the complete dataset: in this
//! example, 85% of raw data yields a percentage difference less than
//! 5%."
//!
//! Run: `cargo run -p ada-bench --release --bin partial_mining`

use ada_bench::paper_log;
use ada_core::partial::{HorizontalPartialMiner, VerticalPartialMiner};

/// The paper's published coverage points: fraction of exam types →
/// fraction of raw rows.
const PAPER_COVERAGE: [(f64, f64); 3] = [(0.20, 0.70), (0.40, 0.85), (1.00, 1.00)];

fn main() {
    println!("=== Section IV-B reproduction: adaptive horizontal partial mining ===");
    println!();

    let log = paper_log();
    println!(
        "dataset: {} patients, {} exam types, {} records",
        log.num_patients(),
        log.num_exam_types(),
        log.num_records()
    );
    println!();

    let miner = HorizontalPartialMiner::default();
    let report = miner.run(&log);

    println!("--- coverage points (types% -> rows%) ---");
    for (step, &(frac, paper_rows)) in report.steps.iter().zip(&PAPER_COVERAGE) {
        println!(
            "top {:>3.0}% of exam types: paper rows {:>5.1}%   measured rows {:>5.1}%",
            frac * 100.0,
            paper_rows * 100.0,
            step.row_coverage * 100.0
        );
    }
    println!();

    println!(
        "--- overall similarity per subset (mean over K = {:?}, {} restarts) ---",
        miner.ks, miner.restarts
    );
    println!(
        "{:>8} {:>8} {:>10} {:>14} {:>12} {:>12}",
        "types%", "rows%", "similarity", "diff vs full", "within 5%?", "ARI vs full"
    );
    for (i, step) in report.steps.iter().enumerate() {
        let diff = report.difference_vs_full(i);
        println!(
            "{:>7.0}% {:>7.1}% {:>10.4} {:>13.1}% {:>12} {:>12.3}",
            step.fraction * 100.0,
            step.row_coverage * 100.0,
            step.mean_similarity(),
            diff * 100.0,
            if diff <= report.epsilon { "yes" } else { "no" },
            step.mean_agreement().unwrap_or(f64::NAN)
        );
    }
    println!();

    let sel = report.selected_step();
    println!("--- selection ---");
    println!(
        "ADA-HEALTH selects the {:.0}%-of-types subset ({:.1}% of raw rows), \
         the smallest within the {:.0}% tolerance",
        sel.fraction * 100.0,
        sel.row_coverage * 100.0,
        report.epsilon * 100.0
    );
    println!(
        "paper: selects the 40%-of-types subset (85% of raw rows) — match: {}",
        report.selected == 1
    );
    println!();

    // Per-K detail ("regardless of the number of clusters").
    println!("--- per-K similarity detail ---");
    print!("{:>8}", "types%");
    for &(k, _) in &report.steps[0].per_k {
        print!(" {:>8}", format!("K={k}"));
    }
    println!();
    for step in &report.steps {
        print!("{:>7.0}%", step.fraction * 100.0);
        for &(_, sim) in &step.per_k {
            print!(" {sim:>8.4}");
        }
        println!();
    }
    println!();

    // Shape checks.
    let sims: Vec<f64> = report.steps.iter().map(|s| s.mean_similarity()).collect();
    println!("--- shape checks ---");
    println!(
        "similarity decreases as exams are reduced: {}",
        sims[0] < sims[2]
    );
    println!(
        "mid subset within 5% of full data:          {}",
        report.difference_vs_full(1) <= report.epsilon
    );
    println!(
        "small subset outside 5% tolerance:          {}",
        report.difference_vs_full(0) > report.epsilon
    );

    // Extension: the vertical (patient-sample) strategy on the same data.
    println!();
    println!("--- extension: vertical partial mining (patient samples) ---");
    let vertical = VerticalPartialMiner::default().run(&log);
    for (i, step) in vertical.steps.iter().enumerate() {
        println!(
            "{:>3.0}% of patients: similarity {:.4} (diff vs full {:.1}%)",
            step.fraction * 100.0,
            step.mean_similarity(),
            vertical.difference_vs_full(i) * 100.0
        );
    }
    println!(
        "selected patient fraction: {:.0}%",
        vertical.selected_step().fraction * 100.0
    );
}
