//! # ada-bench
//!
//! Benchmark harness reproducing every table and figure of the
//! ADA-HEALTH paper, plus Criterion micro-benchmarks for the ablations
//! DESIGN.md calls out.
//!
//! Reproduction binaries (each prints paper-vs-measured):
//!
//! * `table1` — Table I: the optimizer's K sweep (SSE, accuracy, AVG
//!   precision, AVG recall) with automatic K selection;
//! * `partial_mining` — the Section IV-B experiment: overall similarity
//!   at 20% / 40% / 100% of exam types and the ε = 5% subset selection;
//! * `pipeline_e2e` — Figure 1: runs every architecture box in order and
//!   prints the component trace;
//! * `calibrate` — developer aid: prints the generator's realized
//!   marginals for a parameter combination.
//!
//! Criterion benches: `kmeans` (Lloyd vs filtering vs bisecting),
//! `patterns` (Apriori vs FP-growth), `kdb` (insert/query/index/replay),
//! `vsm` (build + weighting variants), `partial` (subset-mining speedup).

#![warn(missing_docs)]

use ada_dataset::synthetic::{generate, SyntheticConfig};
use ada_dataset::ExamLog;

/// The paper-scale cohort used by the reproduction binaries (seeded).
pub fn paper_log() -> ExamLog {
    generate(&SyntheticConfig::paper(), 42)
}

/// A reduced cohort for the Criterion micro-benchmarks (seeded).
pub fn bench_log() -> ExamLog {
    generate(
        &SyntheticConfig {
            num_patients: 1_500,
            num_exam_types: 159,
            target_records: 22_500,
            ..SyntheticConfig::paper()
        },
        42,
    )
}
