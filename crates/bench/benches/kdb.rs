//! K-DB bench: document-store operations.
//!
//! The paper hosts its knowledge base on "a cluster of MongoDBs"; the
//! embedded substitute must sustain the pipeline's access pattern —
//! bursts of knowledge-item inserts, filtered reads during ranking, and
//! journal replay on reopen. This bench tracks all three plus the
//! index-vs-scan ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ada_kdb::{Document, Filter, Kdb, Value};

fn item(i: usize) -> Document {
    Document::new()
        .with("session", format!("s{}", i % 8))
        .with(
            "kind",
            if i.is_multiple_of(3) {
                "cluster"
            } else {
                "pattern"
            },
        )
        .with("score", (i % 100) as f64 / 100.0)
        .with("description", format!("knowledge item number {i}"))
}

fn populated(n: usize, indexed: bool) -> Kdb {
    let mut db = Kdb::in_memory();
    db.create_collection("items").unwrap();
    if indexed {
        db.create_index("items", "kind").unwrap();
        db.create_index("items", "score").unwrap();
    }
    for i in 0..n {
        db.insert("items", item(i)).unwrap();
    }
    db
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("kdb-insert");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("memory", n), &n, |b, &n| {
            b.iter(|| black_box(populated(n, false)))
        });
        group.bench_with_input(BenchmarkId::new("memory-indexed", n), &n, |b, &n| {
            b.iter(|| black_box(populated(n, true)))
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let scan_db = populated(20_000, false);
    let index_db = populated(20_000, true);
    let eq = Filter::eq("kind", "cluster");
    let range = Filter::Gt("score".into(), Value::F64(0.95));

    let mut group = c.benchmark_group("kdb-query");
    group.bench_function("eq-scan", |b| {
        b.iter(|| black_box(scan_db.collection("items").unwrap().find(&eq).len()))
    });
    group.bench_function("eq-indexed", |b| {
        b.iter(|| black_box(index_db.collection("items").unwrap().find(&eq).len()))
    });
    group.bench_function("range-scan", |b| {
        b.iter(|| black_box(scan_db.collection("items").unwrap().find(&range).len()))
    });
    group.bench_function("range-indexed", |b| {
        b.iter(|| black_box(index_db.collection("items").unwrap().find(&range).len()))
    });
    group.finish();
}

fn bench_journal(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("ada_kdb_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mut group = c.benchmark_group("kdb-journal");
    group.sample_size(10);
    group.bench_function("append-5k", |b| {
        b.iter(|| {
            let path = dir.join("append.kdb");
            std::fs::remove_file(&path).ok();
            let mut db = Kdb::open(&path).unwrap();
            db.create_collection("items").unwrap();
            for i in 0..5_000 {
                db.insert("items", item(i)).unwrap();
            }
            black_box(db)
        })
    });

    // Replay: open a pre-written 5k journal.
    let replay_path = dir.join("replay.kdb");
    {
        std::fs::remove_file(&replay_path).ok();
        let mut db = Kdb::open(&replay_path).unwrap();
        db.create_collection("items").unwrap();
        for i in 0..5_000 {
            db.insert("items", item(i)).unwrap();
        }
    }
    group.bench_function("replay-5k", |b| {
        b.iter(|| black_box(Kdb::open(&replay_path).unwrap()))
    });
    group.finish();

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_insert, bench_query, bench_journal);
criterion_main!(benches);
