//! Partial-mining speed bench: the motivation for Section IV-B.
//!
//! "To avoid the expensive and resource-consuming procedure of mining
//! the entire dataset when not necessary" — this bench quantifies the
//! claim: clustering on the 20% / 40% exam-type subsets vs the full
//! matrix, plus the full adaptive strategy's end-to-end cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ada_bench::bench_log;
use ada_core::partial::HorizontalPartialMiner;
use ada_mining::kmeans::KMeans;
use ada_vsm::VsmBuilder;

fn bench_subset_clustering(c: &mut Criterion) {
    let log = bench_log();
    let n_types = log.num_exam_types();
    let mut group = c.benchmark_group("partial-clustering");
    group.sample_size(10);
    for fraction in [0.2f64, 0.4, 1.0] {
        let top = ((fraction * n_types as f64).ceil() as usize).min(n_types);
        let pv = VsmBuilder::new().top_features(&log, top).build(&log);
        group.bench_with_input(
            BenchmarkId::new("kmeans8", format!("{:.0}%", fraction * 100.0)),
            &pv,
            |b, pv| b.iter(|| black_box(KMeans::new(8).seed(1).fit(&pv.matrix))),
        );
    }
    group.finish();
}

fn bench_adaptive_strategy(c: &mut Criterion) {
    let log = bench_log();
    let mut group = c.benchmark_group("partial-adaptive");
    group.sample_size(10);
    group.bench_function("horizontal-default", |b| {
        b.iter(|| black_box(HorizontalPartialMiner::default().run(&log)))
    });
    group.bench_function("horizontal-single-k", |b| {
        b.iter(|| {
            black_box(
                HorizontalPartialMiner {
                    ks: vec![8],
                    restarts: 1,
                    ..Default::default()
                }
                .run(&log),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_subset_clustering, bench_adaptive_strategy);
criterion_main!(benches);
