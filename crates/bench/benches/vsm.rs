//! VSM bench: the data-transformation block.
//!
//! Measures the ExamLog → matrix build under each candidate weighting
//! (the transformation selector runs all of them), plus the sparse vs
//! dense dot-product trade-off that decides which representation the
//! similarity metrics use.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ada_bench::bench_log;
use ada_vsm::{SparseVec, VsmBuilder, Weighting};

fn bench_build(c: &mut Criterion) {
    let log = bench_log();
    let mut group = c.benchmark_group("vsm-build");
    group.sample_size(20);
    for weighting in Weighting::ALL {
        group.bench_with_input(
            BenchmarkId::new("weighting", weighting),
            &weighting,
            |b, &w| b.iter(|| black_box(VsmBuilder::new().weighting(w).build(&log))),
        );
    }
    group.bench_function("top-32-features", |b| {
        b.iter(|| black_box(VsmBuilder::new().top_features(&log, 32).build(&log)))
    });
    group.finish();
}

fn bench_dot(c: &mut Criterion) {
    let log = bench_log();
    let pv = VsmBuilder::new().build(&log);
    let rows: Vec<SparseVec> = (0..200).map(|i| pv.sparse_row(i)).collect();
    let dense: Vec<Vec<f64>> = (0..200).map(|i| pv.matrix.row(i).to_vec()).collect();

    let mut group = c.benchmark_group("vsm-dot");
    group.bench_function("sparse-pairwise-200", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for x in &rows {
                for y in &rows {
                    acc += x.dot(y);
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("dense-pairwise-200", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for x in &dense {
                for y in &dense {
                    acc += ada_vsm::dense::dot(x, y);
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_dot);
criterion_main!(benches);
