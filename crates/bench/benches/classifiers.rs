//! Ablation bench: robustness classifiers.
//!
//! The optimizer's inner loop cross-validates a classifier per K; this
//! bench compares the four options (CART tree, random forest, naive
//! Bayes, k-NN) on the fit+predict cost that dominates the sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ada_bench::bench_log;
use ada_mining::bayes::GaussianNb;
use ada_mining::forest::{ForestConfig, RandomForest};
use ada_mining::kmeans::KMeans;
use ada_mining::knn::KnnClassifier;
use ada_mining::tree::{DecisionTree, TreeConfig};
use ada_vsm::{DenseMatrix, VsmBuilder};

fn training_task() -> (DenseMatrix, Vec<usize>, usize) {
    let log = bench_log();
    let pv = VsmBuilder::new().top_features(&log, 32).build(&log);
    let k = 8;
    let labels = KMeans::new(k).seed(1).fit(&pv.matrix).assignments;
    (pv.matrix, labels, k)
}

fn bench_fit_predict(c: &mut Criterion) {
    let (matrix, labels, k) = training_task();
    let tree_cfg = TreeConfig {
        max_depth: 8,
        min_samples_leaf: 5,
        ..TreeConfig::default()
    };
    let forest_cfg = ForestConfig {
        num_trees: 15,
        ..ForestConfig::default()
    };

    let mut group = c.benchmark_group("classifiers");
    group.sample_size(10);
    group.bench_function("tree", |b| {
        b.iter(|| {
            let model = DecisionTree::fit(&matrix, &labels, k, &tree_cfg);
            black_box(model.predict(&matrix))
        })
    });
    group.bench_function("forest-15", |b| {
        b.iter(|| {
            let model = RandomForest::fit(&matrix, &labels, k, &forest_cfg);
            black_box(model.predict(&matrix))
        })
    });
    group.bench_function("naive-bayes", |b| {
        b.iter(|| {
            let model = GaussianNb::fit(&matrix, &labels, k);
            black_box(model.predict(&matrix))
        })
    });
    group.bench_function("knn-5", |b| {
        b.iter(|| {
            let model = KnnClassifier::fit(&matrix, &labels, k, 5);
            black_box(model.predict(&matrix))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fit_predict);
criterion_main!(benches);
