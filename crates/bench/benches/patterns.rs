//! Ablation bench: Apriori vs FP-growth across support thresholds.
//!
//! The two miners produce identical outputs (property-tested); this
//! bench documents why FP-growth is the production default — the gap
//! widens as the support threshold drops and the candidate space of
//! Apriori explodes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ada_bench::bench_log;
use ada_mining::patterns::{apriori, fpgrowth, relative_min_support, Transaction};

fn visit_transactions() -> Vec<Transaction> {
    let log = bench_log();
    log.visits()
        .into_iter()
        .map(|v| v.exams.into_iter().map(|e| e.0).collect())
        .collect()
}

fn bench_miners(c: &mut Criterion) {
    let transactions = visit_transactions();
    let mut group = c.benchmark_group("patterns");
    group.sample_size(10);
    for rel_support in [0.05f64, 0.02, 0.01] {
        let min_support = relative_min_support(transactions.len(), rel_support);
        let label = format!("{:.0}%", rel_support * 100.0);
        group.bench_with_input(
            BenchmarkId::new("fpgrowth", &label),
            &min_support,
            |b, &s| b.iter(|| black_box(fpgrowth::mine(&transactions, s))),
        );
        group.bench_with_input(
            BenchmarkId::new("apriori", &label),
            &min_support,
            |b, &s| b.iter(|| black_box(apriori::mine(&transactions, s))),
        );
    }
    group.finish();
}

fn bench_multilevel(c: &mut Criterion) {
    // Taxonomy-aware mining: extended transactions cost extra tree size;
    // this measures the multi-level overhead vs flat mining.
    use ada_mining::patterns::taxonomy_mine::{self, ItemHierarchy};

    let log = bench_log();
    let taxonomy = log.taxonomy();
    let n_leaf = log.num_exam_types() as u32;
    let n_groups = ada_dataset::taxonomy::ConditionGroup::ALL.len() as u32;
    // Leaves -> group nodes -> domain nodes, in one dense id space.
    let mut parent: Vec<Option<u32>> = (0..n_leaf)
        .map(|e| {
            taxonomy
                .group_of(ada_dataset::ExamTypeId(e))
                .map(|g| n_leaf + g.index() as u32)
        })
        .collect();
    for g in ada_dataset::taxonomy::ConditionGroup::ALL {
        parent.push(Some(n_leaf + n_groups + g.domain().index() as u32));
    }
    for _ in ada_dataset::taxonomy::Domain::ALL {
        parent.push(None);
    }
    let hierarchy = ItemHierarchy::new(parent);

    let transactions = visit_transactions();
    let min_support = relative_min_support(transactions.len(), 0.05);

    let mut group = c.benchmark_group("patterns-multilevel");
    group.sample_size(10);
    group.bench_function("flat", |b| {
        b.iter(|| black_box(fpgrowth::mine(&transactions, min_support)))
    });
    group.bench_function("taxonomy", |b| {
        b.iter(|| black_box(taxonomy_mine::mine(&transactions, &hierarchy, min_support)))
    });
    group.finish();
}

criterion_group!(benches, bench_miners, bench_multilevel);
criterion_main!(benches);
