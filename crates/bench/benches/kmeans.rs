//! Ablation bench: K-means backends.
//!
//! Compares the classic Lloyd iteration against Kanungo et al.'s kd-tree
//! filtering algorithm (the paper's reference \[3\]) and bisecting
//! K-means, across the K values of the optimizer's inner loop. The
//! filtering algorithm's advantage grows with cluster separation and
//! shrinks with dimensionality — this bench documents where it pays off
//! on VSM data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ada_bench::bench_log;
use ada_mining::kmeans::bisecting::Bisecting;
use ada_mining::kmeans::{KMeans, KMeansBackend};
use ada_vsm::VsmBuilder;

fn bench_backends(c: &mut Criterion) {
    let log = bench_log();
    // The optimizer's working set: the partial-mining subset.
    let pv = VsmBuilder::new().top_features(&log, 64).build(&log);

    let mut group = c.benchmark_group("kmeans");
    group.sample_size(10);
    for k in [6usize, 8, 12, 20] {
        group.bench_with_input(BenchmarkId::new("lloyd", k), &k, |b, &k| {
            b.iter(|| {
                black_box(
                    KMeans::new(k)
                        .seed(1)
                        .backend(KMeansBackend::Lloyd)
                        .fit(&pv.matrix),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("filtering", k), &k, |b, &k| {
            b.iter(|| {
                black_box(
                    KMeans::new(k)
                        .seed(1)
                        .backend(KMeansBackend::Filtering)
                        .fit(&pv.matrix),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("bisecting", k), &k, |b, &k| {
            b.iter(|| black_box(Bisecting::new(k).seed(1).fit(&pv.matrix)))
        });
    }
    group.finish();
}

fn bench_dimensionality(c: &mut Criterion) {
    // Lloyd vs filtering as the feature count grows: kd-tree pruning
    // weakens in high dimensions (the curse the paper's partial mining
    // side-steps by shrinking the feature space first).
    let log = bench_log();
    let mut group = c.benchmark_group("kmeans-dims");
    group.sample_size(10);
    for dims in [16usize, 32, 64, 159] {
        let pv = VsmBuilder::new().top_features(&log, dims).build(&log);
        group.bench_with_input(BenchmarkId::new("lloyd", dims), &pv, |b, pv| {
            b.iter(|| {
                black_box(
                    KMeans::new(8)
                        .seed(1)
                        .backend(KMeansBackend::Lloyd)
                        .fit(&pv.matrix),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("filtering", dims), &pv, |b, pv| {
            b.iter(|| {
                black_box(
                    KMeans::new(8)
                        .seed(1)
                        .backend(KMeansBackend::Filtering)
                        .fit(&pv.matrix),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends, bench_dimensionality);
criterion_main!(benches);
