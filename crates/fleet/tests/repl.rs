//! Replication integration: a primary and a warm standby over real TCP.
//!
//! The invariants under test are the crate's headline guarantees:
//! a caught-up follower is **byte-identical** to the primary (same
//! state fingerprint, same journal bytes), a partitioned follower
//! reconnects and converges, and a promoted follower is exactly the
//! acked prefix of the primary — nothing more, nothing less.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ada_fleet::{FleetNode, ReplFollower, ReplListener, ReplSource};
use ada_kdb::{Document, MemStorage, SharedKdb, StoreOptions, Value};
use ada_obs::ReplMetrics;

fn mem_kdb(path: &str) -> SharedKdb {
    SharedKdb::open_with(
        Path::new(path),
        StoreOptions::with_storage(Arc::new(MemStorage::new())),
    )
    .unwrap()
}

fn patient(id: i64, exams: i64) -> Document {
    Document::new()
        .with("patient", id)
        .with("exams", exams)
        .with("ward", Value::Str(format!("ward-{}", id % 4)))
}

/// Polls `cond` every 5ms for up to 5s.
fn wait_for(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn tcp_replication_converges_byte_identical_and_survives_reconnect() {
    let primary = mem_kdb("fleet_primary.journal");
    primary.create_collection("patients").unwrap();
    primary.create_index("patients", "ward").unwrap();
    let ids: Vec<_> = (0..40i64)
        .map(|i| primary.insert("patients", patient(i, i % 7)).unwrap())
        .collect();

    let metrics = Arc::new(ReplMetrics::new());
    let source = ReplSource::new(Arc::clone(&metrics));
    let listener = ReplListener::start(primary.clone(), source, "127.0.0.1:0").unwrap();
    let repl_addr = listener.local_addr();

    let follower_metrics = Arc::new(ReplMetrics::new());
    let replica = mem_kdb("fleet_follower.journal");
    let follower = ReplFollower::start(repl_addr, replica, Arc::clone(&follower_metrics));

    // Live writes after the follower attached: updates and deletes ride
    // the tap, the earlier inserts ride the bootstrap snapshot.
    for (i, id) in ids.iter().take(10).enumerate() {
        primary
            .update("patients", *id, patient(i as i64, 99))
            .unwrap();
    }
    primary.delete("patients", ids[39]).unwrap();
    primary.sync().unwrap();

    let want = primary.journal_acked_ops();
    wait_for("follower to ack the full journal", || {
        follower.acked() >= want
    });
    assert!(follower.halted().is_none(), "replication must not halt");

    let engine = follower.engine();
    assert_eq!(
        primary.read().fingerprint(),
        engine.lock().fingerprint(),
        "caught-up follower state must match the primary"
    );
    assert_eq!(
        primary.journal_image().unwrap(),
        engine.lock().kdb().journal_image().unwrap(),
        "a clean replicated journal must be byte-identical"
    );

    // Partition: the primary's replication endpoint dies; writes keep
    // landing on the primary while the follower retries with backoff.
    listener.shutdown();
    for i in 100..120i64 {
        primary.insert("patients", patient(i, 1)).unwrap();
    }
    primary.sync().unwrap();

    // Heal: a fresh endpoint on the same address. The follower's
    // re-Hello fetches a snapshot covering the missed writes; overlap
    // frames are verified duplicates, skipped, never double-applied.
    let source2 = ReplSource::new(Arc::clone(&metrics));
    let _listener2 = ReplListener::start(primary.clone(), source2, repl_addr).unwrap();
    let want = primary.journal_acked_ops();
    wait_for("follower to catch up after the partition heals", || {
        follower.acked() >= want
    });
    assert!(follower.halted().is_none());
    assert_eq!(primary.read().fingerprint(), engine.lock().fingerprint());
    assert_eq!(
        primary.journal_image().unwrap(),
        engine.lock().kdb().journal_image().unwrap()
    );

    let snap = follower_metrics.snapshot();
    assert_eq!(snap.rejects_gap, 0, "clean link must never gap");
    assert_eq!(snap.rejects_corrupt, 0, "clean link must never corrupt");
    assert!(snap.frames_applied >= want, "applied ops reach the metrics");
}

#[test]
fn compaction_under_a_live_follower_rebootstraps_authoritatively() {
    let primary = mem_kdb("fleet_compact_p.journal");
    primary.create_collection("patients").unwrap();
    let ids: Vec<_> = (0..30i64)
        .map(|i| primary.insert("patients", patient(i, 1)).unwrap())
        .collect();
    // History the compaction will collapse: updates and deletes mean
    // the compacted journal holds fewer ops than the follower applied.
    for id in ids.iter().take(12) {
        primary.update("patients", *id, patient(-1, 5)).unwrap();
    }
    for id in ids.iter().skip(20) {
        primary.delete("patients", *id).unwrap();
    }
    primary.sync().unwrap();

    let metrics = Arc::new(ReplMetrics::new());
    let source = ReplSource::new(Arc::clone(&metrics));
    let listener = ReplListener::start(primary.clone(), source, "127.0.0.1:0").unwrap();
    let follower = ReplFollower::start(
        listener.local_addr(),
        mem_kdb("fleet_compact_f.journal"),
        Arc::new(ReplMetrics::new()),
    );
    let want = primary.journal_acked_ops();
    wait_for("follower to ack the pre-compaction journal", || {
        follower.acked() >= want
    });

    // Compact the live primary: the journal collapses to current state
    // and the frame sequence space restarts — the follower's applied
    // count means nothing against the new image.
    primary.snapshot().unwrap();
    for i in 500..510i64 {
        primary.insert("patients", patient(i, 9)).unwrap();
    }
    primary.sync().unwrap();

    let engine = follower.engine();
    wait_for("follower to converge on the compacted lineage", || {
        primary.read().fingerprint() == engine.lock().fingerprint()
    });
    assert!(
        follower.halted().is_none(),
        "compaction must re-bootstrap, not halt: {:?}",
        follower.halted()
    );
    assert_eq!(
        primary.journal_image().unwrap(),
        engine.lock().kdb().journal_image().unwrap(),
        "post-compaction replica journal must be byte-identical"
    );
    let snap = metrics.snapshot();
    assert!(
        snap.snapshots >= 2,
        "the epoch change must force a fresh authoritative snapshot, got {}",
        snap.snapshots
    );
}

#[test]
fn source_overflow_recovers_via_suffix_catchup_without_reimaging() {
    let primary = mem_kdb("fleet_overflow_p.journal");
    primary.create_collection("patients").unwrap();
    for i in 0..20i64 {
        primary.insert("patients", patient(i, 1)).unwrap();
    }
    primary.sync().unwrap();

    // A tiny queue so a write burst overflows between shipper drains.
    let metrics = Arc::new(ReplMetrics::new());
    let source = ReplSource::with_capacity(Arc::clone(&metrics), 4);
    let listener =
        ReplListener::start(primary.clone(), Arc::clone(&source), "127.0.0.1:0").unwrap();
    let follower = ReplFollower::start(
        listener.local_addr(),
        mem_kdb("fleet_overflow_f.journal"),
        Arc::new(ReplMetrics::new()),
    );
    let want = primary.journal_acked_ops();
    wait_for("follower to bootstrap", || follower.acked() >= want);

    // Burst until the queue drops frames and goes sticky-overflowed.
    let mut next = 1000i64;
    for _ in 0..200 {
        if source.overflowed() {
            break;
        }
        for _ in 0..16 {
            primary.insert("patients", patient(next, 2)).unwrap();
            next += 1;
        }
    }
    assert!(source.overflowed(), "burst never overflowed the queue");
    primary.sync().unwrap();

    // Recovery: Reset → re-Hello (same lineage) → suffix CatchUp. The
    // overflow dropped frames, but the journal has them all; nothing
    // here may gap, halt, or require a second full image.
    let want = primary.journal_acked_ops();
    wait_for("follower to catch up past the overflow", || {
        follower.acked() >= want
    });
    assert!(follower.halted().is_none(), "{:?}", follower.halted());
    let engine = follower.engine();
    assert_eq!(primary.read().fingerprint(), engine.lock().fingerprint());
    assert_eq!(
        primary.journal_image().unwrap(),
        engine.lock().kdb().journal_image().unwrap()
    );
    let snap = metrics.snapshot();
    assert_eq!(
        snap.snapshots, 1,
        "same-lineage overflow recovery must use the frame suffix, not a re-image"
    );
}

#[test]
fn surplus_follower_is_rejected_visibly_then_attaches_when_the_slot_frees() {
    let primary = mem_kdb("fleet_surplus_p.journal");
    primary.create_collection("patients").unwrap();
    for i in 0..15i64 {
        primary.insert("patients", patient(i, 3)).unwrap();
    }
    primary.sync().unwrap();

    let source = ReplSource::new(Arc::new(ReplMetrics::new()));
    let listener = ReplListener::start(primary.clone(), source, "127.0.0.1:0").unwrap();
    let first = ReplFollower::start(
        listener.local_addr(),
        mem_kdb("fleet_surplus_f1.journal"),
        Arc::new(ReplMetrics::new()),
    );
    let want = primary.journal_acked_ops();
    wait_for("first follower to attach", || first.acked() >= want);

    // A second follower is told "no" instead of rotting in the accept
    // backlog — visible, non-fatal, still retrying.
    let second = ReplFollower::start(
        listener.local_addr(),
        mem_kdb("fleet_surplus_f2.journal"),
        Arc::new(ReplMetrics::new()),
    );
    wait_for("surplus follower to surface the rejection", || {
        second.last_reject().is_some()
    });
    assert!(second.halted().is_none(), "rejection must not be fatal");
    assert_eq!(second.acked(), 0, "a rejected follower replicates nothing");

    // The slot frees (first follower promoted away); the surplus
    // follower's next retry attaches and replicates for real.
    drop(first);
    wait_for("second follower to take the freed slot", || {
        second.acked() >= want
    });
    assert!(second.halted().is_none());
    assert_eq!(
        primary.read().fingerprint(),
        second.engine().lock().fingerprint()
    );
}

#[test]
fn promoted_follower_is_exactly_the_acked_prefix() {
    let primary = mem_kdb("fleet_prefix_p.journal");
    primary.create_collection("patients").unwrap();
    for i in 0..25i64 {
        primary.insert("patients", patient(i, 2)).unwrap();
    }
    primary.sync().unwrap();

    let source = ReplSource::new(Arc::new(ReplMetrics::new()));
    let listener = ReplListener::start(primary.clone(), source, "127.0.0.1:0").unwrap();
    let follower = ReplFollower::start(
        listener.local_addr(),
        mem_kdb("fleet_prefix_f.journal"),
        Arc::new(ReplMetrics::new()),
    );
    let want = primary.journal_acked_ops();
    wait_for("follower to ack the prefix", || follower.acked() >= want);
    let golden = primary.read().fingerprint();

    // The primary dies mid-flight: the endpoint goes away and three
    // writes land that are never shipped or acked.
    listener.shutdown();
    for i in 200..203i64 {
        primary.insert("patients", patient(i, 0)).unwrap();
    }
    primary.sync().unwrap();
    assert_ne!(primary.read().fingerprint(), golden);

    // Promotion: stop tailing, take the store writable. The replica is
    // exactly the acked prefix — the unshipped suffix never leaks in.
    let engine = follower.shutdown();
    let engine = engine.lock();
    assert_eq!(engine.acked_ops(), want);
    assert_eq!(engine.fingerprint(), golden);

    // And it accepts writes as a primary would.
    let promoted = engine.kdb().clone();
    drop(engine);
    let id = promoted.insert("patients", patient(999, 1)).unwrap();
    promoted.sync().unwrap();
    assert!(promoted.journal_acked_ops() > want);
    let found = promoted
        .read()
        .find("patients", &ada_kdb::Filter::eq("patient", 999i64))
        .unwrap();
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].0, id);
}

#[test]
fn fleet_node_pair_replicates_sessions_and_promotes() {
    use ada_core::AdaHealthConfig;
    use ada_dataset::synthetic::{generate, SyntheticConfig};
    use ada_net::NetConfig;
    use ada_service::{JobSpec, ServiceConfig, ServiceError, SessionState};

    let cohort = SyntheticConfig {
        num_patients: 40,
        num_exam_types: 12,
        target_records: 400,
        ..SyntheticConfig::small()
    };
    let service_cfg = ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    };

    let primary = FleetNode::start_primary(
        "alpha",
        service_cfg.clone(),
        mem_kdb("fleet_node_p.journal"),
        NetConfig::default(),
    )
    .unwrap();
    let repl_addr = primary.repl_addr().expect("primary ships its journal");
    let mut standby = FleetNode::start_follower(
        "beta",
        service_cfg,
        mem_kdb("fleet_node_f.journal"),
        NetConfig::default(),
        repl_addr,
    )
    .unwrap();

    // Roles are visible in health, and the standby refuses writes.
    assert!(matches!(
        standby.service().submit(JobSpec::new(
            AdaHealthConfig::quick("rejected"),
            Arc::new(generate(&cohort, 7)),
        )),
        Err(ServiceError::Follower)
    ));

    // A session completed on the primary becomes queryable on the
    // standby once its persisted record replicates.
    let id = primary
        .service()
        .submit(JobSpec::new(
            AdaHealthConfig::quick("replicated-session"),
            Arc::new(generate(&cohort, 11)),
        ))
        .unwrap();
    assert!(matches!(
        primary.service().wait(id).unwrap(),
        SessionState::Completed(_)
    ));
    primary.service().kdb().sync().unwrap();
    wait_for("session record to replicate to the standby", || {
        !standby.service().past_sessions().is_empty()
    });

    // Promotion flips the standby writable in place; round two runs on
    // the survivor.
    let primary_metrics = primary.shutdown();
    assert_eq!(primary_metrics.protocol_errors, 0);
    assert!(standby.promote().unwrap());
    assert!(!standby.promote().unwrap(), "second promote is a no-op");
    let id = standby
        .service()
        .submit(JobSpec::new(
            AdaHealthConfig::quick("after-failover"),
            Arc::new(generate(&cohort, 13)),
        ))
        .unwrap();
    assert!(matches!(
        standby.service().wait(id).unwrap(),
        SessionState::Completed(_)
    ));
    assert_eq!(standby.service().past_sessions().len(), 2);

    // The promoted node's exposition carries the repl + fleet families.
    let exposition = standby.exposition();
    assert!(exposition.contains("# TYPE ada_repl_frames_applied_total counter"));
    assert!(exposition.contains("# TYPE ada_fleet_promotions_total counter"));
    standby.shutdown();
}
