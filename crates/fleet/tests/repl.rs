//! Replication integration: a primary and a warm standby over real TCP.
//!
//! The invariants under test are the crate's headline guarantees:
//! a caught-up follower is **byte-identical** to the primary (same
//! state fingerprint, same journal bytes), a partitioned follower
//! reconnects and converges, and a promoted follower is exactly the
//! acked prefix of the primary — nothing more, nothing less.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ada_fleet::{FleetNode, ReplFollower, ReplListener, ReplSource};
use ada_kdb::{Document, MemStorage, SharedKdb, StoreOptions, Value};
use ada_obs::ReplMetrics;

fn mem_kdb(path: &str) -> SharedKdb {
    SharedKdb::open_with(
        Path::new(path),
        StoreOptions::with_storage(Arc::new(MemStorage::new())),
    )
    .unwrap()
}

fn patient(id: i64, exams: i64) -> Document {
    Document::new()
        .with("patient", id)
        .with("exams", exams)
        .with("ward", Value::Str(format!("ward-{}", id % 4)))
}

/// Polls `cond` every 5ms for up to 5s.
fn wait_for(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn tcp_replication_converges_byte_identical_and_survives_reconnect() {
    let primary = mem_kdb("fleet_primary.journal");
    primary.create_collection("patients").unwrap();
    primary.create_index("patients", "ward").unwrap();
    let ids: Vec<_> = (0..40i64)
        .map(|i| primary.insert("patients", patient(i, i % 7)).unwrap())
        .collect();

    let metrics = Arc::new(ReplMetrics::new());
    let source = ReplSource::new(Arc::clone(&metrics));
    let listener = ReplListener::start(primary.clone(), source, "127.0.0.1:0").unwrap();
    let repl_addr = listener.local_addr();

    let follower_metrics = Arc::new(ReplMetrics::new());
    let replica = mem_kdb("fleet_follower.journal");
    let follower = ReplFollower::start(repl_addr, replica, Arc::clone(&follower_metrics));

    // Live writes after the follower attached: updates and deletes ride
    // the tap, the earlier inserts ride the bootstrap snapshot.
    for (i, id) in ids.iter().take(10).enumerate() {
        primary
            .update("patients", *id, patient(i as i64, 99))
            .unwrap();
    }
    primary.delete("patients", ids[39]).unwrap();
    primary.sync().unwrap();

    let want = primary.journal_acked_ops();
    wait_for("follower to ack the full journal", || {
        follower.acked() >= want
    });
    assert!(follower.halted().is_none(), "replication must not halt");

    let engine = follower.engine();
    assert_eq!(
        primary.read().fingerprint(),
        engine.lock().fingerprint(),
        "caught-up follower state must match the primary"
    );
    assert_eq!(
        primary.journal_image().unwrap(),
        engine.lock().kdb().journal_image().unwrap(),
        "a clean replicated journal must be byte-identical"
    );

    // Partition: the primary's replication endpoint dies; writes keep
    // landing on the primary while the follower retries with backoff.
    listener.shutdown();
    for i in 100..120i64 {
        primary.insert("patients", patient(i, 1)).unwrap();
    }
    primary.sync().unwrap();

    // Heal: a fresh endpoint on the same address. The follower's
    // re-Hello fetches a snapshot covering the missed writes; overlap
    // frames are verified duplicates, skipped, never double-applied.
    let source2 = ReplSource::new(Arc::clone(&metrics));
    let _listener2 = ReplListener::start(primary.clone(), source2, repl_addr).unwrap();
    let want = primary.journal_acked_ops();
    wait_for("follower to catch up after the partition heals", || {
        follower.acked() >= want
    });
    assert!(follower.halted().is_none());
    assert_eq!(primary.read().fingerprint(), engine.lock().fingerprint());
    assert_eq!(
        primary.journal_image().unwrap(),
        engine.lock().kdb().journal_image().unwrap()
    );

    let snap = follower_metrics.snapshot();
    assert_eq!(snap.rejects_gap, 0, "clean link must never gap");
    assert_eq!(snap.rejects_corrupt, 0, "clean link must never corrupt");
    assert!(snap.frames_applied >= want, "applied ops reach the metrics");
}

#[test]
fn promoted_follower_is_exactly_the_acked_prefix() {
    let primary = mem_kdb("fleet_prefix_p.journal");
    primary.create_collection("patients").unwrap();
    for i in 0..25i64 {
        primary.insert("patients", patient(i, 2)).unwrap();
    }
    primary.sync().unwrap();

    let source = ReplSource::new(Arc::new(ReplMetrics::new()));
    let listener = ReplListener::start(primary.clone(), source, "127.0.0.1:0").unwrap();
    let follower = ReplFollower::start(
        listener.local_addr(),
        mem_kdb("fleet_prefix_f.journal"),
        Arc::new(ReplMetrics::new()),
    );
    let want = primary.journal_acked_ops();
    wait_for("follower to ack the prefix", || follower.acked() >= want);
    let golden = primary.read().fingerprint();

    // The primary dies mid-flight: the endpoint goes away and three
    // writes land that are never shipped or acked.
    listener.shutdown();
    for i in 200..203i64 {
        primary.insert("patients", patient(i, 0)).unwrap();
    }
    primary.sync().unwrap();
    assert_ne!(primary.read().fingerprint(), golden);

    // Promotion: stop tailing, take the store writable. The replica is
    // exactly the acked prefix — the unshipped suffix never leaks in.
    let engine = follower.shutdown();
    let engine = engine.lock();
    assert_eq!(engine.acked_ops(), want);
    assert_eq!(engine.fingerprint(), golden);

    // And it accepts writes as a primary would.
    let promoted = engine.kdb().clone();
    drop(engine);
    let id = promoted.insert("patients", patient(999, 1)).unwrap();
    promoted.sync().unwrap();
    assert!(promoted.journal_acked_ops() > want);
    let found = promoted
        .read()
        .find("patients", &ada_kdb::Filter::eq("patient", 999i64))
        .unwrap();
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].0, id);
}

#[test]
fn fleet_node_pair_replicates_sessions_and_promotes() {
    use ada_core::AdaHealthConfig;
    use ada_dataset::synthetic::{generate, SyntheticConfig};
    use ada_net::NetConfig;
    use ada_service::{JobSpec, ServiceConfig, ServiceError, SessionState};

    let cohort = SyntheticConfig {
        num_patients: 40,
        num_exam_types: 12,
        target_records: 400,
        ..SyntheticConfig::small()
    };
    let service_cfg = ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    };

    let primary = FleetNode::start_primary(
        "alpha",
        service_cfg.clone(),
        mem_kdb("fleet_node_p.journal"),
        NetConfig::default(),
    )
    .unwrap();
    let repl_addr = primary.repl_addr().expect("primary ships its journal");
    let mut standby = FleetNode::start_follower(
        "beta",
        service_cfg,
        mem_kdb("fleet_node_f.journal"),
        NetConfig::default(),
        repl_addr,
    )
    .unwrap();

    // Roles are visible in health, and the standby refuses writes.
    assert!(matches!(
        standby.service().submit(JobSpec::new(
            AdaHealthConfig::quick("rejected"),
            Arc::new(generate(&cohort, 7)),
        )),
        Err(ServiceError::Follower)
    ));

    // A session completed on the primary becomes queryable on the
    // standby once its persisted record replicates.
    let id = primary
        .service()
        .submit(JobSpec::new(
            AdaHealthConfig::quick("replicated-session"),
            Arc::new(generate(&cohort, 11)),
        ))
        .unwrap();
    assert!(matches!(
        primary.service().wait(id).unwrap(),
        SessionState::Completed(_)
    ));
    primary.service().kdb().sync().unwrap();
    wait_for("session record to replicate to the standby", || {
        !standby.service().past_sessions().is_empty()
    });

    // Promotion flips the standby writable in place; round two runs on
    // the survivor.
    let primary_metrics = primary.shutdown();
    assert_eq!(primary_metrics.protocol_errors, 0);
    assert!(standby.promote().unwrap());
    assert!(!standby.promote().unwrap(), "second promote is a no-op");
    let id = standby
        .service()
        .submit(JobSpec::new(
            AdaHealthConfig::quick("after-failover"),
            Arc::new(generate(&cohort, 13)),
        ))
        .unwrap();
    assert!(matches!(
        standby.service().wait(id).unwrap(),
        SessionState::Completed(_)
    ));
    assert_eq!(standby.service().past_sessions().len(), 2);

    // The promoted node's exposition carries the repl + fleet families.
    let exposition = standby.exposition();
    assert!(exposition.contains("# TYPE ada_repl_frames_applied_total counter"));
    assert!(exposition.contains("# TYPE ada_fleet_promotions_total counter"));
    standby.shutdown();
}
