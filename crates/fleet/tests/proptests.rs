//! Property tests for the replication stream: under arbitrary chunking
//! a clean stream replays identically; dropped, reordered, or bit-flipped
//! frames are always classified (gap vs corruption, with a byte offset)
//! and never applied; and a follower fed a clean stream converges to a
//! byte-identical journal and an equal state fingerprint.

use std::path::Path;
use std::sync::Arc;

use ada_fleet::{ReplStream, ReplicaEngine, StreamFault};
use ada_kdb::journal::{crc32, Op};
use ada_kdb::{Document, MemStorage, SharedKdb, StoreOptions, Value};
use ada_obs::ReplMetrics;
use proptest::prelude::*;

/// Encodes one journal v2 frame exactly as the primary ships it.
fn frame(seq: u64, op: &Op) -> Vec<u8> {
    let mut payload = String::new();
    op.encode_into(&mut payload);
    let body = payload.as_bytes();
    let mut out = format!("R{}:{}:{:08x}:", body.len(), seq, crc32(body)).into_bytes();
    out.extend_from_slice(body);
    out
}

fn stream_bytes(ops: &[Op]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut starts = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        starts.push(bytes.len());
        bytes.extend_from_slice(&frame(i as u64, op));
    }
    (bytes, starts)
}

/// Drains every op the stream can currently yield.
fn drain(stream: &mut ReplStream) -> Result<Vec<Op>, StreamFault> {
    let mut out = Vec::new();
    loop {
        match stream.next_op() {
            Ok(Some(op)) => out.push(op),
            Ok(None) => return Ok(out),
            Err(fault) => return Err(fault),
        }
    }
}

fn doc_strategy() -> impl Strategy<Value = Document> {
    (-50i64..5000, "[a-z0-9 ]{0,12}", any::<bool>()).prop_map(|(n, s, b)| {
        Document::new()
            .with("n", n)
            .with("s", Value::Str(s))
            .with("flag", b)
    })
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let name = "[a-z]{1,8}";
    prop_oneof![
        name.prop_map(|name| Op::CreateCollection { name }),
        ("[a-z]{1,8}", "[a-z.]{1,8}").prop_map(|(name, path)| Op::CreateIndex { name, path }),
        ("[a-z]{1,8}", any::<u16>(), doc_strategy()).prop_map(|(name, id, doc)| Op::Insert {
            name,
            id: u64::from(id),
            doc,
        }),
        ("[a-z]{1,8}", any::<u16>(), doc_strategy()).prop_map(|(name, id, doc)| Op::Update {
            name,
            id: u64::from(id),
            doc,
        }),
        ("[a-z]{1,8}", any::<u16>()).prop_map(|(name, id)| Op::Delete {
            name,
            id: u64::from(id),
        }),
    ]
}

proptest! {
    // However the transport chunks a clean stream — including torn
    // mid-frame at every boundary — the decoded op sequence is the
    // shipped one, in order, with no fault.
    #[test]
    fn clean_stream_decodes_identically_under_any_chunking(
        ops in prop::collection::vec(op_strategy(), 1..24),
        chunks in prop::collection::vec(1usize..23, 1..64),
    ) {
        let (bytes, _) = stream_bytes(&ops);
        let mut stream = ReplStream::new();
        let mut got = Vec::new();
        let mut pos = 0;
        let mut cuts = chunks.into_iter();
        while pos < bytes.len() {
            let len = cuts.next().unwrap_or(usize::MAX).min(bytes.len() - pos);
            stream.push(&bytes[pos..pos + len]);
            pos += len;
            got.extend(drain(&mut stream).expect("clean stream must not fault"));
        }
        prop_assert_eq!(got, ops);
        prop_assert_eq!(stream.buffered(), 0);
        prop_assert!(stream.fault().is_none());
    }

    // A dropped frame is a gap, classified with the exact sequence
    // numbers and the byte offset where the stream diverged; everything
    // before it applies, nothing after it ever does.
    #[test]
    fn dropped_frame_is_a_sticky_classified_gap(
        ops in prop::collection::vec(op_strategy(), 2..24),
        drop_idx in any::<usize>(),
    ) {
        // Drop any frame but the last (dropping the last is just a
        // shorter clean stream — nothing to detect until more arrives).
        let k = drop_idx % (ops.len() - 1);
        let mut bytes = Vec::new();
        let mut offset = 0u64;
        for (i, op) in ops.iter().enumerate() {
            if i == k {
                offset = bytes.len() as u64;
                continue;
            }
            bytes.extend_from_slice(&frame(i as u64, op));
        }
        let mut stream = ReplStream::new();
        stream.push(&bytes);
        let fault = drain(&mut stream).expect_err("the gap must surface");
        prop_assert_eq!(&fault, &StreamFault::Gap {
            stored: k as u64 + 1,
            expected: k as u64,
            offset,
        });
        // Sticky: the fault repeats, and later pushes change nothing.
        prop_assert_eq!(stream.next_op().unwrap_err(), fault.clone());
        stream.push(&frame(k as u64, &ops[k]));
        prop_assert_eq!(stream.next_op().unwrap_err(), fault);
    }

    // Two adjacent frames swapped in flight: the early out-of-order
    // frame reads as a gap at the swap point. Never applied.
    #[test]
    fn reordered_frames_are_a_classified_gap(
        ops in prop::collection::vec(op_strategy(), 2..24),
        swap_idx in any::<usize>(),
    ) {
        let k = swap_idx % (ops.len() - 1);
        let mut order: Vec<usize> = (0..ops.len()).collect();
        order.swap(k, k + 1);
        let mut bytes = Vec::new();
        let mut offset = 0u64;
        for (pos, &i) in order.iter().enumerate() {
            if pos == k {
                offset = bytes.len() as u64;
            }
            bytes.extend_from_slice(&frame(i as u64, &ops[i]));
        }
        let mut stream = ReplStream::new();
        stream.push(&bytes);
        let got = drain(&mut stream);
        prop_assert_eq!(got, Err(StreamFault::Gap {
            stored: k as u64 + 1,
            expected: k as u64,
            offset,
        }));
    }

    // A single flipped bit anywhere in the shipped bytes can stall the
    // stream or fault it (gap or corruption, with an offset) — but the
    // ops that do apply are always an exact prefix of what was shipped,
    // and never the full sequence.
    #[test]
    fn single_bit_flip_never_applies_a_wrong_op(
        ops in prop::collection::vec(op_strategy(), 1..16),
        byte_idx in any::<usize>(),
        bit in 0u8..8,
    ) {
        let (mut bytes, _) = stream_bytes(&ops);
        let target = byte_idx % bytes.len();
        bytes[target] ^= 1 << bit;
        let mut stream = ReplStream::new();
        stream.push(&bytes);
        let mut got = Vec::new();
        let fault = loop {
            match stream.next_op() {
                Ok(Some(op)) => got.push(op),
                Ok(None) => break None,
                Err(fault) => break Some(fault),
            }
        };
        // Whatever applied is a verified prefix — a *wrong* op never
        // sneaks through.
        prop_assert_eq!(&got[..], &ops[..got.len()]);
        if let Some(fault) = fault {
            // Classified, offset-bearing, and sticky.
            prop_assert!(got.len() < ops.len());
            match &fault {
                StreamFault::Gap { offset, .. } | StreamFault::Corrupt { offset, .. } => {
                    prop_assert!(*offset <= bytes.len() as u64);
                }
            }
            prop_assert_eq!(stream.next_op().unwrap_err(), fault);
        } else {
            // No fault: the flip stalled the stream (an inflated length
            // field, correctly waiting for bytes that never come), got
            // the frame skipped as a verified duplicate (a lowered
            // final-frame seq digit), or was semantically neutral (a
            // CRC hex letter's case bit — the checksum text parses
            // case-insensitively, so the identical op decodes).
            prop_assert!(stream.buffered() > 0 || got.len() < ops.len() || got == ops);
        }
    }
}

/// One random-but-valid mutation script: inserts, updates and deletes
/// over one collection, as `(kind, payload-seed)` pairs.
fn script_strategy() -> impl Strategy<Value = Vec<(u8, i64)>> {
    prop::collection::vec((0u8..6, -100i64..10_000), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // A follower fed the primary's clean frame stream (in arbitrary
    // chunks) converges to the same state fingerprint and a
    // byte-identical journal.
    #[test]
    fn clean_replay_is_byte_identical(script in script_strategy(), chunk in 1usize..97) {
        let primary = SharedKdb::open_with(
            Path::new("prop_primary.journal"),
            StoreOptions::with_storage(Arc::new(MemStorage::new())),
        ).unwrap();
        primary.create_collection("records").unwrap();
        let mut ops = vec![Op::CreateCollection { name: "records".into() }];
        let mut live: Vec<u64> = Vec::new();
        for (kind, seed) in script {
            let doc = Document::new().with("v", seed).with("tag", Value::Str(format!("t{}", seed.rem_euclid(7))));
            match kind {
                0..=2 => {
                    let id = primary.insert("records", doc.clone()).unwrap();
                    live.push(id);
                    // The store stamps `_id` into the doc it journals.
                    ops.push(Op::Insert {
                        name: "records".into(),
                        id,
                        doc: doc.with("_id", id as i64),
                    });
                }
                3 | 4 if !live.is_empty() => {
                    let id = live[seed.unsigned_abs() as usize % live.len()];
                    primary.update("records", id, doc.clone()).unwrap();
                    ops.push(Op::Update { name: "records".into(), id, doc });
                }
                5 if !live.is_empty() => {
                    let id = live.remove(seed.unsigned_abs() as usize % live.len());
                    primary.delete("records", id).unwrap();
                    ops.push(Op::Delete { name: "records".into(), id });
                }
                _ => {}
            }
        }
        primary.sync().unwrap();

        let replica = SharedKdb::open_with(
            Path::new("prop_replica.journal"),
            StoreOptions::with_storage(Arc::new(MemStorage::new())),
        ).unwrap();
        let mut engine = ReplicaEngine::new(replica, Arc::new(ReplMetrics::new()));
        let (bytes, _) = stream_bytes(&ops);
        for piece in bytes.chunks(chunk) {
            engine.feed(piece).expect("clean stream applies");
        }
        prop_assert_eq!(engine.applied_ops(), ops.len() as u64);
        prop_assert_eq!(engine.fingerprint(), primary.read().fingerprint());
        prop_assert_eq!(
            engine.kdb().journal_image().unwrap(),
            primary.journal_image().unwrap()
        );
        engine.sync().unwrap();
        prop_assert_eq!(engine.acked_ops(), ops.len() as u64);
    }
}
