//! One fleet member: analysis service + wire front-end + replication
//! endpoint, under a single name.
//!
//! [`FleetNode`] is the deployment unit `fleet_smoke` (and a real
//! operator) stands up: a primary node serves clients *and* ships its
//! journal; a follower node serves read-only clients *and* tails the
//! primary. Promotion turns the latter into the former in place: stop
//! tailing, flip the service writable, start shipping.

use std::net::SocketAddr;
use std::sync::Arc;

use ada_kdb::SharedKdb;
use ada_net::{NetConfig, NetMetricsSnapshot, NetServer};
use ada_obs::{FleetMetrics, ReplMetrics};
use ada_service::{AnalysisService, ServiceConfig};

use crate::ship::{ReplFollower, ReplListener};
use crate::source::ReplSource;

/// A named fleet member (service + net front-end + replication role).
pub struct FleetNode {
    name: String,
    service: Arc<AnalysisService>,
    kdb: SharedKdb,
    server: NetServer,
    repl_metrics: Arc<ReplMetrics>,
    fleet_metrics: Arc<FleetMetrics>,
    listener: Option<ReplListener>,
    follower: Option<ReplFollower>,
}

impl FleetNode {
    /// Starts a primary: accepts writes, ships its journal on an
    /// ephemeral replication port.
    ///
    /// # Errors
    /// Socket bind failures for the client or replication listener.
    pub fn start_primary(
        name: impl Into<String>,
        config: ServiceConfig,
        kdb: SharedKdb,
        net: NetConfig,
    ) -> std::io::Result<Self> {
        let service = Arc::new(AnalysisService::new(config, kdb.clone()));
        let server = NetServer::start(Arc::clone(&service), net)?;
        let repl_metrics = Arc::new(ReplMetrics::new());
        let source = ReplSource::new(Arc::clone(&repl_metrics));
        let listener = ReplListener::start(kdb.clone(), source, "127.0.0.1:0")?;
        Ok(Self {
            name: name.into(),
            service,
            kdb,
            server,
            repl_metrics,
            fleet_metrics: Arc::new(FleetMetrics::new()),
            listener: Some(listener),
            follower: None,
        })
    }

    /// Starts a warm standby tailing `primary_repl`: serves read-only
    /// clients from the replicated state, refuses writes with the
    /// typed follower error.
    ///
    /// # Errors
    /// Socket bind failures for the client listener.
    pub fn start_follower(
        name: impl Into<String>,
        mut config: ServiceConfig,
        kdb: SharedKdb,
        net: NetConfig,
        primary_repl: SocketAddr,
    ) -> std::io::Result<Self> {
        config.follower = true;
        let repl_metrics = Arc::new(ReplMetrics::new());
        let follower = ReplFollower::start(primary_repl, kdb.clone(), Arc::clone(&repl_metrics));
        let service = Arc::new(AnalysisService::new(config, kdb.clone()));
        let server = NetServer::start(Arc::clone(&service), net)?;
        Ok(Self {
            name: name.into(),
            service,
            kdb,
            server,
            repl_metrics,
            fleet_metrics: Arc::new(FleetMetrics::new()),
            listener: None,
            follower: Some(follower),
        })
    }

    /// The member's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The client-facing wire address.
    pub fn client_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The replication address (primaries only).
    pub fn repl_addr(&self) -> Option<SocketAddr> {
        self.listener.as_ref().map(ReplListener::local_addr)
    }

    /// The node's analysis service.
    pub fn service(&self) -> &Arc<AnalysisService> {
        &self.service
    }

    /// The node's replication metrics.
    pub fn repl_metrics(&self) -> Arc<ReplMetrics> {
        Arc::clone(&self.repl_metrics)
    }

    /// The node's fleet metrics (populated by the router it is
    /// registered with, when any).
    pub fn fleet_metrics(&self) -> Arc<FleetMetrics> {
        Arc::clone(&self.fleet_metrics)
    }

    /// The watermark a follower node has acked to its primary (0 for
    /// primaries).
    pub fn acked_ops(&self) -> u64 {
        self.follower.as_ref().map_or(0, ReplFollower::acked)
    }

    /// Why a follower's replication halted, if it did.
    pub fn repl_halted(&self) -> Option<String> {
        self.follower.as_ref().and_then(ReplFollower::halted)
    }

    /// Promotes a follower node to primary: stops tailing, flips the
    /// service writable, and starts shipping this node's own journal on
    /// a fresh replication port. No-op (returning `false`) on a node
    /// that is already primary.
    ///
    /// # Errors
    /// Socket bind failures for the new replication listener.
    pub fn promote(&mut self) -> std::io::Result<bool> {
        let Some(follower) = self.follower.take() else {
            return Ok(false);
        };
        follower.shutdown();
        self.service.promote();
        self.fleet_metrics.promotion();
        let source = ReplSource::new(Arc::clone(&self.repl_metrics));
        self.listener = Some(ReplListener::start(
            self.kdb.clone(),
            source,
            "127.0.0.1:0",
        )?);
        Ok(true)
    }

    /// The node's full Prometheus exposition: the service + net
    /// families followed by the `ada_repl_*` and `ada_fleet_*`
    /// families, in that order.
    pub fn exposition(&self) -> String {
        let mut out = self.server.snapshot_prometheus();
        out.push_str(&self.repl_metrics.snapshot().to_prometheus());
        out.push_str(&self.fleet_metrics.snapshot().to_prometheus());
        out
    }

    /// Stops everything (replication endpoint, wire front-end, then the
    /// service) and returns the net front-end's final counters.
    pub fn shutdown(self) -> NetMetricsSnapshot {
        if let Some(listener) = self.listener {
            listener.shutdown();
        }
        if let Some(follower) = self.follower {
            follower.shutdown();
        }
        let net = self.server.shutdown();
        if let Ok(service) = Arc::try_unwrap(self.service) {
            service.shutdown();
        }
        net
    }
}
