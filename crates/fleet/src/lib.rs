//! # ada-fleet
//!
//! Replicated fleet for ADA-HEALTH: journal shipping, warm-standby
//! failover, and consistent-hash session routing.
//!
//! The paper's service analyses one hospital's data on one box. A
//! production deployment cannot afford that box being a single point of
//! failure, so this crate turns the single-node service into a small
//! replicated fleet built directly on the K-DB v2 journal:
//!
//! * [`stream`] — [`ReplStream`], the follower's sticky frame decoder:
//!   shipped journal bytes in, CRC-verified [`ada_kdb::journal::Op`]s
//!   out. Sequence gaps and corruption are classified with absolute
//!   byte offsets and are *sticky* — nothing past a fault is ever
//!   applied until a re-bootstrap resets the stream.
//! * [`wire`] — [`ReplMsg`], the replication message codec (eight
//!   messages: `Hello`, `Snapshot`, `CatchUp`, `Frame`, `Durable`,
//!   `Ack`, `Reset`, `Reject`). Payloads ride inside ADAN1 frames;
//!   journal frames ship *verbatim*, so the bytes the follower verifies
//!   are the bytes the primary fsynced. `Hello`/`Snapshot` carry a
//!   lineage epoch that tells re-bootstrap (compaction restarted the
//!   sequence space → full authoritative image) apart from catch-up
//!   (same lineage → just the missed frame suffix).
//! * [`source`] — [`ReplSource`], the primary's journal tap: appends,
//!   fsync watermarks, and compactions become an ordered, bounded
//!   message queue. Overflow collapses to a re-bootstrap marker and is
//!   *sticky*: frames keep being dropped until the shipper serves the
//!   follower's re-`Hello`, so a half-recovered follower can never be
//!   fed a stream with a hole in it.
//! * [`engine`] — [`ReplicaEngine`], the transport-free follower core:
//!   install a journal image **wholesale** (a snapshot is
//!   authoritative — safe even when compaction shrank the journal),
//!   apply live frames through the replica's own shard + group-commit
//!   machinery, ack at the local fsync watermark. `fleet_torture`
//!   drives this directly.
//! * [`ship`] — [`ReplListener`] / [`ReplFollower`], the TCP endpoints
//!   that move the same messages over real sockets with reconnect,
//!   re-bootstrap, suffix catch-up, and visible rejection of surplus
//!   followers.
//! * [`router`] — [`Router`], consistent-hash session placement with
//!   `Busy.retry_after` load feedback, health probes, and deterministic
//!   primary failover.
//! * [`node`] — [`FleetNode`], one deployable member: analysis service,
//!   ADAN1 front-end, and replication role bundled behind a single
//!   Prometheus exposition.
//!
//! The invariant the whole crate defends: **a promoted follower is an
//! exact, acked prefix of the failed primary** — same ops, same
//! document ids, byte-identical journal, equal state fingerprint — and
//! a corrupt or gapped stream is always detected and never applied.

#![warn(missing_docs)]

pub mod engine;
pub mod node;
pub mod router;
pub mod ship;
pub mod source;
pub mod stream;
pub mod wire;

pub use engine::{ReplError, ReplicaEngine};
pub use node::FleetNode;
pub use router::{Role, Router};
pub use ship::{ReplFollower, ReplListener};
pub use source::ReplSource;
pub use stream::{ReplStream, StreamFault};
pub use wire::{ReplMsg, WireFault};
