//! Session routing across fleet members.
//!
//! A thin, deterministic router: sessions are placed on a consistent-
//! hash ring (FNV-1a over `member#vnode`, 64 virtual nodes per member),
//! writes always go to the primary, reads spread across healthy
//! members. `Busy.retry_after` responses feed back as per-member
//! deferrals, health probes mark members up or down, and when the
//! primary goes down the first healthy follower (in declaration order)
//! is promoted at whatever watermark it acked — the router only decides
//! *who*; making the service writable is [`ada_service::AnalysisService::promote`]'s
//! job on that node.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ada_obs::FleetMetrics;
use parking_lot::Mutex;

/// A member's replication role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts writes; sources the replication stream.
    Primary,
    /// Read-only warm standby tailing the primary.
    Follower,
}

#[derive(Debug)]
struct Member {
    name: String,
    role: Role,
    healthy: bool,
    /// Load feedback: skip this member for placements until then.
    deferred_until: Option<Instant>,
}

/// Consistent-hash session router with health and load feedback.
#[derive(Debug)]
pub struct Router {
    members: Mutex<Vec<Member>>,
    /// `(point, member index)` ring, sorted by point.
    ring: Vec<(u64, usize)>,
    metrics: Arc<FleetMetrics>,
}

const VNODES: usize = 64;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Ring placement hash. Raw FNV-1a clusters badly on short, similar
/// strings (`alpha#0` vs `alpha#1` differ only in the low bytes), so the
/// digest goes through the SplitMix64 finalizer for avalanche before it
/// becomes a ring point.
fn point(bytes: &[u8]) -> u64 {
    let mut z = fnv1a(bytes);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Router {
    /// Builds the ring over `(name, role)` members. Exactly one primary
    /// is expected; everything starts healthy.
    pub fn new(members: Vec<(String, Role)>, metrics: Arc<FleetMetrics>) -> Self {
        let mut ring = Vec::with_capacity(members.len() * VNODES);
        for (i, (name, _)) in members.iter().enumerate() {
            for v in 0..VNODES {
                ring.push((point(format!("{name}#{v}").as_bytes()), i));
            }
        }
        ring.sort_unstable();
        metrics.set_members(members.len());
        Self {
            members: Mutex::new(
                members
                    .into_iter()
                    .map(|(name, role)| Member {
                        name,
                        role,
                        healthy: true,
                        deferred_until: None,
                    })
                    .collect(),
            ),
            ring,
            metrics,
        }
    }

    /// The metrics this router publishes into.
    pub fn metrics(&self) -> Arc<FleetMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The current primary's name, if one is healthy.
    pub fn primary(&self) -> Option<String> {
        self.members
            .lock()
            .iter()
            .find(|m| m.role == Role::Primary && m.healthy)
            .map(|m| m.name.clone())
    }

    /// Places a write (a session submission): always the healthy
    /// primary, deferred or not — backpressure on the only writable
    /// node is the client retry layer's problem, not a reason to
    /// misroute a write to a replica.
    pub fn route_write(&self) -> Option<String> {
        let primary = self.primary();
        if primary.is_some() {
            self.metrics.routed_primary();
        }
        primary
    }

    /// Places a read for `session`: the ring owner if healthy and not
    /// deferred, else walking clockwise; followers and the primary are
    /// both eligible (snapshot reads are exactly what the standby is
    /// warm for).
    pub fn route_read(&self, session: &str) -> Option<String> {
        let members = self.members.lock();
        if self.ring.is_empty() {
            return None;
        }
        let point = point(session.as_bytes());
        let start = self.ring.partition_point(|(p, _)| *p < point) % self.ring.len();
        let now = Instant::now();
        // Walk the ring once, skipping unhealthy/deferred members.
        let mut seen = 0usize;
        let mut idx = start;
        while seen < self.ring.len() {
            let (_, mi) = self.ring[idx];
            let m = &members[mi];
            let deferred = m.deferred_until.is_some_and(|until| now < until);
            if m.healthy && !deferred {
                match m.role {
                    Role::Primary => self.metrics.routed_primary(),
                    Role::Follower => self.metrics.routed_follower(),
                }
                return Some(m.name.clone());
            }
            idx = (idx + 1) % self.ring.len();
            seen += 1;
        }
        None
    }

    /// Records `Busy.retry_after` load feedback: `member` is skipped
    /// for read placements until the hint elapses.
    pub fn note_busy(&self, member: &str, retry_after: Duration) {
        let mut members = self.members.lock();
        if let Some(m) = members.iter_mut().find(|m| m.name == member) {
            m.deferred_until = Some(Instant::now() + retry_after);
            self.metrics.busy_deferral();
        }
    }

    /// Records a health probe result. Returns the name of the follower
    /// promoted to primary if this probe took the primary down —
    /// the caller must then call `promote()` on that member's service
    /// and rewire replication.
    pub fn report_health(&self, member: &str, healthy: bool) -> Option<String> {
        let mut members = self.members.lock();
        self.metrics.health_check();
        let i = members.iter().position(|m| m.name == member)?;
        if healthy {
            members[i].healthy = true;
            return None;
        }
        self.metrics.health_failure();
        let was_primary = members[i].role == Role::Primary && members[i].healthy;
        members[i].healthy = false;
        if !was_primary {
            return None;
        }
        // Failover: first healthy follower (declaration order) takes
        // over. Deterministic, so every router instance picks the same
        // successor.
        let successor = members
            .iter()
            .position(|m| m.role == Role::Follower && m.healthy)?;
        members[successor].role = Role::Primary;
        self.metrics.promotion();
        Some(members[successor].name.clone())
    }

    /// `(name, role, healthy)` rows for diagnostics.
    pub fn members(&self) -> Vec<(String, Role, bool)> {
        self.members
            .lock()
            .iter()
            .map(|m| (m.name.clone(), m.role, m.healthy))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_router() -> Router {
        Router::new(
            vec![
                ("alpha".into(), Role::Primary),
                ("beta".into(), Role::Follower),
            ],
            Arc::new(FleetMetrics::default()),
        )
    }

    #[test]
    fn writes_go_to_the_primary_reads_spread_and_stick() {
        let router = two_node_router();
        assert_eq!(router.route_write().as_deref(), Some("alpha"));
        // Reads are deterministic per session and cover both members
        // across enough distinct sessions.
        let mut hit_alpha = false;
        let mut hit_beta = false;
        for i in 0..64 {
            let session = format!("session-{i}");
            let first = router.route_read(&session).unwrap();
            assert_eq!(router.route_read(&session).unwrap(), first, "not sticky");
            match first.as_str() {
                "alpha" => hit_alpha = true,
                "beta" => hit_beta = true,
                other => panic!("unknown member {other}"),
            }
        }
        assert!(hit_alpha && hit_beta, "ring failed to spread reads");
    }

    #[test]
    fn busy_feedback_defers_then_expires() {
        let router = two_node_router();
        // Find a session owned by beta, defer beta, expect rerouting.
        let session = (0..256)
            .map(|i| format!("s{i}"))
            .find(|s| router.route_read(s).as_deref() == Some("beta"))
            .expect("some session routes to beta");
        router.note_busy("beta", Duration::from_millis(40));
        assert_eq!(router.route_read(&session).as_deref(), Some("alpha"));
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(router.route_read(&session).as_deref(), Some("beta"));
        assert_eq!(router.metrics().snapshot().busy_deferrals, 1);
    }

    #[test]
    fn primary_death_promotes_the_follower() {
        let router = two_node_router();
        let promoted = router.report_health("alpha", false);
        assert_eq!(promoted.as_deref(), Some("beta"));
        assert_eq!(router.route_write().as_deref(), Some("beta"));
        // Reads never land on the dead member.
        for i in 0..32 {
            assert_eq!(router.route_read(&format!("s{i}")).as_deref(), Some("beta"));
        }
        // A second failure report changes nothing (already down).
        assert_eq!(router.report_health("alpha", false), None);
        let snap = router.metrics().snapshot();
        assert_eq!(snap.promotions, 1);
        assert_eq!(snap.health_failures, 2);
        // With every member down, routing refuses rather than misroutes.
        router.report_health("beta", false);
        assert_eq!(router.route_write(), None);
        assert_eq!(router.route_read("s0"), None);
    }
}
