//! Incremental, verified decoding of a replicated journal-frame stream.
//!
//! The primary ships its v2 journal frames (`R<len>:<seq>:<crc32>:`)
//! verbatim; the network chunks them arbitrarily. [`ReplStream`] buffers
//! those chunks and yields fully verified [`Op`]s one at a time, with
//! the journal's own discipline:
//!
//! * a frame that ends mid-bytes is **torn** — wait for more input;
//! * a frame carrying a sequence number *above* the expected one is a
//!   **gap** (a dropped or reordered frame) — fatal, never applied;
//! * a frame carrying a sequence number *below* the expected one is a
//!   **duplicate** (the bootstrap snapshot and the live tap can overlap
//!   by a few frames) — verified, then skipped;
//! * anything failing the length/CRC/payload checks is **corrupt** —
//!   fatal, never applied.
//!
//! Faults are sticky: once a stream has gapped or corrupted, every
//! subsequent [`ReplStream::next_op`] returns the same fault. The only
//! way forward is [`ReplStream::reset`] after a fresh bootstrap — the
//! same rule the wire's `FrameDecoder` applies to transport framing.

use ada_kdb::journal::{decode_stream_frame, FrameStep, Op};

/// Why a replicated stream can never be applied further. Carries the
/// absolute byte offset (bytes consumed since the stream began) of the
/// offending frame, for operator forensics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamFault {
    /// A verified frame with the wrong (higher) sequence number: at
    /// least one frame was dropped or reordered in between.
    Gap {
        /// Sequence number the frame carries.
        stored: u64,
        /// Sequence number the stream expected.
        expected: u64,
        /// Byte offset of the frame within the shipped stream.
        offset: u64,
    },
    /// A frame that fails its length, CRC, or payload checks.
    Corrupt {
        /// What was wrong.
        reason: String,
        /// Byte offset of the frame within the shipped stream.
        offset: u64,
    },
}

impl std::fmt::Display for StreamFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamFault::Gap {
                stored,
                expected,
                offset,
            } => write!(
                f,
                "replication gap at offset {offset}: frame seq {stored}, expected {expected}"
            ),
            StreamFault::Corrupt { reason, offset } => {
                write!(f, "replication corruption at offset {offset}: {reason}")
            }
        }
    }
}

/// Sticky incremental decoder for a shipped journal-frame stream.
#[derive(Debug, Default)]
pub struct ReplStream {
    buf: Vec<u8>,
    pos: usize,
    /// Bytes already compacted out of `buf` — `drained + pos` is the
    /// absolute stream offset of the next undecoded byte.
    drained: u64,
    expect_seq: u64,
    fault: Option<StreamFault>,
}

impl ReplStream {
    /// An empty stream expecting sequence number 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty stream expecting sequence number `seq` (a follower that
    /// bootstrapped `seq` ops from a snapshot).
    pub fn starting_at(seq: u64) -> Self {
        Self {
            expect_seq: seq,
            ..Self::default()
        }
    }

    /// Buffers more shipped bytes. Feeding a faulted stream is allowed
    /// (the transport does not know yet) but changes nothing.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.fault.is_none() {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// The next sequence number this stream will accept.
    pub fn expect_seq(&self) -> u64 {
        self.expect_seq
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The sticky fault, if the stream has one.
    pub fn fault(&self) -> Option<&StreamFault> {
        self.fault.as_ref()
    }

    /// Decodes the next fully verified, in-sequence op, skipping
    /// verified duplicates. `Ok(None)` means the buffer holds no
    /// complete frame — feed more bytes.
    ///
    /// # Errors
    /// The stream's [`StreamFault`], sticky from the first gap or
    /// corruption onward.
    pub fn next_op(&mut self) -> Result<Option<Op>, StreamFault> {
        loop {
            if let Some(fault) = &self.fault {
                return Err(fault.clone());
            }
            let offset = self.drained + self.pos as u64;
            match decode_stream_frame(&self.buf, self.pos, self.expect_seq) {
                FrameStep::Op { op, end } => {
                    self.pos = end;
                    self.expect_seq += 1;
                    self.compact();
                    return Ok(Some(op));
                }
                FrameStep::NeedMore => return Ok(None),
                FrameStep::Gap { stored, expected } if stored < expected => {
                    // A verified duplicate of an already-applied frame
                    // (snapshot/tap overlap): skip it. Re-decode with
                    // the frame's own seq so the CRC check still runs.
                    match decode_stream_frame(&self.buf, self.pos, stored) {
                        FrameStep::Op { end, .. } => {
                            self.pos = end;
                            self.compact();
                        }
                        FrameStep::NeedMore => return Ok(None),
                        FrameStep::Gap { .. } => unreachable!("seq matched"),
                        FrameStep::Corrupt { reason } => {
                            self.fault = Some(StreamFault::Corrupt { reason, offset });
                        }
                    }
                }
                FrameStep::Gap { stored, expected } => {
                    self.fault = Some(StreamFault::Gap {
                        stored,
                        expected,
                        offset,
                    });
                }
                FrameStep::Corrupt { reason } => {
                    self.fault = Some(StreamFault::Corrupt { reason, offset });
                }
            }
        }
    }

    /// Clears buffer, fault, and position after a fresh bootstrap of
    /// `seq` ops: the stream starts over expecting frame `seq`.
    pub fn reset(&mut self, seq: u64) {
        self.buf.clear();
        self.pos = 0;
        self.drained = 0;
        self.expect_seq = seq;
        self.fault = None;
    }

    /// Drops consumed bytes once they dominate the buffer, keeping the
    /// absolute-offset bookkeeping in `drained`.
    fn compact(&mut self) {
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.drained += self.pos as u64;
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(seq: u64, op: &Op) -> Vec<u8> {
        let mut payload = String::new();
        op.encode_into(&mut payload);
        let body = payload.as_bytes();
        let mut out = format!(
            "R{}:{}:{:08x}:",
            body.len(),
            seq,
            ada_kdb::journal::crc32(body)
        )
        .into_bytes();
        out.extend_from_slice(body);
        out
    }

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::CreateCollection {
                name: "exams".into(),
            },
            Op::Insert {
                name: "exams".into(),
                id: 0,
                doc: ada_kdb::Document::new().with("patient", 7i64),
            },
            Op::Delete {
                name: "exams".into(),
                id: 0,
            },
        ]
    }

    #[test]
    fn chunked_stream_yields_every_op_in_order() {
        let ops = sample_ops();
        let mut bytes = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            bytes.extend_from_slice(&frame(i as u64, op));
        }
        // Feed one byte at a time: torn mid-frame at every step.
        let mut stream = ReplStream::new();
        let mut got = Vec::new();
        for b in &bytes {
            stream.push(&[*b]);
            while let Some(op) = stream.next_op().unwrap() {
                got.push(op);
            }
        }
        assert_eq!(got, ops);
        assert_eq!(stream.expect_seq(), 3);
        assert_eq!(stream.buffered(), 0);
    }

    #[test]
    fn dropped_frame_is_a_sticky_gap_with_offset() {
        let ops = sample_ops();
        let mut stream = ReplStream::new();
        let first = frame(0, &ops[0]);
        stream.push(&first);
        stream.push(&frame(2, &ops[2])); // frame 1 dropped
        assert_eq!(stream.next_op().unwrap(), Some(ops[0].clone()));
        let fault = stream.next_op().unwrap_err();
        assert_eq!(
            fault,
            StreamFault::Gap {
                stored: 2,
                expected: 1,
                offset: first.len() as u64,
            }
        );
        // Sticky: pushing the missing frame afterwards cannot unfault.
        stream.push(&frame(1, &ops[1]));
        assert_eq!(stream.next_op().unwrap_err(), fault);
    }

    #[test]
    fn duplicate_frames_are_verified_then_skipped() {
        let ops = sample_ops();
        let mut stream = ReplStream::new();
        stream.push(&frame(0, &ops[0]));
        stream.push(&frame(0, &ops[0])); // tap/snapshot overlap
        stream.push(&frame(1, &ops[1]));
        assert_eq!(stream.next_op().unwrap(), Some(ops[0].clone()));
        assert_eq!(stream.next_op().unwrap(), Some(ops[1].clone()));
        assert_eq!(stream.next_op().unwrap(), None);
    }

    #[test]
    fn corrupt_duplicate_still_faults() {
        let ops = sample_ops();
        let mut stream = ReplStream::starting_at(1);
        let mut stale = frame(0, &ops[0]);
        let n = stale.len();
        stale[n - 1] ^= 0x01; // flip a payload bit in the duplicate
        stream.push(&stale);
        match stream.next_op().unwrap_err() {
            StreamFault::Corrupt { offset, .. } => assert_eq!(offset, 0),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn bit_flip_is_sticky_corruption_with_offset() {
        let ops = sample_ops();
        let mut stream = ReplStream::new();
        let good = frame(0, &ops[0]);
        let mut bad = frame(1, &ops[1]);
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        stream.push(&good);
        stream.push(&bad);
        assert_eq!(stream.next_op().unwrap(), Some(ops[0].clone()));
        match stream.next_op().unwrap_err() {
            StreamFault::Corrupt { offset, .. } => assert_eq!(offset, good.len() as u64),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // reset() after a re-bootstrap clears the fault.
        stream.reset(5);
        assert_eq!(stream.expect_seq(), 5);
        assert_eq!(stream.next_op().unwrap(), None);
    }
}
