//! The primary's half of journal replication.
//!
//! [`ReplSource`] implements [`JournalTap`]: it observes every v2
//! journal append, fsync, and compaction on the primary's
//! [`SharedKdb`](ada_kdb::SharedKdb) and turns them into an ordered
//! queue of [`ReplMsg`]s. Tap callbacks run under the journal mutex, so
//! they only copy bytes into the queue and ring a condvar — shipping
//! happens on whoever drains the queue (the in-memory link in
//! `fleet_torture`, a TCP shipper thread in [`crate::ship`]).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use std::sync::{Condvar, Mutex, PoisonError};

use ada_kdb::journal::JournalTap;
use ada_obs::ReplMetrics;

use crate::wire::ReplMsg;

/// Bound on queued-but-unshipped messages: a dead or partitioned
/// follower must not make the primary accumulate its whole write load
/// in memory. Overflow drops the queue and records a `Reset` sentinel —
/// the follower re-bootstraps when the link heals, exactly as after a
/// compaction.
const MAX_QUEUED: usize = 65_536;

#[derive(Debug, Default)]
struct SourceState {
    queue: VecDeque<ReplMsg>,
    /// Set when the queue overflowed: everything up to here was
    /// replaced by a single `Reset`. **Sticky** — later frames keep
    /// being dropped (the stream is broken anyway) until the shipper
    /// serves the follower's re-`Hello` and calls
    /// [`ReplSource::end_overflow`] *before* taking the bootstrap
    /// image. Clearing any earlier (e.g. on drain) would let frames
    /// appended between the `Reset` shipping and the re-bootstrap reach
    /// a follower whose stream position they cannot extend — a
    /// guaranteed sticky gap.
    overflowed: bool,
    closed: bool,
}

/// A queue of replication messages fed by the primary's journal tap.
#[derive(Debug)]
pub struct ReplSource {
    state: Mutex<SourceState>,
    bell: Condvar,
    metrics: Arc<ReplMetrics>,
    /// Queue bound (tests shrink it to force overflow cheaply).
    capacity: usize,
    /// Lineage epoch: replaced on every journal rewrite (compaction),
    /// under the journal mutex. An image taken at epoch E plus the
    /// frame suffix past its op count reconstructs the primary journal
    /// iff the primary is still at epoch E.
    epoch: AtomicU64,
}

/// Every lineage epoch — a fresh source, each compaction — takes the
/// next value of this process-wide counter, so no two lineages in one
/// process ever share an epoch. A follower's remembered epoch can
/// therefore only match the lineage it actually bootstrapped from —
/// never a different source or post-compaction journal that happens to
/// have counted to the same number. (Followers in *another* process
/// restart with `applied = 0` and re-bootstrap regardless.)
static EPOCH_COUNTER: AtomicU64 = AtomicU64::new(1);

fn next_epoch() -> u64 {
    EPOCH_COUNTER.fetch_add(1, Ordering::SeqCst)
}

impl ReplSource {
    /// An empty source publishing into `metrics`.
    pub fn new(metrics: Arc<ReplMetrics>) -> Arc<Self> {
        Self::with_capacity(metrics, MAX_QUEUED)
    }

    /// Like [`ReplSource::new`] with an explicit queue bound. Tests use
    /// tiny bounds to exercise the overflow → `Reset` → re-bootstrap
    /// path without queueing tens of thousands of frames.
    pub fn with_capacity(metrics: Arc<ReplMetrics>, capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(SourceState::default()),
            bell: Condvar::new(),
            metrics,
            capacity: capacity.max(1),
            epoch: AtomicU64::new(next_epoch()),
        })
    }

    /// The current lineage epoch (process-unique; replaced at every
    /// compaction).
    pub fn lineage_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Whether the queue is in the overflowed state (frames are being
    /// dropped pending a re-bootstrap).
    pub fn overflowed(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .overflowed
    }

    /// Leaves the overflowed state. The shipper calls this while
    /// serving a follower `Hello`, **before** taking the bootstrap
    /// image: a frame appended after this call is either queued (and
    /// possibly also in the image — a verified duplicate the follower
    /// skips) but never dropped-and-missing.
    pub fn end_overflow(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .overflowed = false;
    }

    /// The metrics this source publishes into.
    pub fn metrics(&self) -> Arc<ReplMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Records the follower's acked watermark (gauge only; the queue
    /// is not trimmed by acks — frames leave it when shipped).
    pub fn observe_ack(&self, seq: u64) {
        self.metrics.set_follower_acked(seq);
    }

    /// Drains every queued message without blocking. Does **not**
    /// clear an overflow — see [`ReplSource::end_overflow`].
    pub fn drain(&self) -> Vec<ReplMsg> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.queue.drain(..).collect()
    }

    /// Blocks up to `timeout` for the next message. `None` on timeout
    /// or once the source is closed and drained.
    pub fn next_msg(&self, timeout: Duration) -> Option<ReplMsg> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(msg) = state.queue.pop_front() {
                return Some(msg);
            }
            if state.closed {
                return None;
            }
            let (guard, wait) = self
                .bell
                .wait_timeout(state, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
            if wait.timed_out() {
                return None;
            }
        }
    }

    /// Marks the source closed: pending messages still drain, then
    /// [`ReplSource::next_msg`] returns `None` forever.
    pub fn close(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.bell.notify_all();
    }

    /// Messages currently queued (diagnostics).
    pub fn queued(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queue
            .len()
    }

    fn push(&self, msg: ReplMsg) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.closed {
            return;
        }
        if state.queue.len() >= self.capacity {
            // Replace the backlog with one re-bootstrap marker; the
            // snapshot the follower fetches will contain everything the
            // dropped frames carried.
            state.queue.clear();
            state.queue.push_back(ReplMsg::Reset { ops: 0 });
            state.overflowed = true;
        } else if !(state.overflowed && matches!(msg, ReplMsg::Frame { .. })) {
            // While overflowed, further frames are useless (the reset
            // already invalidated the stream); watermarks still pass.
            state.queue.push_back(msg);
        }
        drop(state);
        self.bell.notify_all();
    }
}

impl JournalTap for ReplSource {
    fn frame_appended(&self, _seq: u64, frame: &[u8]) {
        self.metrics.frame_shipped(frame.len());
        self.push(ReplMsg::Frame {
            bytes: frame.to_vec(),
        });
    }

    fn synced(&self, durable_seq: u64) {
        self.metrics.set_source_durable(durable_seq);
        self.push(ReplMsg::Durable { seq: durable_seq });
    }

    fn rewritten(&self, ops: u64) {
        // Runs under the journal mutex, like every tap callback: the
        // epoch replacement and the journal's new contents are observed
        // atomically by anyone who reads both under that mutex.
        self.epoch.store(next_epoch(), Ordering::SeqCst);
        self.push(ReplMsg::Reset { ops });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tap_events_queue_in_order_and_drain() {
        let source = ReplSource::new(Arc::new(ReplMetrics::default()));
        source.frame_appended(0, b"R1:0:xxxxxxxx:a");
        source.synced(1);
        source.frame_appended(1, b"R1:1:xxxxxxxx:b");
        let msgs = source.drain();
        assert_eq!(msgs.len(), 3);
        assert!(matches!(&msgs[0], ReplMsg::Frame { bytes } if bytes.ends_with(b":a")));
        assert_eq!(msgs[1], ReplMsg::Durable { seq: 1 });
        assert!(matches!(&msgs[2], ReplMsg::Frame { bytes } if bytes.ends_with(b":b")));
        assert!(source.drain().is_empty());
        let snap = source.metrics().snapshot();
        assert_eq!(snap.frames_shipped, 2);
        assert_eq!(snap.source_durable, 1);
    }

    #[test]
    fn overflow_is_sticky_until_explicitly_ended() {
        let source = ReplSource::with_capacity(Arc::new(ReplMetrics::default()), 2);
        source.frame_appended(0, b"R1:0:xxxxxxxx:a");
        source.frame_appended(1, b"R1:1:xxxxxxxx:b");
        // Third frame overflows: backlog replaced by one Reset.
        source.frame_appended(2, b"R1:2:xxxxxxxx:c");
        assert!(source.overflowed());
        assert_eq!(source.drain(), vec![ReplMsg::Reset { ops: 0 }]);
        // Draining does NOT clear the overflow: frames appended before
        // the follower re-bootstraps must keep being dropped, or they
        // would gap its stream.
        assert!(source.overflowed());
        source.frame_appended(3, b"R1:3:xxxxxxxx:d");
        assert!(source.drain().is_empty());
        // Watermarks still pass while overflowed.
        source.synced(4);
        assert_eq!(source.drain(), vec![ReplMsg::Durable { seq: 4 }]);
        // Only the shipper's explicit end_overflow (at Hello-serve
        // time, before imaging) resumes frame forwarding.
        source.end_overflow();
        assert!(!source.overflowed());
        source.frame_appended(4, b"R1:4:xxxxxxxx:e");
        assert_eq!(source.drain().len(), 1);
    }

    #[test]
    fn compaction_replaces_the_lineage_epoch() {
        let source = ReplSource::new(Arc::new(ReplMetrics::default()));
        let initial = source.lineage_epoch();
        source.rewritten(5);
        let compacted = source.lineage_epoch();
        assert_ne!(compacted, initial);
        assert_eq!(source.drain(), vec![ReplMsg::Reset { ops: 5 }]);
        // Epochs are process-unique: another source never shares one,
        // so a follower's remembered epoch can only validate against
        // the lineage it actually came from.
        let other = ReplSource::new(Arc::new(ReplMetrics::default()));
        assert_ne!(other.lineage_epoch(), initial);
        assert_ne!(other.lineage_epoch(), compacted);
        // Queue overflow does NOT change the epoch: the journal itself
        // is unchanged, only the shipping queue lost frames.
        let small = ReplSource::with_capacity(Arc::new(ReplMetrics::default()), 1);
        let small_epoch = small.lineage_epoch();
        small.frame_appended(0, b"R1:0:xxxxxxxx:a");
        small.frame_appended(1, b"R1:1:xxxxxxxx:b");
        assert!(small.overflowed());
        assert_eq!(small.lineage_epoch(), small_epoch);
    }

    #[test]
    fn close_wakes_and_finishes_the_consumer() {
        let source = ReplSource::new(Arc::new(ReplMetrics::default()));
        source.frame_appended(0, b"R1:0:xxxxxxxx:a");
        source.close();
        assert!(source.next_msg(Duration::from_millis(10)).is_some());
        assert!(source.next_msg(Duration::from_millis(10)).is_none());
        // Pushes after close are dropped.
        source.frame_appended(1, b"R1:1:xxxxxxxx:b");
        assert_eq!(source.queued(), 0);
    }
}
