//! The primary's half of journal replication.
//!
//! [`ReplSource`] implements [`JournalTap`]: it observes every v2
//! journal append, fsync, and compaction on the primary's
//! [`SharedKdb`](ada_kdb::SharedKdb) and turns them into an ordered
//! queue of [`ReplMsg`]s. Tap callbacks run under the journal mutex, so
//! they only copy bytes into the queue and ring a condvar — shipping
//! happens on whoever drains the queue (the in-memory link in
//! `fleet_torture`, a TCP shipper thread in [`crate::ship`]).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use std::sync::{Condvar, Mutex, PoisonError};

use ada_kdb::journal::JournalTap;
use ada_obs::ReplMetrics;

use crate::wire::ReplMsg;

/// Bound on queued-but-unshipped messages: a dead or partitioned
/// follower must not make the primary accumulate its whole write load
/// in memory. Overflow drops the queue and records a `Reset` sentinel —
/// the follower re-bootstraps when the link heals, exactly as after a
/// compaction.
const MAX_QUEUED: usize = 65_536;

#[derive(Debug, Default)]
struct SourceState {
    queue: VecDeque<ReplMsg>,
    /// Set when the queue overflowed: everything up to here was
    /// replaced by a single `Reset`.
    overflowed: bool,
    closed: bool,
}

/// A queue of replication messages fed by the primary's journal tap.
#[derive(Debug)]
pub struct ReplSource {
    state: Mutex<SourceState>,
    bell: Condvar,
    metrics: Arc<ReplMetrics>,
}

impl ReplSource {
    /// An empty source publishing into `metrics`.
    pub fn new(metrics: Arc<ReplMetrics>) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(SourceState::default()),
            bell: Condvar::new(),
            metrics,
        })
    }

    /// The metrics this source publishes into.
    pub fn metrics(&self) -> Arc<ReplMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Records the follower's acked watermark (gauge only; the queue
    /// is not trimmed by acks — frames leave it when shipped).
    pub fn observe_ack(&self, seq: u64) {
        self.metrics.set_follower_acked(seq);
    }

    /// Drains every queued message without blocking.
    pub fn drain(&self) -> Vec<ReplMsg> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.overflowed = false;
        state.queue.drain(..).collect()
    }

    /// Blocks up to `timeout` for the next message. `None` on timeout
    /// or once the source is closed and drained.
    pub fn next_msg(&self, timeout: Duration) -> Option<ReplMsg> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(msg) = state.queue.pop_front() {
                if state.queue.is_empty() {
                    state.overflowed = false;
                }
                return Some(msg);
            }
            if state.closed {
                return None;
            }
            let (guard, wait) = self
                .bell
                .wait_timeout(state, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
            if wait.timed_out() {
                return None;
            }
        }
    }

    /// Marks the source closed: pending messages still drain, then
    /// [`ReplSource::next_msg`] returns `None` forever.
    pub fn close(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.bell.notify_all();
    }

    /// Messages currently queued (diagnostics).
    pub fn queued(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queue
            .len()
    }

    fn push(&self, msg: ReplMsg) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.closed {
            return;
        }
        if state.queue.len() >= MAX_QUEUED {
            // Replace the backlog with one re-bootstrap marker; the
            // snapshot the follower fetches will contain everything the
            // dropped frames carried.
            state.queue.clear();
            state.queue.push_back(ReplMsg::Reset { ops: 0 });
            state.overflowed = true;
        } else if !(state.overflowed && matches!(msg, ReplMsg::Frame { .. })) {
            // While overflowed, further frames are useless (the reset
            // already invalidated the stream); watermarks still pass.
            state.queue.push_back(msg);
        }
        drop(state);
        self.bell.notify_all();
    }
}

impl JournalTap for ReplSource {
    fn frame_appended(&self, _seq: u64, frame: &[u8]) {
        self.metrics.frame_shipped(frame.len());
        self.push(ReplMsg::Frame {
            bytes: frame.to_vec(),
        });
    }

    fn synced(&self, durable_seq: u64) {
        self.metrics.set_source_durable(durable_seq);
        self.push(ReplMsg::Durable { seq: durable_seq });
    }

    fn rewritten(&self, ops: u64) {
        self.push(ReplMsg::Reset { ops });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tap_events_queue_in_order_and_drain() {
        let source = ReplSource::new(Arc::new(ReplMetrics::default()));
        source.frame_appended(0, b"R1:0:xxxxxxxx:a");
        source.synced(1);
        source.frame_appended(1, b"R1:1:xxxxxxxx:b");
        let msgs = source.drain();
        assert_eq!(msgs.len(), 3);
        assert!(matches!(&msgs[0], ReplMsg::Frame { bytes } if bytes.ends_with(b":a")));
        assert_eq!(msgs[1], ReplMsg::Durable { seq: 1 });
        assert!(matches!(&msgs[2], ReplMsg::Frame { bytes } if bytes.ends_with(b":b")));
        assert!(source.drain().is_empty());
        let snap = source.metrics().snapshot();
        assert_eq!(snap.frames_shipped, 2);
        assert_eq!(snap.source_durable, 1);
    }

    #[test]
    fn close_wakes_and_finishes_the_consumer() {
        let source = ReplSource::new(Arc::new(ReplMetrics::default()));
        source.frame_appended(0, b"R1:0:xxxxxxxx:a");
        source.close();
        assert!(source.next_msg(Duration::from_millis(10)).is_some());
        assert!(source.next_msg(Duration::from_millis(10)).is_none());
        // Pushes after close are dropped.
        source.frame_appended(1, b"R1:1:xxxxxxxx:b");
        assert_eq!(source.queued(), 0);
    }
}
