//! TCP endpoints for the replication link.
//!
//! The link reuses the ADAN1 transport framing (magic handshake, then
//! `F<len>:<seq>:<crc32>:` frames), with [`ReplMsg`] payloads. The
//! follower connects and speaks first:
//!
//! ```text
//! follower → primary   Hello { have_ops, epoch }
//! primary  → follower  CatchUp { from, suffix }     (same epoch: the
//!                                                    frames past have_ops)
//!                      — or —
//!                      Snapshot { epoch, image }    (authoritative rebuild)
//! primary  → follower  Frame* / Durable* / Reset*   (as the tap emits)
//! follower → primary   Ack { seq }*                 (at fsync watermarks)
//! ```
//!
//! The primary answers a `Hello` whose `epoch` matches the journal's
//! current lineage (and whose `have_ops` prefix verifies against the
//! image) with a `CatchUp` carrying only the missed frame suffix —
//! reconnects after a link blip cost O(missed ops), not O(journal).
//! Anything else — first contact, a post-compaction epoch mismatch, a
//! prefix that does not verify — gets a full `Snapshot`, which the
//! follower installs **wholesale** (its previous state is discarded, so
//! a compacted image with a restarted sequence space is safe).
//!
//! Duplicate frames across the snapshot/tap boundary are verified and
//! skipped by the follower's [`ReplStream`](crate::stream::ReplStream);
//! a `Reset` (compaction or source-queue overflow) makes the follower
//! re-`Hello` and discard in-flight `Frame`/`Durable` traffic until the
//! answering `Snapshot`/`CatchUp` arrives. Either endpoint surviving
//! the other's death is the point: the primary keeps serving with the
//! tap queueing (bounded), the follower keeps serving reads at its last
//! applied watermark and reconnects with backoff. One follower is
//! served at a time; surplus connections are told so with a typed
//! [`ReplMsg::Reject`] instead of rotting in the accept backlog.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ada_kdb::journal::{decode_stream_frame, FrameStep, V2_MAGIC};
use ada_kdb::SharedKdb;
use ada_net::frame::{frame_bytes, Decoded, FrameDecoder, MAGIC};
use ada_obs::ReplMetrics;
use parking_lot::Mutex;

use crate::engine::ReplicaEngine;
use crate::source::ReplSource;
use crate::wire::ReplMsg;

/// How long shipper/applier loops block before re-checking shutdown.
const TICK: Duration = Duration::from_millis(25);

fn handshake_server(stream: &mut TcpStream) -> std::io::Result<()> {
    let mut got = [0u8; 6];
    stream.read_exact(&mut got)?;
    if got != MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "bad replication magic",
        ));
    }
    stream.write_all(MAGIC)
}

fn handshake_client(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(MAGIC)?;
    let mut got = [0u8; 6];
    stream.read_exact(&mut got)?;
    if got != MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "bad replication magic",
        ));
    }
    Ok(())
}

/// The primary's replication endpoint: accepts one follower at a time
/// and ships the source's queue over it.
pub struct ReplListener {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    source: Arc<ReplSource>,
}

impl ReplListener {
    /// Attaches `source` as `kdb`'s journal tap and starts listening on
    /// `addr` (use port 0 for ephemeral).
    ///
    /// # Errors
    /// Socket bind failures.
    pub fn start(
        kdb: SharedKdb,
        source: Arc<ReplSource>,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        // Tap first, image later (per connection): frames appended
        // between the two are shipped twice and skipped as duplicates,
        // never lost.
        kdb.set_journal_tap(Some(source.clone()));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            let source = Arc::clone(&source);
            std::thread::Builder::new()
                .name("ada-repl-ship".to_owned())
                .spawn(move || accept_loop(&listener, &kdb, &source, &stop))
                .expect("spawn repl shipper")
        };
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
            source,
        })
    }

    /// The bound replication address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and shipping, then joins the shipper thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        self.source.close();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ReplListener {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.source.close();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    kdb: &SharedKdb,
    source: &Arc<ReplSource>,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                // A silent connection must not wedge the primary's
                // shipper thread at handshake.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(1000)));
                if handshake_server(&mut stream).is_err() {
                    continue;
                }
                // Connection errors just end this follower's session;
                // the next accept starts a fresh Hello/Snapshot cycle.
                let _ = serve_follower(&mut stream, listener, kdb, source, stop);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(TICK);
            }
            Err(_) => return,
        }
    }
}

/// Tells every connection waiting in the accept backlog that this
/// primary already ships to a follower. Without this, a second
/// follower's `Hello` would sit unanswered forever — silently never
/// replicating and reporting nothing.
fn reject_surplus(listener: &TcpListener) {
    while let Ok((mut stream, _)) = listener.accept() {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        if handshake_server(&mut stream).is_ok() {
            let msg = ReplMsg::Reject {
                reason: "primary already ships to a follower".into(),
            };
            let _ = stream.write_all(&frame_bytes(&msg.encode(), 0));
        }
    }
}

/// Walks `image`'s frames and returns the byte offset just past the
/// first `have_ops` of them — the start of the suffix a same-epoch
/// follower is missing. `None` when the prefix does not verify (torn,
/// corrupt, fewer frames than claimed): the caller falls back to a
/// full snapshot.
fn suffix_at(image: &[u8], have_ops: u64) -> Option<usize> {
    if !image.starts_with(V2_MAGIC) {
        return None;
    }
    let mut pos = V2_MAGIC.len();
    for seq in 0..have_ops {
        match decode_stream_frame(image, pos, seq) {
            FrameStep::Op { end, .. } => pos = end,
            _ => return None,
        }
    }
    Some(pos)
}

/// Ships to one connected follower until error, stop, or disconnect.
fn serve_follower(
    stream: &mut TcpStream,
    listener: &TcpListener,
    kdb: &SharedKdb,
    source: &Arc<ReplSource>,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(TICK))?;
    let mut decoder = FrameDecoder::new();
    let mut write_seq = 0u64;
    let mut buf = [0u8; 16 * 1024];
    let send = |stream: &mut TcpStream, write_seq: &mut u64, msg: &ReplMsg| {
        let frame = frame_bytes(&msg.encode(), *write_seq);
        *write_seq += 1;
        stream.write_all(&frame)
    };
    // Nothing ships before the Hello/Snapshot exchange: a live frame
    // arriving ahead of the image would read as a gap on the other end.
    let mut greeted = false;
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        // Surplus followers get a visible Reject, not backlog limbo.
        reject_surplus(listener);
        // 1. Forward whatever the tap queued. Before the first Hello
        //    the queue is discarded — every discarded frame is already
        //    in the journal, so the image taken below covers it; frames
        //    that are both imaged and queued after that arrive as
        //    verified duplicates and are skipped by the follower.
        for msg in source.drain() {
            if greeted {
                send(stream, &mut write_seq, &msg)?;
            }
        }
        // 2. Poll the socket for follower messages.
        match stream.read(&mut buf) {
            Ok(0) => return Ok(()),
            Ok(n) => decoder.push(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
        loop {
            match decoder.next_frame() {
                Ok(Decoded::Frame(payload)) => match ReplMsg::decode(&payload) {
                    Ok(ReplMsg::Ack { seq }) => source.observe_ack(seq),
                    Ok(ReplMsg::Hello { have_ops, epoch }) => {
                        // Initial hello or a re-bootstrap request after
                        // Reset. Order matters:
                        //  a. leave the overflowed state BEFORE imaging
                        //     — a frame appended after this point is
                        //     queued (and at worst also in the image: a
                        //     verified duplicate), never dropped;
                        //  b. take an epoch-stable image — a compaction
                        //     racing the read would pair an old image
                        //     with a new epoch and mis-validate a later
                        //     catch-up.
                        source.end_overflow();
                        let (lineage, image) = loop {
                            let before = source.lineage_epoch();
                            let image = kdb.journal_image().map_err(|e| {
                                std::io::Error::other(format!("journal image: {e}"))
                            })?;
                            if source.lineage_epoch() == before {
                                break (before, image);
                            }
                        };
                        // Same lineage and a verifying prefix: ship only
                        // the missed suffix. Anything else: the full
                        // image, installed wholesale by the follower.
                        let suffix = (epoch == lineage && have_ops > 0)
                            .then(|| suffix_at(&image, have_ops))
                            .flatten();
                        match suffix {
                            Some(pos) => {
                                send(
                                    stream,
                                    &mut write_seq,
                                    &ReplMsg::CatchUp {
                                        from: have_ops,
                                        bytes: image[pos..].to_vec(),
                                    },
                                )?;
                            }
                            None => {
                                source.metrics().snapshot_shipped(image.len());
                                send(
                                    stream,
                                    &mut write_seq,
                                    &ReplMsg::Snapshot {
                                        epoch: lineage,
                                        image,
                                    },
                                )?;
                            }
                        }
                        // Then the current durable watermark so a
                        // quiescent primary's follower can still fsync
                        // and ack.
                        let durable = kdb.journal_durable_ops();
                        send(stream, &mut write_seq, &ReplMsg::Durable { seq: durable })?;
                        greeted = true;
                    }
                    Ok(_) | Err(_) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "unexpected follower message",
                        ));
                    }
                },
                Ok(Decoded::NeedMore) => break,
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        e.to_string(),
                    ));
                }
            }
        }
    }
}

/// The follower's replication endpoint: connects to a primary, tails
/// its journal into a local [`ReplicaEngine`], acks fsync watermarks.
pub struct ReplFollower {
    engine: Arc<Mutex<ReplicaEngine>>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    acked: Arc<AtomicU64>,
    halted: Arc<Mutex<Option<String>>>,
    rejected: Arc<Mutex<Option<String>>>,
}

impl ReplFollower {
    /// Starts tailing `primary` into `kdb` (expected empty).
    pub fn start(primary: SocketAddr, kdb: SharedKdb, metrics: Arc<ReplMetrics>) -> Self {
        let engine = Arc::new(Mutex::new(ReplicaEngine::new(kdb, metrics)));
        let stop = Arc::new(AtomicBool::new(false));
        let acked = Arc::new(AtomicU64::new(0));
        let halted: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        let rejected: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        let handle = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let acked = Arc::clone(&acked);
            let halted = Arc::clone(&halted);
            let rejected = Arc::clone(&rejected);
            std::thread::Builder::new()
                .name("ada-repl-tail".to_owned())
                .spawn(move || tail_loop(primary, &engine, &stop, &acked, &halted, &rejected))
                .expect("spawn repl tail")
        };
        Self {
            engine,
            stop,
            handle: Some(handle),
            acked,
            halted,
            rejected,
        }
    }

    /// The engine (for reads, watermarks, fingerprints, promotion).
    pub fn engine(&self) -> Arc<Mutex<ReplicaEngine>> {
        Arc::clone(&self.engine)
    }

    /// The last watermark acked to the primary.
    pub fn acked(&self) -> u64 {
        self.acked.load(Ordering::Acquire)
    }

    /// Why replication halted, if it did (gap/corruption/apply error).
    pub fn halted(&self) -> Option<String> {
        self.halted.lock().clone()
    }

    /// The primary's reason the last time it refused this follower
    /// (e.g. it already ships to another follower). Not fatal — the
    /// tail keeps retrying with backoff and attaches when a slot
    /// frees up.
    pub fn last_reject(&self) -> Option<String> {
        self.rejected.lock().clone()
    }

    /// Stops tailing and joins; the replica store stays as applied —
    /// ready for [`ada_service::AnalysisService::promote`].
    pub fn shutdown(mut self) -> Arc<Mutex<ReplicaEngine>> {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        Arc::clone(&self.engine)
    }
}

impl Drop for ReplFollower {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn tail_loop(
    primary: SocketAddr,
    engine: &Arc<Mutex<ReplicaEngine>>,
    stop: &Arc<AtomicBool>,
    acked: &Arc<AtomicU64>,
    halted: &Arc<Mutex<Option<String>>>,
    rejected: &Arc<Mutex<Option<String>>>,
) {
    let mut backoff = Duration::from_millis(10);
    while !stop.load(Ordering::Acquire) {
        match tail_once(primary, engine, stop, acked) {
            Ok(()) => return, // clean stop
            Err(TailEnd::Fatal(reason)) => {
                *halted.lock() = Some(reason);
                return;
            }
            Err(TailEnd::Rejected(reason)) => {
                // The primary refused us (likely serving another
                // follower). Visible but not fatal: keep retrying — a
                // slot may free up (old follower promoted or died).
                *rejected.lock() = Some(reason);
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(500));
            }
            Err(TailEnd::Disconnected) => {
                // Primary gone or link flaked: serve reads at the
                // current watermark, retry with capped backoff.
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(500));
            }
        }
    }
}

enum TailEnd {
    /// Connection-level failure — reconnect and re-Hello.
    Disconnected,
    /// The primary refused to serve this follower — back off, retry,
    /// surface the reason.
    Rejected(String),
    /// Replication-level failure (gap/corruption/apply) — halt; the
    /// operator (or torture harness) decides what is next.
    Fatal(String),
}

fn tail_once(
    primary: SocketAddr,
    engine: &Arc<Mutex<ReplicaEngine>>,
    stop: &Arc<AtomicBool>,
    acked: &Arc<AtomicU64>,
) -> Result<(), TailEnd> {
    let mut stream = TcpStream::connect_timeout(&primary, Duration::from_millis(250))
        .map_err(|_| TailEnd::Disconnected)?;
    handshake_client(&mut stream).map_err(|_| TailEnd::Disconnected)?;
    stream
        .set_read_timeout(Some(TICK))
        .map_err(|_| TailEnd::Disconnected)?;
    let mut decoder = FrameDecoder::new();
    let mut write_seq = 0u64;
    let send = |stream: &mut TcpStream, write_seq: &mut u64, msg: &ReplMsg| {
        let frame = frame_bytes(&msg.encode(), *write_seq);
        *write_seq += 1;
        stream.write_all(&frame).map_err(|_| TailEnd::Disconnected)
    };
    let (have, epoch) = {
        let mut eng = engine.lock();
        // The previous connection may have died mid-frame; its torn
        // tail must not prefix the bytes this connection ships.
        eng.resync();
        (eng.applied_ops(), eng.source_epoch())
    };
    send(
        &mut stream,
        &mut write_seq,
        &ReplMsg::Hello {
            have_ops: have,
            epoch,
        },
    )?;
    // Between a Hello and its Snapshot/CatchUp answer, any Frame or
    // Durable on the wire predates the primary processing the Hello —
    // after a Reset it belongs to a stream we can no longer extend.
    // Discard instead of feeding a guaranteed gap.
    let mut awaiting = true;
    let mut buf = [0u8; 16 * 1024];
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        match stream.read(&mut buf) {
            Ok(0) => return Err(TailEnd::Disconnected),
            Ok(n) => decoder.push(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return Err(TailEnd::Disconnected),
        }
        loop {
            match decoder.next_frame() {
                Ok(Decoded::Frame(payload)) => {
                    let msg =
                        ReplMsg::decode(&payload).map_err(|e| TailEnd::Fatal(e.to_string()))?;
                    match &msg {
                        ReplMsg::Reject { reason } => {
                            return Err(TailEnd::Rejected(reason.clone()));
                        }
                        ReplMsg::Reset { .. } => {
                            // Sequence space restarted (compaction) or
                            // the source queue overflowed: ask for a
                            // fresh bootstrap on this same connection
                            // and ignore stream traffic until it comes.
                            let (have, epoch) = {
                                let mut eng = engine.lock();
                                eng.resync();
                                (eng.applied_ops(), eng.source_epoch())
                            };
                            send(
                                &mut stream,
                                &mut write_seq,
                                &ReplMsg::Hello {
                                    have_ops: have,
                                    epoch,
                                },
                            )?;
                            awaiting = true;
                            continue;
                        }
                        ReplMsg::Snapshot { .. } | ReplMsg::CatchUp { .. } => {
                            engine
                                .lock()
                                .consume(&msg)
                                .map_err(|e| TailEnd::Fatal(e.to_string()))?;
                            awaiting = false;
                        }
                        ReplMsg::Frame { .. } | ReplMsg::Durable { .. } if awaiting => {
                            // Pre-bootstrap leftovers; the answer to our
                            // Hello supersedes them.
                        }
                        ReplMsg::Durable { .. } => {
                            let mut eng = engine.lock();
                            eng.consume(&msg)
                                .map_err(|e| TailEnd::Fatal(e.to_string()))?;
                            // The primary fsynced: match it locally and
                            // ack the watermark.
                            let watermark =
                                eng.sync().map_err(|e| TailEnd::Fatal(e.to_string()))?;
                            drop(eng);
                            acked.store(watermark, Ordering::Release);
                            send(
                                &mut stream,
                                &mut write_seq,
                                &ReplMsg::Ack { seq: watermark },
                            )?;
                        }
                        _ => {
                            engine
                                .lock()
                                .consume(&msg)
                                .map_err(|e| TailEnd::Fatal(e.to_string()))?;
                        }
                    }
                }
                Ok(Decoded::NeedMore) => break,
                Err(e) => return Err(TailEnd::Fatal(e.to_string())),
            }
        }
    }
}
