//! The follower's replication core, transport-free.
//!
//! [`ReplicaEngine`] owns the read-only replica's [`SharedKdb`] and a
//! [`ReplStream`], and turns shipped bytes into applied state:
//! bootstrap from a journal image, then feed live frames. A
//! [`ReplMsg::Snapshot`] is **authoritative**: the replica is rebuilt
//! wholesale to exactly the shipped image
//! ([`SharedKdb::reset_replica`]), never prefix-extended — so a
//! post-compaction image, whose op indexes live in a restarted
//! sequence space, installs correctly no matter what the follower held
//! before. Live frames go through [`SharedKdb::apply_replicated`] — the
//! normal shard + group-commit machinery — so the follower journals the
//! stream locally with the same rollback discipline as a primary, and a
//! clean replicated journal is byte-identical to the source's.
//!
//! The engine is deliberately transport-agnostic: `fleet_torture`
//! drives it through in-memory links with seeded kills and partitions,
//! and the TCP endpoints in [`crate::ship`] drive the same code over
//! real sockets. One apply path, two harnesses.

use std::sync::Arc;

use ada_kdb::journal::{replay_bytes, RecoveryMode};
use ada_kdb::{KdbError, SharedKdb};
use ada_obs::ReplMetrics;

use crate::stream::{ReplStream, StreamFault};
use crate::wire::ReplMsg;

/// Why replication halted. `Stream` faults (gap/corruption) are sticky
/// and require a re-bootstrap; `Apply`/`Bootstrap` mean the replica's
/// state diverged or its own storage failed — never papered over.
#[derive(Debug)]
pub enum ReplError {
    /// The shipped stream gapped or corrupted (see [`StreamFault`]).
    Stream(StreamFault),
    /// A verified op failed to apply to the local store.
    Apply(KdbError),
    /// The bootstrap image failed verification.
    Bootstrap(String),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Stream(fault) => write!(f, "{fault}"),
            ReplError::Apply(e) => write!(f, "replicated apply failed: {e}"),
            ReplError::Bootstrap(reason) => write!(f, "bootstrap rejected: {reason}"),
        }
    }
}

impl std::error::Error for ReplError {}

/// A warm standby's replication state machine.
#[derive(Debug)]
pub struct ReplicaEngine {
    kdb: SharedKdb,
    stream: ReplStream,
    metrics: Arc<ReplMetrics>,
    /// Ops applied from the primary's stream (bootstrap included).
    applied: u64,
    /// Lineage epoch of the image this replica was bootstrapped from
    /// (0 until the first snapshot). Echoed in `Hello` so the primary
    /// can tell whether a frame suffix still extends our state.
    source_epoch: u64,
    /// The primary's advertised durable watermark.
    source_durable: u64,
    /// Whether the sticky stream fault was already counted in the
    /// reject metrics (it re-surfaces on every later call).
    fault_counted: bool,
}

impl ReplicaEngine {
    /// Wraps a replica store (expected empty; bootstrap fills it).
    pub fn new(kdb: SharedKdb, metrics: Arc<ReplMetrics>) -> Self {
        Self {
            kdb,
            stream: ReplStream::new(),
            metrics,
            applied: 0,
            source_epoch: 0,
            source_durable: 0,
            fault_counted: false,
        }
    }

    /// The replica's store (for read-only queries and promotion).
    pub fn kdb(&self) -> &SharedKdb {
        &self.kdb
    }

    /// Ops applied from the primary so far.
    pub fn applied_ops(&self) -> u64 {
        self.applied
    }

    /// Lineage epoch of the last bootstrap image (0 before the first).
    pub fn source_epoch(&self) -> u64 {
        self.source_epoch
    }

    /// Drops any partially buffered frame bytes and clears a sticky
    /// stream fault, keeping the applied state. Call when a transport
    /// connection dies: the torn tail of the old connection must not
    /// corrupt the byte stream of the next one.
    pub fn resync(&mut self) {
        self.stream.reset(self.applied);
        self.fault_counted = false;
    }

    /// The primary's last advertised durable watermark.
    pub fn source_durable(&self) -> u64 {
        self.source_durable
    }

    /// The watermark this follower may ack: ops both applied from the
    /// stream and fsync-durable in the follower's own journal.
    pub fn acked_ops(&self) -> u64 {
        self.applied.min(self.kdb.journal_durable_ops())
    }

    /// Forces a local fsync so everything applied becomes ackable.
    ///
    /// # Errors
    /// The local fsync's [`KdbError`].
    pub fn sync(&self) -> Result<u64, KdbError> {
        self.kdb.sync()?;
        let acked = self.acked_ops();
        self.metrics.set_follower_acked(acked);
        Ok(acked)
    }

    /// Verifies a journal image under strict recovery and rebuilds the
    /// replica to be **exactly** that image, discarding whatever the
    /// replica held before ([`SharedKdb::reset_replica`]). Returns the
    /// new applied watermark — `image`'s op count, which may be *lower*
    /// than the previous watermark when the primary compacted. This is
    /// what makes post-compaction re-bootstrap safe: the image's op
    /// indexes live in a restarted sequence space, so prefix-extending
    /// against the old applied count would skip or double-apply ops.
    ///
    /// `epoch` is the image's lineage epoch, echoed in later `Hello`s.
    ///
    /// # Errors
    /// [`ReplError::Bootstrap`] when the image is torn or corrupt;
    /// [`ReplError::Apply`] when an op does not apply (the replica is
    /// left unchanged — validation happens before installation).
    pub fn bootstrap(&mut self, epoch: u64, image: &[u8]) -> Result<u64, ReplError> {
        let replay = replay_bytes(image, RecoveryMode::Strict)
            .map_err(|e| ReplError::Bootstrap(e.to_string()))?;
        if replay.truncated {
            return Err(ReplError::Bootstrap(
                "image has a torn tail; a shipped snapshot must be whole".into(),
            ));
        }
        self.kdb
            .reset_replica(&replay.ops)
            .map_err(ReplError::Apply)?;
        self.applied = replay.ops.len() as u64;
        self.source_epoch = epoch;
        for _ in &replay.ops {
            self.metrics.frame_applied();
        }
        self.stream.reset(self.applied);
        self.fault_counted = false;
        Ok(self.applied)
    }

    /// Consumes one replication message. Returns the number of newly
    /// applied ops (only `Frame`/`Snapshot`/`CatchUp` can be non-zero).
    ///
    /// # Errors
    /// A sticky [`ReplError::Stream`] (counted in the gap/corrupt
    /// reject metrics), or [`ReplError::Apply`]/[`ReplError::Bootstrap`].
    pub fn consume(&mut self, msg: &ReplMsg) -> Result<u64, ReplError> {
        match msg {
            ReplMsg::Frame { bytes } => self.feed(bytes),
            ReplMsg::Snapshot { epoch, image } => {
                let before = self.applied;
                // A compacted image can hold fewer ops than we had
                // applied — the watermark legitimately regresses.
                self.bootstrap(*epoch, image)
                    .map(|after| after.saturating_sub(before))
            }
            ReplMsg::CatchUp { from, bytes } => {
                if *from != self.applied {
                    return Err(ReplError::Bootstrap(format!(
                        "catch-up starts at {from} but {} applied",
                        self.applied
                    )));
                }
                self.resync();
                self.feed(bytes)
            }
            ReplMsg::Durable { seq } => {
                self.source_durable = self.source_durable.max(*seq);
                self.metrics.set_source_durable(self.source_durable);
                Ok(0)
            }
            ReplMsg::Reset { .. }
            | ReplMsg::Hello { .. }
            | ReplMsg::Ack { .. }
            | ReplMsg::Reject { .. } => Ok(0),
        }
    }

    /// Buffers shipped frame bytes and applies every complete verified
    /// frame. Returns the number of ops applied by this call.
    ///
    /// # Errors
    /// See [`ReplicaEngine::consume`].
    pub fn feed(&mut self, bytes: &[u8]) -> Result<u64, ReplError> {
        self.stream.push(bytes);
        let mut applied = 0;
        loop {
            match self.stream.next_op() {
                Ok(Some(op)) => {
                    self.kdb.apply_replicated(&op).map_err(ReplError::Apply)?;
                    self.applied += 1;
                    applied += 1;
                    self.metrics.frame_applied();
                }
                Ok(None) => return Ok(applied),
                Err(fault) => {
                    if !self.fault_counted {
                        self.fault_counted = true;
                        match &fault {
                            StreamFault::Gap { .. } => self.metrics.gap_rejected(),
                            StreamFault::Corrupt { .. } => self.metrics.corrupt_rejected(),
                        }
                    }
                    return Err(ReplError::Stream(fault));
                }
            }
        }
    }

    /// The state fingerprint of the replica (FNV-1a over canonical op
    /// encodings — comparable with the primary's).
    pub fn fingerprint(&self) -> u64 {
        self.kdb.read().fingerprint()
    }
}
