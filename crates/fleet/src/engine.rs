//! The follower's replication core, transport-free.
//!
//! [`ReplicaEngine`] owns the read-only replica's [`SharedKdb`] and a
//! [`ReplStream`], and turns shipped bytes into applied state:
//! bootstrap from a journal image, then feed live frames. Every applied
//! op goes through [`SharedKdb::apply_replicated`] — the normal shard +
//! group-commit machinery — so the follower journals the stream locally
//! with the same rollback discipline as a primary, and a clean
//! replicated journal is byte-identical to the source's.
//!
//! The engine is deliberately transport-agnostic: `fleet_torture`
//! drives it through in-memory links with seeded kills and partitions,
//! and the TCP endpoints in [`crate::ship`] drive the same code over
//! real sockets. One apply path, two harnesses.

use std::sync::Arc;

use ada_kdb::journal::{replay_bytes, RecoveryMode};
use ada_kdb::{KdbError, SharedKdb};
use ada_obs::ReplMetrics;

use crate::stream::{ReplStream, StreamFault};
use crate::wire::ReplMsg;

/// Why replication halted. `Stream` faults (gap/corruption) are sticky
/// and require a re-bootstrap; `Apply`/`Bootstrap` mean the replica's
/// state diverged or its own storage failed — never papered over.
#[derive(Debug)]
pub enum ReplError {
    /// The shipped stream gapped or corrupted (see [`StreamFault`]).
    Stream(StreamFault),
    /// A verified op failed to apply to the local store.
    Apply(KdbError),
    /// The bootstrap image failed verification.
    Bootstrap(String),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Stream(fault) => write!(f, "{fault}"),
            ReplError::Apply(e) => write!(f, "replicated apply failed: {e}"),
            ReplError::Bootstrap(reason) => write!(f, "bootstrap rejected: {reason}"),
        }
    }
}

impl std::error::Error for ReplError {}

/// A warm standby's replication state machine.
#[derive(Debug)]
pub struct ReplicaEngine {
    kdb: SharedKdb,
    stream: ReplStream,
    metrics: Arc<ReplMetrics>,
    /// Ops applied from the primary's stream (bootstrap included).
    applied: u64,
    /// The primary's advertised durable watermark.
    source_durable: u64,
    /// Whether the sticky stream fault was already counted in the
    /// reject metrics (it re-surfaces on every later call).
    fault_counted: bool,
}

impl ReplicaEngine {
    /// Wraps a replica store (expected empty; bootstrap fills it).
    pub fn new(kdb: SharedKdb, metrics: Arc<ReplMetrics>) -> Self {
        Self {
            kdb,
            stream: ReplStream::new(),
            metrics,
            applied: 0,
            source_durable: 0,
            fault_counted: false,
        }
    }

    /// The replica's store (for read-only queries and promotion).
    pub fn kdb(&self) -> &SharedKdb {
        &self.kdb
    }

    /// Ops applied from the primary so far.
    pub fn applied_ops(&self) -> u64 {
        self.applied
    }

    /// The primary's last advertised durable watermark.
    pub fn source_durable(&self) -> u64 {
        self.source_durable
    }

    /// The watermark this follower may ack: ops both applied from the
    /// stream and fsync-durable in the follower's own journal.
    pub fn acked_ops(&self) -> u64 {
        self.applied.min(self.kdb.journal_durable_ops())
    }

    /// Forces a local fsync so everything applied becomes ackable.
    ///
    /// # Errors
    /// The local fsync's [`KdbError`].
    pub fn sync(&self) -> Result<u64, KdbError> {
        self.kdb.sync()?;
        let acked = self.acked_ops();
        self.metrics.set_follower_acked(acked);
        Ok(acked)
    }

    /// Verifies a journal image under strict recovery and applies the
    /// ops beyond what this replica already holds. Returns the new
    /// applied watermark. Also the re-bootstrap path after the primary
    /// compacts ([`ReplMsg::Reset`]) — then the replica must be handed
    /// back fresh (`applied` 0) by the caller, or the image must extend
    /// the current state.
    ///
    /// # Errors
    /// [`ReplError::Bootstrap`] when the image is torn, corrupt, or
    /// shorter than what this replica already applied;
    /// [`ReplError::Apply`] when an op does not apply.
    pub fn bootstrap(&mut self, image: &[u8]) -> Result<u64, ReplError> {
        let replay = replay_bytes(image, RecoveryMode::Strict)
            .map_err(|e| ReplError::Bootstrap(e.to_string()))?;
        if replay.truncated {
            return Err(ReplError::Bootstrap(
                "image has a torn tail; a shipped snapshot must be whole".into(),
            ));
        }
        let total = replay.ops.len() as u64;
        if total < self.applied {
            return Err(ReplError::Bootstrap(format!(
                "image holds {total} ops but {} already applied",
                self.applied
            )));
        }
        for op in replay.ops.iter().skip(self.applied as usize) {
            self.kdb.apply_replicated(op).map_err(ReplError::Apply)?;
            self.applied += 1;
            self.metrics.frame_applied();
        }
        self.stream.reset(self.applied);
        self.fault_counted = false;
        Ok(self.applied)
    }

    /// Consumes one replication message. Returns the number of newly
    /// applied ops (only `Frame`/`Snapshot` can be non-zero).
    ///
    /// # Errors
    /// A sticky [`ReplError::Stream`] (counted in the gap/corrupt
    /// reject metrics), or [`ReplError::Apply`]/[`ReplError::Bootstrap`].
    pub fn consume(&mut self, msg: &ReplMsg) -> Result<u64, ReplError> {
        match msg {
            ReplMsg::Frame { bytes } => self.feed(bytes),
            ReplMsg::Snapshot { image } => {
                let before = self.applied;
                self.bootstrap(image).map(|after| after - before)
            }
            ReplMsg::Durable { seq } => {
                self.source_durable = self.source_durable.max(*seq);
                self.metrics.set_source_durable(self.source_durable);
                Ok(0)
            }
            ReplMsg::Reset { .. } | ReplMsg::Hello { .. } | ReplMsg::Ack { .. } => Ok(0),
        }
    }

    /// Buffers shipped frame bytes and applies every complete verified
    /// frame. Returns the number of ops applied by this call.
    ///
    /// # Errors
    /// See [`ReplicaEngine::consume`].
    pub fn feed(&mut self, bytes: &[u8]) -> Result<u64, ReplError> {
        self.stream.push(bytes);
        let mut applied = 0;
        loop {
            match self.stream.next_op() {
                Ok(Some(op)) => {
                    self.kdb.apply_replicated(&op).map_err(ReplError::Apply)?;
                    self.applied += 1;
                    applied += 1;
                    self.metrics.frame_applied();
                }
                Ok(None) => return Ok(applied),
                Err(fault) => {
                    if !self.fault_counted {
                        self.fault_counted = true;
                        match &fault {
                            StreamFault::Gap { .. } => self.metrics.gap_rejected(),
                            StreamFault::Corrupt { .. } => self.metrics.corrupt_rejected(),
                        }
                    }
                    return Err(ReplError::Stream(fault));
                }
            }
        }
    }

    /// The state fingerprint of the replica (FNV-1a over canonical op
    /// encodings — comparable with the primary's).
    pub fn fingerprint(&self) -> u64 {
        self.kdb.read().fingerprint()
    }
}
