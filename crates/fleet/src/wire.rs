//! Replication messages, carried as ADAN1 frame payloads.
//!
//! The replication link reuses the wire's transport framing
//! (`F<len>:<seq>:<crc32>:` with its own per-connection sequence), so
//! transport corruption is caught by `FrameDecoder` before a payload
//! ever reaches this codec. Each payload is one [`ReplMsg`]: a
//! single-byte tag followed by decimal watermarks and/or raw bytes.
//!
//! `Frame` payloads carry a primary journal frame **verbatim** — the
//! exact bytes `Journal::append` wrote to disk, which carry their own
//! sequence number and CRC. Content integrity is therefore checked
//! end-to-end twice: once per transport hop, and once against the
//! journal's own frame discipline when the follower decodes it.
//!
//! `Hello` and `Snapshot` carry the **lineage epoch** — a counter the
//! primary bumps at every journal compaction. A follower echoes the
//! epoch of the image it bootstrapped from, so the primary knows
//! whether the follower's applied prefix still lives in the current
//! sequence space (same epoch → a [`ReplMsg::CatchUp`] frame suffix
//! extends it) or not (the follower must take a fresh authoritative
//! [`ReplMsg::Snapshot`]).

/// One message on the replication link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplMsg {
    /// Follower → primary: "I have `have_ops` ops of lineage `epoch`;
    /// stream from there."
    Hello {
        /// Ops the follower already holds.
        have_ops: u64,
        /// Lineage epoch of the image those ops extend (0 before the
        /// first bootstrap).
        epoch: u64,
    },
    /// Primary → follower: a full journal image (magic + frames) to
    /// bootstrap or re-bootstrap from. **Authoritative**: the follower
    /// rebuilds its replica from scratch to exactly this image.
    Snapshot {
        /// The primary's lineage epoch at the moment the image was
        /// taken (echoed back in the follower's next `Hello`).
        epoch: u64,
        /// The journal file's bytes.
        image: Vec<u8>,
    },
    /// Primary → follower, answering a same-epoch `Hello`: the journal
    /// frames past the follower's applied prefix, verbatim. Cheaper
    /// than a full image on reconnect — O(missed ops), not O(journal).
    CatchUp {
        /// The absolute sequence number the suffix starts at — must
        /// equal the follower's applied watermark.
        from: u64,
        /// Concatenated journal frames `from..` (may be empty when the
        /// follower is already caught up).
        bytes: Vec<u8>,
    },
    /// Primary → follower: one journal frame, byte-for-byte as written.
    Frame {
        /// The frame bytes (`R<len>:<seq>:<crc32>:<payload>`).
        bytes: Vec<u8>,
    },
    /// Primary → follower: every frame below `seq` is fsync-durable on
    /// the primary.
    Durable {
        /// Absolute durable sequence watermark.
        seq: u64,
    },
    /// Follower → primary: every frame below `seq` is applied and
    /// fsync-durable on the follower.
    Ack {
        /// Absolute acked sequence watermark.
        seq: u64,
    },
    /// Primary → follower: the stream is no longer continuable (journal
    /// compaction restarted the sequence space, or the source queue
    /// overflowed and dropped frames). Re-`Hello`.
    Reset {
        /// Frames in the rewritten journal (0 for a queue overflow).
        ops: u64,
    },
    /// Primary → follower: this endpoint will not serve you (for
    /// example, it already ships to another follower). The follower
    /// should back off and retry, surfacing the reason.
    Reject {
        /// Operator-readable reason.
        reason: String,
    },
}

/// A malformed replication payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFault(pub String);

impl std::fmt::Display for WireFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replication wire fault: {}", self.0)
    }
}

impl std::error::Error for WireFault {}

impl ReplMsg {
    /// Serializes the message to an ADAN1 payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ReplMsg::Hello { have_ops, epoch } => format!("H{have_ops}:{epoch}").into_bytes(),
            ReplMsg::Snapshot { epoch, image } => {
                let mut out = format!("S{epoch}:").into_bytes();
                out.extend_from_slice(image);
                out
            }
            ReplMsg::CatchUp { from, bytes } => {
                let mut out = format!("C{from}:").into_bytes();
                out.extend_from_slice(bytes);
                out
            }
            ReplMsg::Frame { bytes } => {
                let mut out = Vec::with_capacity(bytes.len() + 1);
                out.push(b'F');
                out.extend_from_slice(bytes);
                out
            }
            ReplMsg::Durable { seq } => format!("W{seq}").into_bytes(),
            ReplMsg::Ack { seq } => format!("A{seq}").into_bytes(),
            ReplMsg::Reset { ops } => format!("R{ops}").into_bytes(),
            ReplMsg::Reject { reason } => {
                let mut out = Vec::with_capacity(reason.len() + 1);
                out.push(b'X');
                out.extend_from_slice(reason.as_bytes());
                out
            }
        }
    }

    /// Parses an ADAN1 payload back into a message.
    ///
    /// # Errors
    /// [`WireFault`] on an empty payload, unknown tag, or a malformed
    /// decimal watermark.
    pub fn decode(payload: &[u8]) -> Result<Self, WireFault> {
        let (&tag, rest) = payload
            .split_first()
            .ok_or_else(|| WireFault("empty payload".into()))?;
        let watermark = |label: &str, bytes: &[u8]| -> Result<u64, WireFault> {
            std::str::from_utf8(bytes)
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| {
                    WireFault(format!(
                        "bad {label} watermark {:?}",
                        String::from_utf8_lossy(bytes)
                    ))
                })
        };
        // `<decimal>:<raw bytes>` — split at the first colon.
        let prefixed = |label: &str, bytes: &[u8]| -> Result<(u64, Vec<u8>), WireFault> {
            let colon = bytes
                .iter()
                .position(|&b| b == b':')
                .ok_or_else(|| WireFault(format!("{label} payload missing ':'")))?;
            Ok((
                watermark(label, &bytes[..colon])?,
                bytes[colon + 1..].to_vec(),
            ))
        };
        match tag {
            b'H' => {
                let colon = rest
                    .iter()
                    .position(|&b| b == b':')
                    .ok_or_else(|| WireFault("hello payload missing ':'".into()))?;
                Ok(ReplMsg::Hello {
                    have_ops: watermark("hello", &rest[..colon])?,
                    epoch: watermark("hello epoch", &rest[colon + 1..])?,
                })
            }
            b'S' => {
                let (epoch, image) = prefixed("snapshot", rest)?;
                Ok(ReplMsg::Snapshot { epoch, image })
            }
            b'C' => {
                let (from, bytes) = prefixed("catch-up", rest)?;
                Ok(ReplMsg::CatchUp { from, bytes })
            }
            b'F' => Ok(ReplMsg::Frame {
                bytes: rest.to_vec(),
            }),
            b'W' => Ok(ReplMsg::Durable {
                seq: watermark("durable", rest)?,
            }),
            b'A' => Ok(ReplMsg::Ack {
                seq: watermark("ack", rest)?,
            }),
            b'R' => Ok(ReplMsg::Reset {
                ops: watermark("reset", rest)?,
            }),
            b'X' => Ok(ReplMsg::Reject {
                reason: String::from_utf8_lossy(rest).into_owned(),
            }),
            other => Err(WireFault(format!("unknown tag {:?}", other as char))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_message_round_trips() {
        let msgs = vec![
            ReplMsg::Hello {
                have_ops: 0,
                epoch: 0,
            },
            ReplMsg::Hello {
                have_ops: u64::MAX,
                epoch: 7,
            },
            ReplMsg::Snapshot {
                epoch: 3,
                image: b"ADAJ2\nR1:0:deadbeef:x".to_vec(),
            },
            ReplMsg::Snapshot {
                epoch: 0,
                image: Vec::new(),
            },
            ReplMsg::CatchUp {
                from: 12,
                bytes: b"R1:12:deadbeef:x".to_vec(),
            },
            ReplMsg::CatchUp {
                from: 0,
                bytes: Vec::new(),
            },
            ReplMsg::Frame {
                bytes: b"R1:0:deadbeef:x".to_vec(),
            },
            ReplMsg::Durable { seq: 42 },
            ReplMsg::Ack { seq: 41 },
            ReplMsg::Reset { ops: 7 },
            ReplMsg::Reject {
                reason: "primary already ships to a follower".into(),
            },
        ];
        for msg in msgs {
            assert_eq!(ReplMsg::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn snapshot_image_may_contain_colons() {
        // The epoch prefix splits at the FIRST colon only; journal
        // frames are full of colons.
        let msg = ReplMsg::Snapshot {
            epoch: 9,
            image: b"ADAJ2\nR5:0:0a1b2c3d:a:b:c".to_vec(),
        };
        assert_eq!(ReplMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn malformed_payloads_are_typed_faults() {
        assert!(ReplMsg::decode(b"").is_err());
        assert!(ReplMsg::decode(b"Y1").is_err());
        assert!(ReplMsg::decode(b"W").is_err());
        assert!(ReplMsg::decode(b"Anope").is_err());
        assert!(ReplMsg::decode(b"H-3:0").is_err());
        assert!(ReplMsg::decode(b"H3").is_err(), "hello without epoch");
        assert!(ReplMsg::decode(b"Sdata").is_err(), "snapshot without epoch");
        assert!(ReplMsg::decode(b"Cx:frames").is_err());
    }
}
