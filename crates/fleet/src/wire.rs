//! Replication messages, carried as ADAN1 frame payloads.
//!
//! The replication link reuses the wire's transport framing
//! (`F<len>:<seq>:<crc32>:` with its own per-connection sequence), so
//! transport corruption is caught by `FrameDecoder` before a payload
//! ever reaches this codec. Each payload is one [`ReplMsg`]: a
//! single-byte tag followed by either a decimal watermark or raw bytes.
//!
//! `Frame` payloads carry a primary journal frame **verbatim** — the
//! exact bytes `Journal::append` wrote to disk, which carry their own
//! sequence number and CRC. Content integrity is therefore checked
//! end-to-end twice: once per transport hop, and once against the
//! journal's own frame discipline when the follower decodes it.

/// One message on the replication link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplMsg {
    /// Follower → primary: "I have `have_ops` ops; stream from there."
    Hello {
        /// Ops the follower already holds.
        have_ops: u64,
    },
    /// Primary → follower: a full journal image (magic + frames) to
    /// bootstrap or re-bootstrap from.
    Snapshot {
        /// The journal file's bytes.
        image: Vec<u8>,
    },
    /// Primary → follower: one journal frame, byte-for-byte as written.
    Frame {
        /// The frame bytes (`R<len>:<seq>:<crc32>:<payload>`).
        bytes: Vec<u8>,
    },
    /// Primary → follower: every frame below `seq` is fsync-durable on
    /// the primary.
    Durable {
        /// Absolute durable sequence watermark.
        seq: u64,
    },
    /// Follower → primary: every frame below `seq` is applied and
    /// fsync-durable on the follower.
    Ack {
        /// Absolute acked sequence watermark.
        seq: u64,
    },
    /// Primary → follower: the journal was compacted; the sequence
    /// space restarted at 0 with `ops` frames. Re-bootstrap.
    Reset {
        /// Frames in the rewritten journal.
        ops: u64,
    },
}

/// A malformed replication payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFault(pub String);

impl std::fmt::Display for WireFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replication wire fault: {}", self.0)
    }
}

impl std::error::Error for WireFault {}

impl ReplMsg {
    /// Serializes the message to an ADAN1 payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ReplMsg::Hello { have_ops } => format!("H{have_ops}").into_bytes(),
            ReplMsg::Snapshot { image } => {
                let mut out = Vec::with_capacity(image.len() + 1);
                out.push(b'S');
                out.extend_from_slice(image);
                out
            }
            ReplMsg::Frame { bytes } => {
                let mut out = Vec::with_capacity(bytes.len() + 1);
                out.push(b'F');
                out.extend_from_slice(bytes);
                out
            }
            ReplMsg::Durable { seq } => format!("W{seq}").into_bytes(),
            ReplMsg::Ack { seq } => format!("A{seq}").into_bytes(),
            ReplMsg::Reset { ops } => format!("R{ops}").into_bytes(),
        }
    }

    /// Parses an ADAN1 payload back into a message.
    ///
    /// # Errors
    /// [`WireFault`] on an empty payload, unknown tag, or a watermark
    /// that is not a decimal `u64`.
    pub fn decode(payload: &[u8]) -> Result<Self, WireFault> {
        let (&tag, rest) = payload
            .split_first()
            .ok_or_else(|| WireFault("empty payload".into()))?;
        let watermark = |label: &str| -> Result<u64, WireFault> {
            std::str::from_utf8(rest)
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| {
                    WireFault(format!(
                        "bad {label} watermark {:?}",
                        String::from_utf8_lossy(rest)
                    ))
                })
        };
        match tag {
            b'H' => Ok(ReplMsg::Hello {
                have_ops: watermark("hello")?,
            }),
            b'S' => Ok(ReplMsg::Snapshot {
                image: rest.to_vec(),
            }),
            b'F' => Ok(ReplMsg::Frame {
                bytes: rest.to_vec(),
            }),
            b'W' => Ok(ReplMsg::Durable {
                seq: watermark("durable")?,
            }),
            b'A' => Ok(ReplMsg::Ack {
                seq: watermark("ack")?,
            }),
            b'R' => Ok(ReplMsg::Reset {
                ops: watermark("reset")?,
            }),
            other => Err(WireFault(format!("unknown tag {:?}", other as char))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_message_round_trips() {
        let msgs = vec![
            ReplMsg::Hello { have_ops: 0 },
            ReplMsg::Hello { have_ops: u64::MAX },
            ReplMsg::Snapshot {
                image: b"ADAJ2\nR1:0:deadbeef:x".to_vec(),
            },
            ReplMsg::Snapshot { image: Vec::new() },
            ReplMsg::Frame {
                bytes: b"R1:0:deadbeef:x".to_vec(),
            },
            ReplMsg::Durable { seq: 42 },
            ReplMsg::Ack { seq: 41 },
            ReplMsg::Reset { ops: 7 },
        ];
        for msg in msgs {
            assert_eq!(ReplMsg::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn malformed_payloads_are_typed_faults() {
        assert!(ReplMsg::decode(b"").is_err());
        assert!(ReplMsg::decode(b"X1").is_err());
        assert!(ReplMsg::decode(b"W").is_err());
        assert!(ReplMsg::decode(b"Anope").is_err());
        assert!(ReplMsg::decode(b"H-3").is_err());
    }
}
