//! # ada-signals
//!
//! Ranked safety-signal mining: the scenario-diversity workload beyond
//! the paper's clustering/pattern pipeline. From a cohort's exam log it
//! builds deterministic 2×2 contingency tables per (exposure exam,
//! outcome condition group) pair — and, via
//! [`ContingencyTable::from_rule_counts`], from mined association
//! rules — then ranks the pairs by disproportionality:
//!
//! * [`ror`] — reporting odds ratio with a log-normal 95% CI and the
//!   Haldane–Anscombe zero-cell correction;
//! * [`shrink`] — EBGM-style Gamma–Poisson Bayesian shrinkage with an
//!   empirically fitted prior, taming sparse-cell noise;
//! * [`session`] — the combined ranking score (CI lower bound +
//!   shrunken estimate + support, merged with the engine's
//!   interestingness/feedback weights via
//!   `ada_core::rank::ItemKind::Signal`), K-DB persistence into the
//!   schema-validated `signal_knowledge` collection, and the simulated
//!   physician feedback loop.
//!
//! Determinism is a hard contract: identical seed + config produce
//! byte-identical signal collections whether the session runs
//! serially, chunk-parallel, or remotely (see the determinism argument
//! in [`session`]).
//!
//! ```
//! use ada_core::RunControl;
//! use ada_dataset::synthetic::{generate, SyntheticConfig};
//! use ada_signals::{mine_signals, SignalConfig};
//!
//! let log = generate(&SyntheticConfig::small(), 7);
//! let report = mine_signals(&log, &SignalConfig::default(), &RunControl::new()).unwrap();
//! assert!(report.tables_built > 0);
//! for signal in &report.signals {
//!     assert!(signal.ror.ci_low <= signal.ror.ror);
//!     assert!(signal.ror.ror <= signal.ror.ci_high);
//! }
//! ```

#![warn(missing_docs)]

pub mod ror;
pub mod session;
pub mod shrink;
pub mod table;

pub use ror::{estimate as estimate_ror, RorEstimate};
pub use session::{
    mine_signals, run_session, SafetySignal, SignalConfig, SignalMiningReport, SignalSessionReport,
};
pub use shrink::{fit_prior, ShrinkageFit};
pub use table::{CohortIndex, ContingencyTable, ExposurePair};
