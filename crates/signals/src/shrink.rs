//! EBGM-style Bayesian shrinkage for sparse cells.
//!
//! Raw disproportionality explodes on sparse tables: one exposed
//! patient with the outcome in a tiny stratum yields a huge ROR with no
//! evidential weight. The pharmacovigilance remedy (DuMouchel's
//! Gamma–Poisson shrinker, the core of EBGM) models the observed count
//! `a` as Poisson with mean `λ·E`, where `E` is the count expected
//! under independence, and puts a Gamma(α, β) prior on the relative
//! reporting ratio `λ`. The posterior mean
//!
//! ```text
//! shrunk = (a + α) / (E + β)
//! ```
//!
//! pulls small-`E` tables toward the prior mean `α/β` while leaving
//! well-supported tables near their raw ratio `a/E`.
//!
//! The prior is fit empirically from the session's own table
//! collection by iteratively reweighted moment matching: moments of
//! the raw ratios are taken under precision weights `E/(E+β)` (tables
//! with more expected mass are more reliable), β is re-derived from
//! the weighted mean/variance, and the loop runs to a fixed point.
//! Everything is branch-deterministic: same tables, same prior, same
//! iteration count — the `signals_shrinkage_iterations` counter is
//! exact across serial, concurrent, and remote runs.

use serde::{Deserialize, Serialize};

use crate::table::ContingencyTable;

/// Fixed-point iteration cap (reached only on pathological inputs).
const MAX_ITERATIONS: u64 = 32;
/// Convergence tolerance on both prior parameters.
const TOL: f64 = 1e-9;
/// Clamp for both prior parameters, keeping the posterior well-defined
/// on degenerate collections.
const PRIOR_RANGE: (f64, f64) = (1e-3, 1e3);

/// A fitted Gamma(α, β) prior over the relative reporting ratio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShrinkageFit {
    /// Gamma shape.
    pub alpha: f64,
    /// Gamma rate.
    pub beta: f64,
    /// Fixed-point iterations performed (0 when the default prior was
    /// used because the collection carried no information).
    pub iterations: u64,
}

impl ShrinkageFit {
    /// The neutral fallback prior: mean 1 (no disproportionality),
    /// moderate strength. Used when fewer than two tables have positive
    /// expected counts.
    pub fn default_prior() -> Self {
        Self {
            alpha: 2.0,
            beta: 2.0,
            iterations: 0,
        }
    }

    /// The prior mean `α/β` every sparse table is pulled toward.
    pub fn prior_mean(&self) -> f64 {
        self.alpha / self.beta
    }

    /// The posterior-mean shrunken reporting ratio of one table.
    /// Always finite and non-negative; a table with `E = 0` returns
    /// exactly the prior mean (the data carry no information).
    pub fn shrunk(&self, table: &ContingencyTable) -> f64 {
        (table.a as f64 + self.alpha) / (table.expected() + self.beta)
    }
}

/// Fits the Gamma prior to a table collection by iteratively
/// reweighted moment matching (see the module docs).
pub fn fit_prior(tables: &[ContingencyTable]) -> ShrinkageFit {
    let clamp = |x: f64| x.clamp(PRIOR_RANGE.0, PRIOR_RANGE.1);
    // Raw relative reporting ratios of the informative tables.
    let ratios: Vec<(f64, f64)> = tables
        .iter()
        .filter_map(|t| {
            let e = t.expected();
            (e > 0.0).then(|| (t.a as f64 / e, e))
        })
        .collect();
    if ratios.len() < 2 {
        return ShrinkageFit::default_prior();
    }
    let (mut alpha, mut beta) = (1.0f64, 1.0f64);
    let mut iterations = 0;
    while iterations < MAX_ITERATIONS {
        let weights: Vec<f64> = ratios.iter().map(|&(_, e)| e / (e + beta)).collect();
        let wsum: f64 = weights.iter().sum();
        let mean = ratios
            .iter()
            .zip(&weights)
            .map(|(&(r, _), w)| w * r)
            .sum::<f64>()
            / wsum;
        let var = ratios
            .iter()
            .zip(&weights)
            .map(|(&(r, _), w)| w * (r - mean) * (r - mean))
            .sum::<f64>()
            / wsum;
        // Gamma method of moments: mean = α/β, var = α/β².
        let next_beta = clamp(mean / var.max(1e-9));
        let next_alpha = clamp(mean.max(1e-9) * next_beta);
        iterations += 1;
        let converged = (next_alpha - alpha).abs() < TOL && (next_beta - beta).abs() < TOL;
        alpha = next_alpha;
        beta = next_beta;
        if converged {
            break;
        }
    }
    ShrinkageFit {
        alpha,
        beta,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spread() -> Vec<ContingencyTable> {
        vec![
            ContingencyTable::new(40, 60, 120, 480),
            ContingencyTable::new(10, 90, 100, 500),
            ContingencyTable::new(3, 97, 50, 550),
            ContingencyTable::new(80, 20, 200, 400),
            ContingencyTable::new(1, 199, 20, 480),
        ]
    }

    #[test]
    fn fit_is_deterministic_and_converges() {
        let fit1 = fit_prior(&spread());
        let fit2 = fit_prior(&spread());
        assert_eq!(fit1, fit2, "bitwise-identical refit");
        assert!(fit1.iterations >= 1 && fit1.iterations <= MAX_ITERATIONS);
        assert!(fit1.alpha.is_finite() && fit1.beta.is_finite());
    }

    #[test]
    fn sparse_tables_shrink_toward_the_prior_mean() {
        let fit = fit_prior(&spread());
        // A singleton count with tiny expected mass: raw ratio is 1/E,
        // potentially huge; the shrunken estimate must sit between the
        // raw ratio's direction and the prior mean, close to the prior.
        let sparse = ContingencyTable::new(1, 0, 0, 699);
        let raw = sparse.a as f64 / sparse.expected().max(1e-12);
        let shrunk = fit.shrunk(&sparse);
        assert!(shrunk < raw, "shrinkage must pull the sparse ratio down");
        assert!(
            (shrunk - fit.prior_mean()).abs() < (raw - fit.prior_mean()).abs(),
            "shrunken estimate must be nearer the prior mean"
        );
        // A well-supported table barely moves.
        let solid = ContingencyTable::new(400, 600, 1_200, 4_800);
        let raw_solid = solid.a as f64 / solid.expected();
        assert!((fit.shrunk(&solid) - raw_solid).abs() / raw_solid < 0.25);
    }

    #[test]
    fn uninformative_collections_fall_back_to_the_default_prior() {
        assert_eq!(fit_prior(&[]), ShrinkageFit::default_prior());
        let empty = vec![ContingencyTable::new(0, 0, 0, 0); 5];
        assert_eq!(fit_prior(&empty), ShrinkageFit::default_prior());
        // E = 0 tables produce exactly the prior mean.
        let fit = ShrinkageFit::default_prior();
        assert_eq!(fit.shrunk(&ContingencyTable::new(0, 0, 0, 0)), 1.0);
    }
}
