//! The safety-signal mining session: deterministic table counting
//! (optionally chunk-parallel), shrinkage, combined ranking, K-DB
//! persistence, and the feedback loop.
//!
//! ## Determinism argument
//!
//! Everything downstream of the exam log is a pure function of the log
//! and the [`SignalConfig`]:
//!
//! 1. table counting iterates exposures in exam-id order and outcomes
//!    in config order; concurrent execution splits the exposure list
//!    into *contiguous chunks* whose results are merged in chunk
//!    order, so the pair list is byte-identical to a serial pass;
//! 2. the shrinkage prior is fit serially over the merged pair list
//!    (same floats, same order, same iteration count);
//! 3. ranking sorts by `total_cmp` on the combined score with a
//!    `(outcome, exposure-id)` tie-break — no `partial_cmp` panics, no
//!    ambiguity on equal scores;
//! 4. the feedback loop ranks session-local ordinal item ids (never
//!    K-DB document ids, which depend on concurrent interleaving) with
//!    a physician seeded from the config.
//!
//! Hence identical seed + config yield identical
//! [`SignalSessionReport`]s and identical signal *documents* whether
//! the session runs serially, 8-way concurrently, or remotely.

use ada_core::annotator::SimulatedPhysician;
use ada_core::rank::{KnowledgeItem, KnowledgeRanker};
use ada_core::{PipelineError, PipelineStage, RunControl};
use ada_dataset::taxonomy::ConditionGroup;
use ada_dataset::{ExamLog, ExamTypeId};
use ada_kdb::schema::{self, names};
use ada_kdb::{Document, SharedKdb};
use serde::{Deserialize, Serialize};

use crate::ror::{self, RorEstimate};
use crate::shrink::{self, ShrinkageFit};
use crate::table::{CohortIndex, ContingencyTable, ExposurePair};

/// Configuration of one safety-signal mining session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalConfig {
    /// Outcome condition groups to test every exposure against, in
    /// evaluation order.
    pub outcomes: Vec<ConditionGroup>,
    /// Minimum exposed patients for an exam to qualify as an exposure.
    pub min_exposed: usize,
    /// Keep only the top-N signals by combined score.
    pub max_signals: usize,
    /// Simulated-physician feedback budget (top-ranked signals that
    /// receive a label).
    pub feedback_budget: usize,
    /// Table-counting worker threads (1 = serial; results are
    /// byte-identical either way).
    pub threads: usize,
    /// Seed for the simulated physician.
    pub seed: u64,
}

impl Default for SignalConfig {
    /// The complication-surveillance default: every exam tested against
    /// the five complication groups the paper highlights for overt
    /// diabetes.
    fn default() -> Self {
        Self {
            outcomes: vec![
                ConditionGroup::Cardiovascular,
                ConditionGroup::Ophthalmic,
                ConditionGroup::Renal,
                ConditionGroup::Neurological,
                ConditionGroup::Podiatric,
            ],
            min_exposed: 5,
            max_signals: 40,
            feedback_budget: 6,
            threads: 1,
            seed: 42,
        }
    }
}

/// One ranked safety signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafetySignal {
    /// Raw id of the exposure exam type.
    pub exposure_id: u32,
    /// Display name of the exposure exam type.
    pub exposure: String,
    /// The outcome condition group.
    pub outcome: ConditionGroup,
    /// The counted 2×2 table.
    pub table: ContingencyTable,
    /// Reporting odds ratio with its 95% CI.
    pub ror: RorEstimate,
    /// EBGM-style shrunken reporting ratio.
    pub shrunk: f64,
    /// Exposed-with-outcome fraction of the cohort.
    pub support: f64,
    /// The combined ranking score (CI lower bound + shrunken estimate
    /// + support; see `KnowledgeItem::prior_score` for signals).
    pub score: f64,
    /// Human-readable description.
    pub description: String,
}

impl SafetySignal {
    /// The schema-validated K-DB document of this signal (see
    /// `ada_kdb::schema::validate_signal_doc`). Document ids are not
    /// embedded, so the canonical encodings of a session's signal docs
    /// are interleaving-invariant.
    pub fn to_doc(&self, session: &str) -> Document {
        Document::new()
            .with("session", session)
            .with("kind", "signal")
            .with("exposure", self.exposure.as_str())
            .with("exposure_id", i64::from(self.exposure_id))
            .with("outcome", self.outcome.to_string())
            .with("a", self.table.a as i64)
            .with("b", self.table.b as i64)
            .with("c", self.table.c as i64)
            .with("d", self.table.d as i64)
            .with("ror", self.ror.ror)
            .with("ci_low", self.ror.ci_low)
            .with("ci_high", self.ror.ci_high)
            .with("shrunk", self.shrunk)
            .with("support", self.support)
            .with("score", self.score)
            .with("corrected", self.ror.corrected)
            .with("description", self.description.as_str())
    }
}

/// The raw mining result, before persistence and feedback.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalMiningReport {
    /// Ranked signals, best first, truncated to `max_signals`.
    pub signals: Vec<SafetySignal>,
    /// 2×2 tables built (before truncation).
    pub tables_built: u64,
    /// Tables that needed the Haldane–Anscombe correction.
    pub zero_cell_corrections: u64,
    /// Fixed-point iterations of the shrinkage prior fit.
    pub shrinkage_iterations: u64,
    /// The fitted Gamma prior.
    pub prior: ShrinkageFit,
}

/// The terminal report of a persisted safety-signal session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalSessionReport {
    /// Session name.
    pub session: String,
    /// Ranked signals, best first.
    pub signals: Vec<SafetySignal>,
    /// Final ranking (descriptions) after the feedback loop.
    pub ranked: Vec<String>,
    /// Feedback labels recorded.
    pub feedback_recorded: usize,
    /// 2×2 tables built.
    pub tables_built: u64,
    /// Tables that needed the zero-cell correction.
    pub zero_cell_corrections: u64,
    /// Shrinkage prior-fit iterations.
    pub shrinkage_iterations: u64,
}

/// Mines ranked safety signals from a cohort (pure compute — no K-DB).
///
/// Honors `control` checkpoints between chunks and emits
/// `tables:chunk=N` / `shrink` / `rank` sub-spans plus the
/// `signals_*` kernel counters.
///
/// # Errors
/// Returns [`PipelineError`] when cancelled or past the deadline.
pub fn mine_signals(
    log: &ExamLog,
    config: &SignalConfig,
    control: &RunControl,
) -> Result<SignalMiningReport, PipelineError> {
    let stage = PipelineStage::SignalMining;
    control.checkpoint(stage)?;
    let index = control.span(stage, "cohort-index", || CohortIndex::build(log));
    let exposures: Vec<ExamTypeId> = log
        .catalog()
        .iter()
        .map(|e| e.id)
        .filter(|e| index.exposed_counts[e.index()] >= config.min_exposed as u64)
        .collect();

    let threads = config.threads.max(1);
    let chunk_size = exposures.len().div_ceil(threads).max(1);
    let chunks: Vec<&[ExamTypeId]> = exposures.chunks(chunk_size).collect();
    let mut pairs: Vec<ExposurePair> = Vec::new();
    if threads <= 1 || chunks.len() <= 1 {
        for (ci, chunk) in chunks.iter().enumerate() {
            control.checkpoint(stage)?;
            let counted = control.span(stage, &format!("tables:chunk={ci}"), || {
                index.count_chunk(chunk, &config.outcomes)
            });
            pairs.extend(counted);
        }
    } else {
        control.checkpoint(stage)?;
        // Contiguous chunks, merged in chunk order: byte-identical to
        // the serial loop above regardless of completion order.
        let results: Vec<Vec<ExposurePair>> = std::thread::scope(|scope| {
            let index = &index;
            let outcomes = &config.outcomes;
            let handles: Vec<_> = chunks
                .iter()
                .enumerate()
                .map(|(ci, chunk)| {
                    scope.spawn(move || {
                        control.span(stage, &format!("tables:chunk={ci}"), || {
                            index.count_chunk(chunk, outcomes)
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("table chunk worker panicked"))
                .collect()
        });
        control.checkpoint(stage)?;
        for counted in results {
            pairs.extend(counted);
        }
    }

    let tables: Vec<ContingencyTable> = pairs.iter().map(|p| p.table).collect();
    let tables_built = tables.len() as u64;
    let fit = control.span(stage, "shrink", || shrink::fit_prior(&tables));
    control.checkpoint(stage)?;

    let (signals, zero_cell_corrections) = control.span(stage, "rank", || {
        let mut zero = 0u64;
        let mut signals: Vec<SafetySignal> = pairs
            .iter()
            .map(|p| {
                let est = ror::estimate(&p.table);
                if est.corrected {
                    zero += 1;
                }
                let shrunk = fit.shrunk(&p.table);
                let support = p.table.support();
                let score = KnowledgeItem::signal(0, "", support, est.ci_low, shrunk).prior_score();
                let description = format!(
                    "{} => {} (ROR {:.2} [{:.2}, {:.2}], shrunk {:.2})",
                    p.exposure_name, p.outcome, est.ror, est.ci_low, est.ci_high, shrunk
                );
                SafetySignal {
                    exposure_id: p.exposure.0,
                    exposure: p.exposure_name.clone(),
                    outcome: p.outcome,
                    table: p.table,
                    ror: est,
                    shrunk,
                    support,
                    score,
                    description,
                }
            })
            .collect();
        signals.sort_by(|x, y| {
            y.score.total_cmp(&x.score).then_with(|| {
                (x.outcome.index(), x.exposure_id).cmp(&(y.outcome.index(), y.exposure_id))
            })
        });
        signals.truncate(config.max_signals);
        (signals, zero)
    });

    control.counters(
        stage,
        &[
            ("signals_tables_built", tables_built),
            ("signals_zero_cell_corrections", zero_cell_corrections),
            ("signals_shrinkage_iterations", fit.iterations),
            ("signals_emitted", signals.len() as u64),
        ],
    );
    Ok(SignalMiningReport {
        signals,
        tables_built,
        zero_cell_corrections,
        shrinkage_iterations: fit.iterations,
        prior: fit,
    })
}

/// Runs a full safety-signal session against a shared K-DB: mines,
/// persists every signal as a schema-validated `signal_knowledge`
/// document, then runs the interestingness feedback loop (simulated
/// physician labels on the top-ranked signals, recorded into the
/// `feedback` collection and folded into the ranking).
///
/// # Errors
/// Returns [`PipelineError`] when cancelled or past the deadline; the
/// K-DB then holds no partial signal documents for this session (the
/// stage persists only after mining succeeds).
///
/// # Panics
/// Panics on K-DB journal I/O failures, mirroring the pipeline's
/// persistence contract (the service layer catches and retries).
pub fn run_session(
    session: &str,
    config: &SignalConfig,
    log: &ExamLog,
    kdb: &SharedKdb,
    control: &RunControl,
) -> Result<SignalSessionReport, PipelineError> {
    schema::init_schema(&mut kdb.write()).expect("K-DB schema init failed");
    let control = control.clone().with_session(session);
    control.stage(session, PipelineStage::SignalMining, || {
        let mined = mine_signals(log, config, &control)?;

        // Persist in ranked order under one write lock; document ids
        // are interleaving-dependent, so they stay out of the report.
        let mut doc_ids = Vec::with_capacity(mined.signals.len());
        {
            let mut db = kdb.write();
            for signal in &mined.signals {
                let id = schema::insert_signal_item(&mut db, signal.to_doc(session))
                    .expect("K-DB insert failed");
                doc_ids.push(id);
            }
        }

        // The feedback loop ranks session-local ordinal ids (index into
        // `mined.signals`) so tie-breaks never depend on concurrent
        // document-id allocation.
        let items: Vec<KnowledgeItem> = mined
            .signals
            .iter()
            .enumerate()
            .map(|(ordinal, s)| {
                KnowledgeItem::signal(
                    ordinal as u64,
                    s.description.clone(),
                    s.support,
                    s.ror.ci_low,
                    s.shrunk,
                )
            })
            .collect();
        let mut ranker = KnowledgeRanker::new();
        let mut physician = SimulatedPhysician::new(config.seed, 0.0, None);
        let initial_order = ranker.rank(&items);
        let mut feedback_recorded = 0usize;
        for &item in initial_order.iter().take(config.feedback_budget) {
            let ordinal = item.id as usize;
            let signal = &mined.signals[ordinal];
            let label = physician.label_signal(
                signal.support,
                signal.ror.ci_low,
                signal.shrunk,
                &[signal.outcome],
            );
            schema::insert_feedback(
                &mut kdb.write(),
                session,
                names::SIGNAL_KNOWLEDGE,
                doc_ids[ordinal],
                label,
            )
            .expect("K-DB insert failed");
            ranker.record_feedback(item, label);
            feedback_recorded += 1;
        }
        let ranked: Vec<String> = ranker
            .rank(&items)
            .iter()
            .map(|i| i.description.clone())
            .collect();

        Ok(SignalSessionReport {
            session: session.to_string(),
            signals: mined.signals,
            ranked,
            feedback_recorded,
            tables_built: mined.tables_built,
            zero_cell_corrections: mined.zero_cell_corrections,
            shrinkage_iterations: mined.shrinkage_iterations,
        })
    })
}
