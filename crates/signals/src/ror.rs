//! Reporting odds ratio with a 95% confidence interval.
//!
//! The standard disproportionality measure over a 2×2 table:
//! `ROR = (a·d)/(b·c)`, with the log-normal approximation for the
//! interval — `exp(ln ROR ± 1.96·SE)` where
//! `SE = √(1/a + 1/b + 1/c + 1/d)`. When any cell is zero the
//! Haldane–Anscombe correction adds 0.5 to *all four* cells first, so
//! the estimate and both bounds are always finite and positive (an
//! all-zero table degenerates to the null value ROR = 1 with a very
//! wide interval).

use serde::{Deserialize, Serialize};

use crate::table::ContingencyTable;

/// The 1.96 z-score of the two-sided 95% interval.
const Z_95: f64 = 1.96;

/// A reporting-odds-ratio estimate with its 95% CI.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RorEstimate {
    /// The point estimate (after correction, when applied).
    pub ror: f64,
    /// Lower bound of the 95% CI.
    pub ci_low: f64,
    /// Upper bound of the 95% CI.
    pub ci_high: f64,
    /// Whether the Haldane–Anscombe zero-cell correction was applied.
    pub corrected: bool,
}

/// Estimates the ROR and its 95% CI for one table.
///
/// Always returns finite positive values with
/// `ci_low <= ror <= ci_high` (the proptests pin both properties).
pub fn estimate(table: &ContingencyTable) -> RorEstimate {
    let corrected = table.has_zero_cell();
    let shift = if corrected { 0.5 } else { 0.0 };
    let a = table.a as f64 + shift;
    let b = table.b as f64 + shift;
    let c = table.c as f64 + shift;
    let d = table.d as f64 + shift;
    let ror = (a * d) / (b * c);
    let se = (1.0 / a + 1.0 / b + 1.0 / c + 1.0 / d).sqrt();
    let ln_ror = ror.ln();
    RorEstimate {
        ror,
        ci_low: (ln_ror - Z_95 * se).exp(),
        ci_high: (ln_ror + Z_95 * se).exp(),
        corrected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden values, hand-computed: a=40, b=60, c=120, d=480.
    /// ROR = (40·480)/(60·120) = 8/3; SE = √(1/40+1/60+1/120+1/480)
    /// = √(0.0520833…) = 0.2282243…; CI = exp(ln(8/3) ∓ 1.96·SE)
    /// = (1.70493, 4.17101).
    #[test]
    fn golden_uncorrected_table() {
        let est = estimate(&ContingencyTable::new(40, 60, 120, 480));
        assert!(!est.corrected);
        assert!((est.ror - 8.0 / 3.0).abs() < 1e-12, "ror = {}", est.ror);
        assert!((est.ci_low - 1.704_93).abs() < 1e-4, "lo = {}", est.ci_low);
        assert!(
            (est.ci_high - 4.171_01).abs() < 1e-4,
            "hi = {}",
            est.ci_high
        );
    }

    /// Golden values for a single-zero-cell table: a=5, b=0, c=10,
    /// d=85 corrects to (5.5, 0.5, 10.5, 85.5):
    /// ROR = (5.5·85.5)/(0.5·10.5) = 89.571428…;
    /// SE = √(1/5.5 + 1/0.5 + 1/10.5 + 1/85.5) = √2.288997… .
    #[test]
    fn golden_single_cell_zero_applies_correction() {
        let est = estimate(&ContingencyTable::new(5, 0, 10, 85));
        assert!(est.corrected);
        let expected_ror = (5.5 * 85.5) / (0.5 * 10.5);
        assert!((est.ror - expected_ror).abs() < 1e-9);
        let se = (1.0 / 5.5 + 1.0 / 0.5 + 1.0 / 10.5 + 1.0 / 85.5f64).sqrt();
        assert!((est.ci_low - (expected_ror.ln() - 1.96 * se).exp()).abs() < 1e-9);
        assert!((est.ci_high - (expected_ror.ln() + 1.96 * se).exp()).abs() < 1e-9);
        assert!(est.ci_low > 0.0 && est.ci_high.is_finite());
    }

    /// The all-zero table degenerates to the null value with a wide but
    /// finite interval — never NaN/Inf.
    #[test]
    fn golden_all_zero_table_is_the_null() {
        let est = estimate(&ContingencyTable::new(0, 0, 0, 0));
        assert!(est.corrected);
        assert_eq!(est.ror, 1.0);
        let se = 8.0f64.sqrt(); // √(4 · 1/0.5)
        assert!((est.ci_low - (-Z_95 * se).exp()).abs() < 1e-12);
        assert!((est.ci_high - (Z_95 * se).exp()).abs() < 1e-12);
        assert!(est.ci_low.is_finite() && est.ci_high.is_finite());
    }

    #[test]
    fn ci_always_brackets_the_point_estimate() {
        for table in [
            ContingencyTable::new(1, 1, 1, 1),
            ContingencyTable::new(0, 7, 3, 900),
            ContingencyTable::new(250, 0, 0, 250),
            ContingencyTable::new(9_999, 1, 1, 9_999),
        ] {
            let est = estimate(&table);
            assert!(est.ci_low <= est.ror && est.ror <= est.ci_high, "{table:?}");
            assert!(est.ror.is_finite() && est.ror > 0.0, "{table:?}");
        }
    }
}
