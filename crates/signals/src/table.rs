//! Deterministic 2×2 contingency tables over the cohort.
//!
//! A safety signal asks: *is exposure E (an exam type) associated with
//! outcome O (a complication condition group)?* The evidence is the
//! classic pharmacovigilance 2×2 table counted over patients:
//!
//! ```text
//!                 outcome      no outcome
//! exposed            a             b
//! not exposed        c             d
//! ```
//!
//! Counting is over per-patient *sets* of distinct exam types
//! ([`ExamLog::patient_exam_sets`] sorts and dedups each patient), so
//! the cells are invariant under any permutation of the raw record
//! order — the property the proptests pin. Pairs whose exposure exam
//! belongs to the outcome group itself are skipped (the association
//! would be tautological), so an exposure never counts toward its own
//! outcome column.

use ada_dataset::taxonomy::ConditionGroup;
use ada_dataset::{ExamLog, ExamTypeId};
use ada_metrics::interest::RuleCounts;
use serde::{Deserialize, Serialize};

/// One 2×2 contingency table (patient counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContingencyTable {
    /// Exposed patients with the outcome.
    pub a: u64,
    /// Exposed patients without the outcome.
    pub b: u64,
    /// Unexposed patients with the outcome.
    pub c: u64,
    /// Unexposed patients without the outcome.
    pub d: u64,
}

impl ContingencyTable {
    /// Creates a table from its four cells.
    pub fn new(a: u64, b: u64, c: u64, d: u64) -> Self {
        Self { a, b, c, d }
    }

    /// Total patients counted.
    pub fn n(&self) -> u64 {
        self.a + self.b + self.c + self.d
    }

    /// Fraction of the cohort that is exposed *and* has the outcome
    /// (`a / n`; 0.0 for an empty table).
    pub fn support(&self) -> f64 {
        let n = self.n();
        if n == 0 {
            0.0
        } else {
            self.a as f64 / n as f64
        }
    }

    /// The count expected in cell `a` under independence:
    /// `(a+b)(a+c)/n` (0.0 for an empty table).
    pub fn expected(&self) -> f64 {
        let n = self.n();
        if n == 0 {
            0.0
        } else {
            (self.a + self.b) as f64 * (self.a + self.c) as f64 / n as f64
        }
    }

    /// Whether any cell is zero (the ROR estimator then applies the
    /// Haldane–Anscombe correction).
    pub fn has_zero_cell(&self) -> bool {
        self.a == 0 || self.b == 0 || self.c == 0 || self.d == 0
    }

    /// A table from mined-rule counts (`A → B` over transactions):
    /// exposure = the antecedent, outcome = the consequent. Lets the
    /// disproportionality statistics rank association rules directly.
    pub fn from_rule_counts(counts: &RuleCounts) -> Self {
        let a = counts.count_ab as u64;
        let b = (counts.count_a - counts.count_ab) as u64;
        let c = (counts.count_b - counts.count_ab) as u64;
        let d = (counts.n + counts.count_ab - counts.count_a - counts.count_b) as u64;
        Self { a, b, c, d }
    }
}

/// One (exposure exam, outcome condition group) pair with its table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExposurePair {
    /// The exposure exam type.
    pub exposure: ExamTypeId,
    /// The exposure exam's display name (from the catalog).
    pub exposure_name: String,
    /// The outcome condition group.
    pub outcome: ConditionGroup,
    /// The counted 2×2 table.
    pub table: ContingencyTable,
}

/// Per-patient evidence pre-aggregated for table counting: the sorted
/// exam set and, per condition group, whether any exam of that group is
/// present. Built once, shared (read-only) by every exposure chunk.
#[derive(Debug)]
pub struct CohortIndex {
    /// Sorted, deduplicated exam set per patient.
    pub sets: Vec<Vec<ExamTypeId>>,
    /// Bit `g` set ⇔ the patient has at least one exam of group `g`.
    pub group_bits: Vec<u16>,
    /// Patients per outcome group (column totals `a + c`).
    pub outcome_totals: Vec<u64>,
    /// Patients per exam type (row totals `a + b`).
    pub exposed_counts: Vec<u64>,
    /// Condition group of each exam type, by exam index.
    pub exam_groups: Vec<ConditionGroup>,
    /// Exam names, by exam index.
    pub exam_names: Vec<String>,
}

impl CohortIndex {
    /// Builds the index from a log (one pass over the patient sets).
    pub fn build(log: &ExamLog) -> Self {
        let taxonomy = log.taxonomy();
        let catalog = log.catalog();
        let exam_groups: Vec<ConditionGroup> = catalog
            .iter()
            .map(|e| taxonomy.group_of(e.id).unwrap_or(e.group))
            .collect();
        let exam_names: Vec<String> = catalog.iter().map(|e| e.name.clone()).collect();
        let sets = log.patient_exam_sets();
        let mut group_bits = vec![0u16; sets.len()];
        let mut exposed_counts = vec![0u64; catalog.len()];
        for (p, set) in sets.iter().enumerate() {
            for exam in set {
                exposed_counts[exam.index()] += 1;
                group_bits[p] |= 1 << exam_groups[exam.index()].index();
            }
        }
        let mut outcome_totals = vec![0u64; ConditionGroup::ALL.len()];
        for bits in &group_bits {
            for group in ConditionGroup::ALL {
                if bits & (1 << group.index()) != 0 {
                    outcome_totals[group.index()] += 1;
                }
            }
        }
        Self {
            sets,
            group_bits,
            outcome_totals,
            exposed_counts,
            exam_groups,
            exam_names,
        }
    }

    /// Number of patients.
    pub fn num_patients(&self) -> usize {
        self.sets.len()
    }

    /// Counts the tables for one contiguous slice of exposure exam ids
    /// against `outcomes`, in (exposure, outcome) order. Pure function
    /// of the slice — chunked concurrent execution merged in chunk
    /// order is byte-identical to a serial pass.
    pub fn count_chunk(
        &self,
        exposures: &[ExamTypeId],
        outcomes: &[ConditionGroup],
    ) -> Vec<ExposurePair> {
        let n = self.num_patients() as u64;
        // a[chunk-local exposure][outcome slot]
        let mut a = vec![0u64; exposures.len() * outcomes.len()];
        let mut local = vec![usize::MAX; self.exposed_counts.len()];
        for (i, exam) in exposures.iter().enumerate() {
            local[exam.index()] = i;
        }
        for (p, set) in self.sets.iter().enumerate() {
            let bits = self.group_bits[p];
            for exam in set {
                let i = local[exam.index()];
                if i == usize::MAX {
                    continue;
                }
                for (j, outcome) in outcomes.iter().enumerate() {
                    if bits & (1 << outcome.index()) != 0 {
                        a[i * outcomes.len() + j] += 1;
                    }
                }
            }
        }
        let mut pairs = Vec::new();
        for (i, exam) in exposures.iter().enumerate() {
            let exposed = self.exposed_counts[exam.index()];
            for (j, outcome) in outcomes.iter().enumerate() {
                if self.exam_groups[exam.index()] == *outcome {
                    continue; // tautological self-association
                }
                let cell_a = a[i * outcomes.len() + j];
                let cell_b = exposed - cell_a;
                let cell_c = self.outcome_totals[outcome.index()] - cell_a;
                let cell_d = n - exposed - cell_c;
                pairs.push(ExposurePair {
                    exposure: *exam,
                    exposure_name: self.exam_names[exam.index()].clone(),
                    outcome: *outcome,
                    table: ContingencyTable::new(cell_a, cell_b, cell_c, cell_d),
                });
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_add_up_and_support_is_a_over_n() {
        let t = ContingencyTable::new(40, 60, 120, 480);
        assert_eq!(t.n(), 700);
        assert!((t.support() - 40.0 / 700.0).abs() < 1e-12);
        assert!(!t.has_zero_cell());
        // Expected count under independence: (a+b)(a+c)/n.
        assert!((t.expected() - 100.0 * 160.0 / 700.0).abs() < 1e-12);
    }

    #[test]
    fn empty_table_is_defined_not_nan() {
        let t = ContingencyTable::new(0, 0, 0, 0);
        assert_eq!(t.support(), 0.0);
        assert_eq!(t.expected(), 0.0);
        assert!(t.has_zero_cell());
    }

    #[test]
    fn rule_counts_map_onto_the_four_cells() {
        // 700 transactions, A in 100, B in 160, both in 40.
        let counts = RuleCounts::new(700, 100, 160, 40);
        let t = ContingencyTable::from_rule_counts(&counts);
        assert_eq!(t, ContingencyTable::new(40, 60, 120, 480));
        assert_eq!(t.n() as usize, counts.n);
    }
}
