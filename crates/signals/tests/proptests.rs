//! Property tests: permutation-invariant counting and CI bracketing.

use ada_dataset::record::{ExamRecord, ExamType, Patient};
use ada_dataset::taxonomy::ConditionGroup;
use ada_dataset::{Date, ExamLog, ExamTypeId, PatientId};
use ada_signals::{estimate_ror, CohortIndex, ContingencyTable, SignalConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random cohort: patient count, exam-type count, raw (patient,
/// exam, day) triples, and a shuffle seed.
fn cohort() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, u8)>, u64)> {
    (4usize..30, 3usize..12).prop_flat_map(|(patients, exams)| {
        let records = prop::collection::vec((0..patients, 0..exams, 1u8..28), 1..250);
        (Just(patients), Just(exams), records, any::<u64>())
    })
}

fn build_log(patients: usize, exams: usize, records: &[(usize, usize, u8)]) -> ExamLog {
    let registry: Vec<Patient> = (0..patients)
        .map(|i| Patient::new(PatientId(i as u32), 40 + (i % 50) as u16).unwrap())
        .collect();
    // Cycle exam types through every condition group so cross-group
    // (exposure, outcome) pairs exist.
    let catalog: Vec<ExamType> = (0..exams)
        .map(|i| {
            ExamType::new(
                ExamTypeId(i as u32),
                format!("exam-{i}"),
                ConditionGroup::ALL[i % ConditionGroup::ALL.len()],
            )
        })
        .collect();
    let mut log = ExamLog::new(registry, catalog).unwrap();
    for &(p, e, day) in records {
        log.push_record(ExamRecord::new(
            PatientId(p as u32),
            ExamTypeId(e as u32),
            Date::new(2012, 3, day).unwrap(),
        ))
        .unwrap();
    }
    log
}

fn all_tables(log: &ExamLog) -> Vec<(u32, ConditionGroup, ContingencyTable)> {
    let index = CohortIndex::build(log);
    let exposures: Vec<ExamTypeId> = log.catalog().iter().map(|e| e.id).collect();
    let outcomes = SignalConfig::default().outcomes;
    index
        .count_chunk(&exposures, &outcomes)
        .into_iter()
        .map(|p| (p.exposure.0, p.outcome, p.table))
        .collect()
}

proptest! {
    // Contingency-table counting is invariant under any permutation of
    // the raw record order (counting runs over per-patient *sets*).
    #[test]
    fn counting_is_permutation_invariant((patients, exams, records, seed) in cohort()) {
        let baseline = all_tables(&build_log(patients, exams, &records));

        // Fisher–Yates with a proptest-chosen seed.
        let mut shuffled = records.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..=i);
            shuffled.swap(i, j);
        }
        let permuted = all_tables(&build_log(patients, exams, &shuffled));
        prop_assert_eq!(baseline, permuted);
    }

    // Every table's cell sums are conserved: a+b = exposed count,
    // a+c = outcome count, n = patient count.
    #[test]
    fn table_marginals_are_conserved((patients, exams, records, _) in cohort()) {
        let log = build_log(patients, exams, &records);
        for (_, _, t) in all_tables(&log) {
            prop_assert_eq!(t.n(), patients as u64);
            prop_assert!(t.support() >= 0.0 && t.support() <= 1.0);
        }
    }

    // The 95% CI always brackets the ROR point estimate, and all three
    // values are finite and positive — zero cells included.
    #[test]
    fn ror_ci_brackets_the_point_estimate(
        a in 0u64..400, b in 0u64..400, c in 0u64..400, d in 0u64..400,
    ) {
        let est = estimate_ror(&ContingencyTable::new(a, b, c, d));
        prop_assert!(est.ror.is_finite() && est.ror > 0.0);
        prop_assert!(est.ci_low.is_finite() && est.ci_low > 0.0);
        prop_assert!(est.ci_high.is_finite());
        prop_assert!(est.ci_low <= est.ror && est.ror <= est.ci_high);
        prop_assert_eq!(est.corrected, a == 0 || b == 0 || c == 0 || d == 0);
    }
}
