//! Serial vs. chunk-parallel determinism of the signal workload, and
//! session-level persistence / cancellation behaviour.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ada_core::{PipelineError, PipelineStage, RunControl};
use ada_dataset::synthetic::{generate, SyntheticConfig};
use ada_kdb::schema::{names, validate_signal_doc};
use ada_kdb::{Filter, Kdb, SharedKdb, Value};
use ada_signals::{mine_signals, run_session, SignalConfig};

fn cohort_cfg() -> SyntheticConfig {
    SyntheticConfig {
        num_patients: 150,
        num_exam_types: 24,
        target_records: 2_400,
        ..SyntheticConfig::small()
    }
}

fn shared(db: Kdb) -> SharedKdb {
    SharedKdb::new(db)
}

#[test]
fn serial_and_threaded_mining_are_identical() {
    let log = generate(&cohort_cfg(), 404);
    let serial = mine_signals(&log, &SignalConfig::default(), &RunControl::new()).unwrap();
    for threads in [2, 4, 8] {
        let config = SignalConfig {
            threads,
            ..SignalConfig::default()
        };
        let parallel = mine_signals(&log, &config, &RunControl::new()).unwrap();
        assert_eq!(serial, parallel, "threads = {threads}");
    }
    assert!(!serial.signals.is_empty(), "cohort must yield signals");
    assert!(serial.tables_built >= serial.signals.len() as u64);
}

#[test]
fn session_persists_schema_valid_ranked_documents() {
    let log = generate(&cohort_cfg(), 405);
    let kdb = shared(Kdb::in_memory());
    let report = run_session(
        "sig-run",
        &SignalConfig::default(),
        &log,
        &kdb,
        &RunControl::new(),
    )
    .unwrap();
    assert!(!report.signals.is_empty());
    assert_eq!(report.ranked.len(), report.signals.len());
    assert!(report.feedback_recorded > 0);

    let guard = kdb.read();
    let docs = guard
        .find(names::SIGNAL_KNOWLEDGE, &Filter::eq("session", "sig-run"))
        .unwrap();
    assert_eq!(docs.len(), report.signals.len());
    for (_, doc) in &docs {
        validate_signal_doc(doc).unwrap();
    }
    // Persisted in ranked order: scores never increase.
    let scores: Vec<f64> = docs
        .iter()
        .map(|(_, d)| d.get("score").and_then(Value::as_f64).unwrap())
        .collect();
    assert!(scores.windows(2).all(|w| w[0] >= w[1]), "{scores:?}");

    // Feedback joined to the signal collection.
    let feedback = guard
        .find(names::FEEDBACK, &Filter::eq("session", "sig-run"))
        .unwrap();
    assert_eq!(feedback.len(), report.feedback_recorded);
    for (_, doc) in &feedback {
        assert_eq!(
            doc.get("item_collection").and_then(Value::as_str),
            Some(names::SIGNAL_KNOWLEDGE)
        );
    }
}

#[test]
fn session_reports_are_identical_serial_vs_threaded() {
    let log = generate(&cohort_cfg(), 406);
    let serial = run_session(
        "det",
        &SignalConfig::default(),
        &log,
        &shared(Kdb::in_memory()),
        &RunControl::new(),
    )
    .unwrap();
    let threaded = run_session(
        "det",
        &SignalConfig {
            threads: 8,
            ..SignalConfig::default()
        },
        &log,
        &shared(Kdb::in_memory()),
        &RunControl::new(),
    )
    .unwrap();
    assert_eq!(serial, threaded);
}

#[test]
fn cancelled_session_leaves_no_signal_documents() {
    let log = generate(&cohort_cfg(), 407);
    let flag = Arc::new(AtomicBool::new(true));
    let kdb = shared(Kdb::in_memory());
    let control = RunControl::new().with_cancel_flag(flag);
    let err = run_session("doomed", &SignalConfig::default(), &log, &kdb, &control).unwrap_err();
    assert_eq!(
        err,
        PipelineError::Cancelled {
            stage: PipelineStage::SignalMining
        }
    );
    let guard = kdb.read();
    let docs = guard
        .find(names::SIGNAL_KNOWLEDGE, &Filter::eq("session", "doomed"))
        .unwrap();
    assert!(docs.is_empty(), "cancelled run must not persist signals");
}

#[test]
fn mining_observes_mid_run_cancellation_at_chunk_checkpoints() {
    let log = generate(&cohort_cfg(), 408);
    // The flag flips during the cohort-index span, so the very next
    // chunk checkpoint observes it.
    struct FlipOnSpan(Arc<AtomicBool>);
    impl ada_core::PipelineObserver for FlipOnSpan {
        fn on_span_end(
            &self,
            _session: &str,
            _stage: PipelineStage,
            name: &str,
            _elapsed: std::time::Duration,
        ) {
            if name == "cohort-index" {
                self.0.store(true, Ordering::Release);
            }
        }
    }
    let flag = Arc::new(AtomicBool::new(false));
    let control = RunControl::new()
        .with_cancel_flag(Arc::clone(&flag))
        .with_observer(Arc::new(FlipOnSpan(Arc::clone(&flag))));
    let err = mine_signals(&log, &SignalConfig::default(), &control).unwrap_err();
    assert!(matches!(err, PipelineError::Cancelled { .. }));
}
