//! # ada-metrics
//!
//! Quality and interestingness metrics for ADA-HEALTH.
//!
//! The paper drives its *algorithm optimization* component with exactly
//! these families of measures:
//!
//! * [`cluster`] — the **SSE** index ("the smaller the SSE, the better
//!   the quality of discovered clusters") and the **overall similarity**
//!   interestingness metric ("the internal pairwise similarity of
//!   patients within each cluster, … the weighted sum over the whole
//!   cluster set"), plus silhouette and Davies–Bouldin as additional
//!   indices;
//! * [`classify`] — accuracy and macro-averaged precision/recall, the
//!   metrics Table I reports for the decision-tree *robustness* check;
//! * [`interest`] — support/confidence/lift-style measures that score
//!   pattern-based knowledge items.

#![warn(missing_docs)]

pub mod classify;
pub mod cluster;
pub mod interest;
pub mod partition;

pub use classify::ConfusionMatrix;
pub use cluster::{centroids_of, davies_bouldin, overall_similarity, silhouette, sse};
pub use partition::{adjusted_rand_index, normalized_mutual_information, purity};
