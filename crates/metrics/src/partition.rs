//! Partition-comparison metrics: how similar are two clusterings?
//!
//! The partial-mining analysis needs to quantify how well a clustering
//! computed on a feature subset *approximates* the full-data clustering,
//! and the synthetic-cohort validation needs to compare discovered
//! clusters against the generator's latent profiles. Standard external
//! indices: purity, the adjusted Rand index, and normalized mutual
//! information.

/// The contingency table between two label vectors.
#[derive(Debug, Clone)]
pub struct Contingency {
    /// `counts[a][b]` = number of items with label `a` in the first
    /// partition and `b` in the second.
    counts: Vec<Vec<usize>>,
    /// Row sums (first partition's cluster sizes).
    row: Vec<usize>,
    /// Column sums (second partition's cluster sizes).
    col: Vec<usize>,
    /// Total number of items.
    n: usize,
}

impl Contingency {
    /// Builds the table from two parallel label vectors.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn new(a: &[usize], b: &[usize]) -> Self {
        assert_eq!(a.len(), b.len(), "label vectors must be parallel");
        let ka = a.iter().copied().max().map_or(0, |m| m + 1);
        let kb = b.iter().copied().max().map_or(0, |m| m + 1);
        let mut counts = vec![vec![0usize; kb]; ka];
        for (&x, &y) in a.iter().zip(b) {
            counts[x][y] += 1;
        }
        let row: Vec<usize> = counts.iter().map(|r| r.iter().sum()).collect();
        let col: Vec<usize> = (0..kb).map(|j| counts.iter().map(|r| r[j]).sum()).collect();
        Self {
            counts,
            row,
            col,
            n: a.len(),
        }
    }

    /// Number of items.
    pub fn total(&self) -> usize {
        self.n
    }
}

/// Purity of partition `a` with respect to reference `b`: the fraction
/// of items that belong to their cluster's majority reference class.
/// 1.0 means every cluster is class-pure. Returns 0.0 for empty input.
pub fn purity(a: &[usize], b: &[usize]) -> f64 {
    let table = Contingency::new(a, b);
    if table.n == 0 {
        return 0.0;
    }
    let majority: usize = table
        .counts
        .iter()
        .map(|row| row.iter().copied().max().unwrap_or(0))
        .sum();
    majority as f64 / table.n as f64
}

fn choose2(x: usize) -> f64 {
    (x as f64) * (x as f64 - 1.0) / 2.0
}

/// Adjusted Rand index between two partitions: 1.0 for identical
/// partitions (up to relabeling), ≈ 0 for independent ones, possibly
/// negative for worse-than-chance agreement. Returns 1.0 when both
/// partitions are trivial (≤ 1 cluster each or < 2 items).
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f64 {
    let table = Contingency::new(a, b);
    if table.n < 2 {
        return 1.0;
    }
    let sum_ij: f64 = table
        .counts
        .iter()
        .flat_map(|row| row.iter())
        .map(|&c| choose2(c))
        .sum();
    let sum_a: f64 = table.row.iter().map(|&c| choose2(c)).sum();
    let sum_b: f64 = table.col.iter().map(|&c| choose2(c)).sum();
    let total = choose2(table.n);
    let expected = sum_a * sum_b / total;
    let max_index = (sum_a + sum_b) / 2.0;
    if (max_index - expected).abs() < 1e-12 {
        // Both partitions trivial (all-one-cluster / all-singletons):
        // agreement is exact.
        return 1.0;
    }
    (sum_ij - expected) / (max_index - expected)
}

/// Normalized mutual information (arithmetic normalization):
/// `I(A; B) / ((H(A) + H(B)) / 2)` ∈ [0, 1]. Returns 1.0 when both
/// partitions are trivial and identical in structure, 0.0 when either
/// carries no information while the other does.
pub fn normalized_mutual_information(a: &[usize], b: &[usize]) -> f64 {
    let table = Contingency::new(a, b);
    if table.n == 0 {
        return 1.0;
    }
    let n = table.n as f64;
    let entropy = |sizes: &[usize]| -> f64 {
        sizes
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let ha = entropy(&table.row);
    let hb = entropy(&table.col);
    if ha == 0.0 && hb == 0.0 {
        return 1.0; // both trivial: identical information content
    }
    let mut mi = 0.0;
    for (i, row) in table.counts.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let p_ij = c as f64 / n;
            let p_i = table.row[i] as f64 / n;
            let p_j = table.col[j] as f64 / n;
            mi += p_ij * (p_ij / (p_i * p_j)).ln();
        }
    }
    (mi / ((ha + hb) / 2.0)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
        assert!((normalized_mutual_information(&a, &a) - 1.0).abs() < 1e-12);
        assert_eq!(purity(&a, &a), 1.0);
    }

    #[test]
    fn relabeled_partitions_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![2, 2, 0, 0, 1, 1];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(purity(&a, &b), 1.0);
    }

    #[test]
    fn independent_partitions_score_near_zero() {
        // A blocks vs B alternating: statistically independent-ish.
        let a: Vec<usize> = (0..40).map(|i| i / 20).collect();
        let b: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 0.15, "ari = {ari}");
        let nmi = normalized_mutual_information(&a, &b);
        assert!(nmi < 0.15, "nmi = {nmi}");
    }

    #[test]
    fn refinement_scores_between() {
        // b refines a (splits each cluster in two).
        let a = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 2, 2, 3, 3];
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari > 0.0 && ari < 1.0, "ari = {ari}");
        // Purity of the finer partition vs the coarser is perfect…
        assert_eq!(purity(&b, &a), 1.0);
        // …but not the other way round.
        assert!(purity(&a, &b) < 1.0);
    }

    #[test]
    fn trivial_partitions() {
        let ones = vec![0, 0, 0, 0];
        assert_eq!(adjusted_rand_index(&ones, &ones), 1.0);
        assert_eq!(normalized_mutual_information(&ones, &ones), 1.0);
        let singletons = vec![0, 1, 2, 3];
        // All-singletons vs all-one-cluster: no shared information.
        let nmi = normalized_mutual_information(&singletons, &ones);
        assert_eq!(nmi, 0.0);
        assert_eq!(purity(&ones, &singletons), 0.25);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(adjusted_rand_index(&[], &[]), 1.0);
        assert_eq!(normalized_mutual_information(&[], &[]), 1.0);
        assert_eq!(purity(&[], &[]), 0.0);
        assert_eq!(adjusted_rand_index(&[0], &[0]), 1.0);
    }

    #[test]
    fn contingency_sums() {
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 1, 1, 1];
        let t = Contingency::new(&a, &b);
        assert_eq!(t.total(), 4);
        assert_eq!(t.row, vec![2, 2]);
        assert_eq!(t.col, vec![1, 3]);
        assert_eq!(t.counts[0][0], 1);
        assert_eq!(t.counts[1][1], 2);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn rejects_length_mismatch() {
        let _ = Contingency::new(&[0, 1], &[0]);
    }
}
